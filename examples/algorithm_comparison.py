#!/usr/bin/env python
"""Compare every scheduler on one epoch: SE vs SA, DP, WOA (+ extras).

Reproduces the paper's comparison setup at a small scale and certifies the
result against the exact branch-and-bound optimum.

Run:  python examples/algorithm_comparison.py
"""

import time

from repro import SEConfig, StochasticExploration, WorkloadConfig, generate_epoch_workload
from repro.baselines import (
    DynamicProgrammingScheduler,
    GreedyDensityScheduler,
    RandomSearchScheduler,
    SimulatedAnnealingScheduler,
    WhaleOptimizationScheduler,
)
from repro.core.exact import branch_and_bound_optimum
from repro.metrics import summarize_schedule

BUDGET = 3000


def main() -> None:
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=50, capacity=50_000, alpha=1.5, seed=5)
    )
    instance = workload.instance
    print(f"Instance: {instance}\n")

    rows = []
    started = time.time()
    se = StochasticExploration(
        SEConfig(num_threads=25, max_iterations=BUDGET, convergence_window=1500, seed=1)
    ).solve(instance)
    rows.append(("SE", summarize_schedule(instance, se.best_mask, "SE"), time.time() - started))

    for scheduler in [
        SimulatedAnnealingScheduler(seed=1),
        DynamicProgrammingScheduler(seed=1),
        WhaleOptimizationScheduler(seed=1),
        GreedyDensityScheduler(seed=1),
        RandomSearchScheduler(seed=1),
    ]:
        started = time.time()
        result = scheduler.solve(instance, BUDGET)
        rows.append(
            (scheduler.name, summarize_schedule(instance, result.mask, scheduler.name), time.time() - started)
        )

    started = time.time()
    optimum = branch_and_bound_optimum(instance)
    exact_seconds = time.time() - started

    print(f"{'algorithm':10s}{'utility':>12s}{'gap vs opt':>12s}{'VD':>10s}{'TXs':>9s}{'secs':>8s}")
    for name, summary, seconds in sorted(rows, key=lambda r: -r[1].utility):
        gap = 100.0 * (optimum.utility - summary.utility) / abs(optimum.utility)
        print(f"{name:10s}{summary.utility:>12,.0f}{gap:>11.2f}%"
              f"{summary.valuable_degree:>10,.0f}{summary.throughput_txs:>9,}{seconds:>8.2f}")
    print(f"{'B&B opt':10s}{optimum.utility:>12,.0f}{0.0:>11.2f}%{'':>10s}{optimum.weight:>9,}{exact_seconds:>8.2f}")


if __name__ == "__main__":
    main()
