#!/usr/bin/env python
"""Quickstart: schedule one epoch's committees with the SE algorithm.

Builds a trace-driven epoch workload (synthetic Bitcoin blocks + two-phase
latencies), runs the paper's Stochastic-Exploration scheduler, and compares
it against the unscheduled "take everything in arrival order" policy.

Run:  python examples/quickstart.py
"""

from repro import (
    SEConfig,
    StochasticExploration,
    WorkloadConfig,
    generate_epoch_workload,
    summarize_schedule,
)
from repro.chain.final import take_everything


def main() -> None:
    # One epoch: 100 member committees, a 100K-TX final block, paper defaults.
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=100, capacity=100_000, alpha=1.5, seed=42)
    )
    instance = workload.instance
    print(f"Epoch instance: {instance}")
    print(f"  total TXs submitted : {int(instance.tx_counts.sum()):,}")
    print(f"  final-block capacity: {instance.capacity:,}")
    print(f"  DDL (slowest arrival): {instance.ddl:.1f}s")
    print()

    # The paper's scheduler: Gamma=10 executor replicas.
    scheduler = StochasticExploration(
        SEConfig(num_threads=10, max_iterations=4000, convergence_window=800, seed=7)
    )
    result = scheduler.solve(instance)
    print(f"SE converged after {result.iterations} race rounds "
          f"(converged={result.converged})")

    se_summary = summarize_schedule(instance, result.best_mask, algorithm="SE")
    naive_summary = summarize_schedule(instance, take_everything(instance), algorithm="arrival-order")

    print()
    print(f"{'':24s}{'SE':>14s}{'arrival-order':>16s}")
    for label, key in [
        ("utility", "utility"),
        ("TXs in final block", "throughput_txs"),
        ("cumulative age (s)", "cumulative_age_s"),
        ("committees selected", "committees_selected"),
        ("valuable degree", "valuable_degree"),
    ]:
        se_value = se_summary.as_row()[key]
        naive_value = naive_summary.as_row()[key]
        print(f"{label:24s}{se_value:>14,}{naive_value:>16,}")

    improvement = 100.0 * (se_summary.utility - naive_summary.utility) / abs(naive_summary.utility)
    print(f"\nSE improves epoch utility by {improvement:.1f}% over unscheduled Elastico.")


if __name__ == "__main__":
    main()
