#!/usr/bin/env python
"""Certified scheduling at paper scale, plus real-trace ingestion.

Exact solvers top out around 40 committees; the paper's epochs have
hundreds.  This example certifies the SE scheduler at |I_j| = 400 arrived
committees using the Lagrangian/LP upper bounds from ``repro.core.bounds``
-- if SE's utility is within x% of an upper bound, it is within x% of the
unknown optimum.  It also shows the real-trace path: the synthetic trace is
written to CSV and re-loaded through the strict reader, exactly how a real
Bitcoin snapshot would enter the pipeline.

Run:  python examples/certified_scheduling.py
"""

import os
import tempfile

from repro import SEConfig, StochasticExploration, WorkloadConfig, generate_epoch_workload
from repro.core.bounds import certify, fractional_knapsack_bound, lagrangian_bound
from repro.data.bitcoin import BitcoinTraceConfig, generate_bitcoin_trace, trace_statistics
from repro.data.loader import read_trace_csv, write_trace_csv


def main() -> None:
    # --- trace ingestion round trip ------------------------------------ #
    trace = generate_bitcoin_trace(BitcoinTraceConfig())
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bitcoin_jan2016.csv")
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
    stats = trace_statistics(loaded)
    print("trace loaded from CSV:")
    print(f"  {stats['num_blocks']} blocks, {stats['total_txs']:,} TXs, "
          f"mean {stats['mean_txs']:.0f} TXs/block, "
          f"mean spacing {stats['mean_interblock_seconds']:.0f}s")

    # --- paper-scale epoch --------------------------------------------- #
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=500, capacity=500_000, alpha=1.5, seed=2021),
        blocks=loaded,
    )
    instance = workload.instance
    print(f"\nepoch instance: {instance}")

    result = StochasticExploration(
        SEConfig(num_threads=10, max_iterations=8000, convergence_window=1500, seed=7)
    ).solve(instance)

    # --- certification --------------------------------------------------- #
    lp = fractional_knapsack_bound(instance)
    lagrange = lagrangian_bound(instance)
    certificate = certify(instance, result.best_utility)
    print(f"\nSE utility            : {result.best_utility:>14,.1f}")
    print(f"LP relaxation bound   : {lp:>14,.1f}")
    print(f"Lagrangian dual bound : {lagrange:>14,.1f}")
    print(f"certified optimality gap <= {100 * certificate['gap_fraction']:.2f}%")
    assert certificate["gap_fraction"] < 0.05, "SE should certify within 5%"


if __name__ == "__main__":
    main()
