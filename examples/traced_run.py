#!/usr/bin/env python
"""Observability walkthrough: trace one SE solve end to end.

Attaches a live telemetry hub (ring buffer + JSONL file) to the harness's
traced solve -- the SE race emits per-round transition/RESET events, the
DES engine reports its run stats, the final committee's PBFT round lands as
a simulation-time span, and cProfile's top hotspots join the same stream.
Then renders the text report ``mvcom trace summary`` would show.

Run:  python examples/traced_run.py
"""

import tempfile
from pathlib import Path

from repro.harness.tracing import traced_solve
from repro.obs.summary import summarize_records


def main() -> None:
    trace_path = Path(tempfile.gettempdir()) / "mvcom_traced_run.jsonl"
    run = traced_solve(
        num_committees=60,
        gamma=5,
        seed=11,
        max_iterations=800,
        convergence_window=300,
        trace_path=str(trace_path),
        profile=True,
        top_n=5,
    )

    result = run.result
    print(f"SE solve: utility={result.best_utility:,.1f} after {result.iterations} "
          f"race rounds (converged={result.converged})")
    print(f"final PBFT round committed in {run.pbft.latency:.3f}s of simulation time")
    print(f"{len(run.records)} telemetry records -> {trace_path}")
    print()
    print(summarize_records(run.records, top_spans=5))
    print()
    print(f"Inspect the stream any time with: mvcom trace summary {trace_path}")


if __name__ == "__main__":
    main()
