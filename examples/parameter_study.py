#!/usr/bin/env python
"""Parameter study: how the MVCom trade-off responds to its knobs.

Uses the generic sweep harness to explore the two levers the paper singles
out -- the throughput weight alpha and the executor count Gamma -- plus the
capacity, and reports the fairness consequences of each setting (Jain's
index over which committees get admitted).

Run:  python examples/parameter_study.py
"""

from repro.core.se import SEConfig
from repro.data.workload import WorkloadConfig
from repro.harness.report import render_table
from repro.harness.sweeps import best_row, grid_sweep
from repro.metrics.fairness import jain_index


def selection_fairness(instance, result) -> dict:
    """Extra metric: Jain's index over the admit/deny vector."""
    return {"jain": round(jain_index(result.best_mask.astype(float)), 3)}


def main() -> None:
    base_workload = WorkloadConfig(num_committees=80, capacity=70_000, seed=11)
    base_se = SEConfig(num_threads=4, max_iterations=2500, convergence_window=600, seed=3)

    rows = grid_sweep(
        base_workload,
        workload_axes={"alpha": [1.5, 5.0, 10.0], "capacity": [50_000, 70_000, 90_000]},
        base_se=base_se,
        extra_metrics=selection_fairness,
    )
    compact = [
        {
            "alpha": row["alpha"],
            "capacity": row["capacity"],
            "utility": row["utility"],
            "txs": row["throughput_txs"],
            "committees": row["committees_selected"],
            "mean_age_s": round(row["cumulative_age_s"] / max(row["committees_selected"], 1), 1),
            "jain": row["jain"],
        }
        for row in rows
    ]
    print(render_table(compact, title="alpha x capacity sweep (|Ij|=80)"))

    winner = best_row(rows, key="utility")
    print(f"\nhighest utility at alpha={winner['alpha']}, capacity={winner['capacity']:,}: "
          f"{winner['utility']:,.0f} ({winner['committees_selected']} committees)")

    # Observations worth checking programmatically:
    by_alpha = {}
    for row in rows:
        by_alpha.setdefault(row["alpha"], []).append(row)
    # Larger capacity always admits at least as many committees.
    for alpha, group in by_alpha.items():
        group.sort(key=lambda r: r["capacity"])
        counts = [r["committees_selected"] for r in group]
        assert counts == sorted(counts), (alpha, counts)
    print("check: committee count grows with capacity for every alpha  [ok]")


if __name__ == "__main__":
    main()
