#!/usr/bin/env python
"""Online scheduling with committee churn (failures, recoveries, arrivals).

Demonstrates the SE algorithm's dynamic event handling (Alg. 1 lines 9-12):

* scenario A -- a committee fails mid-run (DoS/network anomaly) and later
  recovers: the trimmed solution space of Section V, Fig. 9a;
* scenario B -- committees keep arriving at the final committee while the
  algorithm is already running: the consecutive-joining case of Fig. 9b.

Run:  python examples/dynamic_committees.py
"""

import numpy as np

from repro import SEConfig, StochasticExploration, WorkloadConfig, generate_epoch_workload
from repro.core.dynamics import fail_and_recover_schedule
from repro.data.workload import generate_online_workload


def describe_trace(label: str, trace: np.ndarray, marks: dict) -> None:
    print(f"\n{label}")
    for name, iteration in marks.items():
        window = trace[max(iteration - 50, 0):iteration + 250]
        if len(window) == 0:
            continue
        before = trace[max(iteration - 50, 0):iteration].mean() if iteration > 0 else trace[0]
        after = trace[min(iteration + 200, len(trace) - 1)]
        print(f"  {name:22s} iter {iteration:5d}: utility {before:>12,.0f} -> {after:>12,.0f}")
    print(f"  final best utility: {trace[-1]:>12,.0f}")


def scenario_failure_recovery() -> None:
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=50, capacity=40_000, alpha=1.5, seed=9)
    )
    instance = workload.instance
    victim = int(np.argmax(instance.tx_counts))
    schedule = fail_and_recover_schedule(
        shard_id=instance.shard_ids[victim],
        tx_count=int(instance.tx_counts[victim]),
        latency=float(instance.latencies[victim]),
        fail_at=800,
        recover_at=1600,
    )
    result = StochasticExploration(
        SEConfig(num_threads=5, max_iterations=2600, convergence_window=2600, seed=3)
    ).solve(instance, schedule=schedule)
    print(f"scenario A: committee {instance.shard_ids[victim]} "
          f"({int(instance.tx_counts[victim])} TXs) fails at iter 800, recovers at 1600")
    describe_trace("current-utility around the events:", result.current_trace,
                   {"failure (leave)": 800, "recovery (join)": 1600})
    assert len(result.events_applied) == 2


def scenario_consecutive_joins() -> None:
    workload = generate_online_workload(
        WorkloadConfig(num_committees=50, capacity=40_000, alpha=1.5, seed=9),
        num_initial=17,
        join_start=200,
        join_spacing=100,
    )
    result = StochasticExploration(
        SEConfig(num_threads=5, max_iterations=4000, convergence_window=4000, seed=3)
    ).solve(workload.instance, schedule=workload.schedule)
    joins = [e.iteration for e in result.events_applied]
    print(f"\nscenario B: started with 17 committees; {len(joins)} more joined online")
    describe_trace("current-utility during the join burst:", result.current_trace,
                   {"first join": joins[0], "last join": joins[-1]})


def main() -> None:
    scenario_failure_recovery()
    scenario_consecutive_joins()


if __name__ == "__main__":
    main()
