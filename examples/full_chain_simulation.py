#!/usr/bin/env python
"""End-to-end sharded-blockchain simulation: Elastico + MVCom scheduling.

Runs several full epochs of the 5-stage Elastico protocol on the
discrete-event substrate -- PoW committee election, overlay configuration,
per-committee PBFT, final consensus, randomness refresh -- twice: once with
the plain arrival-order final committee and once with the MVCom SE
scheduler plugged into stage 4.  Prints the root-chain throughput and
cumulative-age comparison.

Run:  python examples/full_chain_simulation.py
"""

import numpy as np

from repro.chain import ChainParams, ElasticoSimulation
from repro.chain.final import take_everything
from repro.core import MVComConfig, SEConfig, StochasticExploration
from repro.core.problem import EpochInstance

EPOCHS = 3


def se_scheduler(instance: EpochInstance) -> np.ndarray:
    """Adapter: run the SE algorithm and return its selection mask."""
    result = StochasticExploration(
        SEConfig(num_threads=5, max_iterations=1500, convergence_window=400, seed=13)
    ).solve(instance)
    return result.best_mask


def run_deployment(name: str, scheduler) -> dict:
    # capacity = ~40% of the typical submitted volume, so the final block is
    # genuinely contended and the scheduling choice matters.
    params = ChainParams(num_nodes=240, committee_size=8, seed=2021)
    mvcom = MVComConfig(alpha=1.5, capacity=12_000)
    simulation = ElasticoSimulation(params, mvcom_config=mvcom, scheduler=scheduler)
    utilities, ages, txs = [], [], []
    for _ in range(EPOCHS):
        outcome = simulation.run_epoch()
        if outcome.final is None:
            continue
        instance = outcome.final.instance
        mask = outcome.final.permitted_mask
        utilities.append(instance.utility(mask))
        ages.append(instance.cumulative_age(mask))
        txs.append(outcome.final.permitted_txs)
    assert simulation.chain.verify(), "root chain must verify"
    print(f"[{name}] root chain height={simulation.chain.height}, verified=True")
    return {
        "utility": float(np.mean(utilities)),
        "age": float(np.mean(ages)),
        "txs": float(np.mean(txs)),
    }


def main() -> None:
    print(f"Running {EPOCHS} Elastico epochs per deployment...\n")
    baseline = run_deployment("arrival-order", take_everything)
    scheduled = run_deployment("MVCom-SE", se_scheduler)

    print()
    print(f"{'metric (per epoch)':28s}{'arrival-order':>16s}{'MVCom-SE':>14s}")
    print(f"{'mean utility':28s}{baseline['utility']:>16,.0f}{scheduled['utility']:>14,.0f}")
    print(f"{'mean TXs in final block':28s}{baseline['txs']:>16,.0f}{scheduled['txs']:>14,.0f}")
    print(f"{'mean cumulative age (s)':28s}{baseline['age']:>16,.0f}{scheduled['age']:>14,.0f}")
    gain = 100.0 * (scheduled["utility"] - baseline["utility"]) / abs(baseline["utility"])
    print(f"\nMVCom scheduling changed per-epoch utility by {gain:+.1f}%.")


if __name__ == "__main__":
    main()
