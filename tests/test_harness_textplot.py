"""Tests for the terminal line plots."""

import numpy as np
import pytest

from repro.harness.textplot import GLYPHS, line_plot, sparkline


class TestLinePlot:
    def test_contains_every_series_glyph_and_legend(self):
        chart = line_plot({"a": [1, 2, 3], "b": [3, 2, 1]}, width=30, height=8)
        assert "*" in chart and "o" in chart
        assert "*=a" in chart and "o=b" in chart

    def test_y_axis_labels_reflect_range(self):
        chart = line_plot({"a": [0.0, 100.0]}, width=30, height=8)
        assert "100" in chart and "0" in chart and "50" in chart

    def test_rising_series_rises(self):
        chart = line_plot({"a": list(range(50))}, width=40, height=10, title="t")
        rows = [line for line in chart.splitlines() if "|" in line]
        first_column = next(i for i, row in enumerate(rows) if "*" in row.split("|")[1][:3])
        last_column = next(i for i, row in enumerate(rows) if "*" in row.split("|")[1][-3:])
        assert first_column > last_column  # later rows are lower values

    def test_different_lengths_share_axis(self):
        chart = line_plot({"long": list(range(100)), "short": [5.0]}, width=30, height=8)
        assert "long" in chart and "short" in chart

    def test_constant_series_handled(self):
        chart = line_plot({"flat": [7.0] * 10}, width=30, height=6)
        assert "7" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})
        with pytest.raises(ValueError):
            line_plot({"a": [1]}, width=5)
        too_many = {f"s{i}": [1.0] for i in range(len(GLYPHS) + 1)}
        with pytest.raises(ValueError):
            line_plot(too_many)

    def test_title_first_line(self):
        chart = line_plot({"a": [1, 2]}, title="My Title", width=20, height=5)
        assert chart.splitlines()[0] == "My Title"


class TestSparkline:
    def test_monotone_series(self):
        spark = sparkline(np.linspace(0, 1, 40))
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_width_respected(self):
        assert len(sparkline(range(100), width=25)) == 25

    def test_short_series(self):
        assert len(sparkline([1.0, 2.0], width=40)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
