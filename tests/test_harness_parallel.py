"""Tests for the parallel figure-sweep runner (repro.harness.parallel)."""

import argparse
import dataclasses
import filecmp
import json
import os

import pytest

from repro.harness import experiments
from repro.harness.artifacts import _ArtifactEncoder, write_artifact
from repro.harness.cli import runner_kwargs
from repro.harness.parallel import (
    SWEEP_FIGURES,
    map_trials,
    resolve_sweep_workers,
    run_sweep,
)
from repro.harness.presets import PRESETS


def tiny(preset_name, **overrides):
    """Shrink a paper preset to seconds-scale for parity testing."""
    base = dict(
        num_committees=12,
        capacity=10_000,
        se_iterations=80,
        baseline_iterations=80,
        convergence_window=40,
    )
    base.update(overrides)
    return dataclasses.replace(PRESETS[preset_name], **base)


class TestMapTrials:
    def test_serial_and_parallel_results_identical(self):
        preset = tiny("fig10", seeds=(1, 2, 3))
        tasks = [(preset, seed) for seed in preset.seeds]
        serial = map_trials(experiments._fig10_trial, tasks, parallel=False)
        pooled = map_trials(experiments._fig10_trial, tasks, parallel=True, num_workers=3)
        assert serial == pooled  # same values, same task order

    def test_single_task_stays_serial(self):
        preset = tiny("fig10", seeds=(1,))
        result = map_trials(
            experiments._fig10_trial, [(preset, 1)], parallel=True, num_workers=4
        )
        assert len(result) == 1 and "SE" in result[0]


class TestSweepArtifactByteIdentity:
    def test_fig10_artifacts_byte_identical(self, tmp_path):
        """The written artifact -- not just the in-memory dict -- must be
        byte-for-byte identical between serial and parallel runs."""
        preset = tiny("fig10", seeds=(1, 2))
        serial = experiments.run_fig10_valuable_degree(preset, parallel=False)
        pooled = experiments.run_fig10_valuable_degree(preset, parallel=True, sweep_workers=2)
        clock = lambda: 1_700_000_000.0
        path_a = write_artifact(
            "fig10", serial, preset, results_dir=str(tmp_path / "serial"), clock=clock
        )
        path_b = write_artifact(
            "fig10", pooled, preset, results_dir=str(tmp_path / "parallel"), clock=clock
        )
        assert filecmp.cmp(path_a, path_b, shallow=False)
        assert os.path.getsize(path_a) > 0

    def test_fig13_panels_identical(self):
        preset = tiny("fig13", seeds=(1, 2), extras={"alphas": (1.5, 5)})
        serial = experiments.run_fig13_utility_distribution(preset, parallel=False)
        pooled = experiments.run_fig13_utility_distribution(
            preset, parallel=True, sweep_workers=4
        )
        assert serial == pooled
        assert list(serial["panels"]) == ["alpha=1.5", "alpha=5"]


class TestRunSweep:
    def test_dispatch_matches_direct_runner(self):
        preset = tiny("fig12", extras={"alphas": (1.5,)})
        via_registry = run_sweep("fig12", preset, parallel=False)
        direct = experiments.run_fig12_vary_alpha(preset, parallel=False)
        # traces are numpy arrays; compare through the artifact encoder
        assert json.dumps(via_registry, cls=_ArtifactEncoder) == json.dumps(
            direct, cls=_ArtifactEncoder
        )

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("fig08")

    def test_registry_covers_the_sweep_figures(self):
        assert SWEEP_FIGURES == ("fig10", "fig11", "fig12", "fig13", "fig14")


class TestCliWiring:
    def args(self, **overrides):
        base = dict(chain_engine=None, parallel=False, sweep_workers=4)
        base.update(overrides)
        return argparse.Namespace(**base)

    def test_sweep_figures_receive_parallel_kwargs(self):
        # Explicit worker counts are resolved (clamped to the core count,
        # with a stderr warning on low-core boxes) rather than passed
        # through verbatim — the 0.25x-sweep-on-1-core bugfix.
        kwargs = runner_kwargs("fig10", self.args(parallel=True, sweep_workers=8))
        expected, _ = resolve_sweep_workers(8)
        assert kwargs == {"parallel": True, "sweep_workers": expected}

    def test_sweep_workers_auto_resolves_to_an_int(self):
        kwargs = runner_kwargs("fig10", self.args(parallel=True, sweep_workers="auto"))
        assert kwargs["parallel"] is True
        assert isinstance(kwargs["sweep_workers"], int)
        assert kwargs["sweep_workers"] >= 1

    def test_fig02_receives_chain_engine(self):
        kwargs = runner_kwargs("fig02", self.args(chain_engine="fastpath"))
        assert kwargs == {"chain_engine": "fastpath"}
        assert runner_kwargs("fig02", self.args()) == {}

    def test_non_sweep_figures_keep_zero_arg_calls(self):
        assert runner_kwargs("fig08", self.args(parallel=True)) == {}
        assert runner_kwargs("theory_mixing", self.args(parallel=True)) == {}
