"""Tests for metrics: Valuable Degree, summaries, traces."""

import numpy as np
import pytest

from repro.core.problem import EpochInstance, MVComConfig
from repro.metrics.summary import summarize_schedule
from repro.metrics.traces import (
    align_traces,
    converged_value,
    iterations_to_reach,
    trace_statistics,
)
from repro.metrics.valuable_degree import per_shard_valuable_degree, valuable_degree


@pytest.fixture
def instance():
    config = MVComConfig(alpha=1.5, capacity=10_000)
    return EpochInstance(
        tx_counts=[1_000, 2_000, 3_000],
        latencies=[100.0, 300.0, 500.0],
        config=config,
    )


class TestValuableDegree:
    def test_formula(self, instance):
        """VD = sum x_i s_i / Pi_i with ages (400, 200, floor)."""
        mask = np.array([True, True, True])
        expected = 1_000 / 400.0 + 2_000 / 200.0 + 3_000 / 1.0  # slowest floored
        assert valuable_degree(instance, mask) == pytest.approx(expected)

    def test_unselected_contribute_zero(self, instance):
        mask = np.array([True, False, False])
        contributions = per_shard_valuable_degree(instance, mask)
        assert contributions[1] == 0.0 and contributions[2] == 0.0
        assert contributions[0] == pytest.approx(2.5)

    def test_age_floor_guards_division(self, instance):
        mask = np.array([False, False, True])  # the DDL-defining shard, age 0
        assert np.isfinite(valuable_degree(instance, mask))
        assert valuable_degree(instance, mask) == pytest.approx(3_000.0)

    def test_custom_floor(self, instance):
        mask = np.array([False, False, True])
        assert valuable_degree(instance, mask, age_floor=10.0) == pytest.approx(300.0)

    def test_invalid_floor_rejected(self, instance):
        with pytest.raises(ValueError):
            valuable_degree(instance, np.ones(3, dtype=bool), age_floor=0.0)

    def test_wrong_mask_length_rejected(self, instance):
        with pytest.raises(ValueError):
            valuable_degree(instance, np.ones(2, dtype=bool))

    def test_fresher_selection_has_higher_vd(self, instance):
        """VD rewards low-age picks at equal TX mass -- the Fig. 10 intuition."""
        config = MVComConfig(alpha=1.5, capacity=10_000)
        equal = EpochInstance([1_000, 1_000, 1], [100.0, 400.0, 500.0], config)
        fresh = valuable_degree(equal, np.array([False, True, False]))  # age 100
        stale = valuable_degree(equal, np.array([True, False, False]))  # age 400
        assert fresh > stale


class TestSummary:
    def test_summary_fields(self, instance):
        mask = np.array([True, True, False])
        summary = summarize_schedule(instance, mask, algorithm="X")
        assert summary.algorithm == "X"
        assert summary.throughput_txs == 3_000
        assert summary.committees_selected == 2
        assert summary.cumulative_age == pytest.approx(600.0)
        assert summary.capacity_used_fraction == pytest.approx(0.3)
        assert summary.utility == pytest.approx(instance.utility(mask))

    def test_feasibility_flag(self, instance):
        summary = summarize_schedule(instance, np.array([True, False, False]))
        assert not summary.feasible  # n_min is 2
        summary = summarize_schedule(instance, np.array([True, True, False]))
        assert summary.feasible

    def test_as_row_roundtrip(self, instance):
        row = summarize_schedule(instance, np.ones(3, dtype=bool), "Y").as_row()
        assert row["algorithm"] == "Y"
        assert set(row) >= {"utility", "throughput_txs", "valuable_degree", "feasible"}


class TestTraces:
    def test_align_pads_with_last_value(self):
        aligned = align_traces({"a": [1.0, 2.0, 3.0], "b": [10.0]})
        assert aligned["b"].tolist() == [10.0, 10.0, 10.0]

    def test_align_truncates_to_requested_length(self):
        aligned = align_traces({"a": [1.0, 2.0, 3.0]}, length=2)
        assert aligned["a"].tolist() == [1.0, 2.0]

    def test_align_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            align_traces({"a": []})

    def test_align_explicit_length_shorter_than_longest(self):
        # An explicit length below the longest trace truncates the long
        # series and still pads the short ones to the same axis.
        aligned = align_traces({"long": [1.0, 2.0, 3.0, 4.0], "short": [7.0]}, length=2)
        assert aligned["long"].tolist() == [1.0, 2.0]
        assert aligned["short"].tolist() == [7.0, 7.0]
        assert {a.size for a in aligned.values()} == {2}

    def test_align_returns_copies_not_views(self):
        source = np.array([1.0, 2.0, 3.0])
        aligned = align_traces({"a": source}, length=2)
        aligned["a"][0] = 99.0
        assert source[0] == 1.0

    def test_converged_value_tail_mean(self):
        trace = [0.0] * 90 + [10.0] * 10
        assert converged_value(trace, tail_fraction=0.1) == pytest.approx(10.0)

    def test_converged_value_validation(self):
        with pytest.raises(ValueError):
            converged_value([])
        with pytest.raises(ValueError):
            converged_value([1.0], tail_fraction=0.0)

    def test_iterations_to_reach(self):
        trace = [0.0, 1.0, 2.0, 5.0, 5.0]
        assert iterations_to_reach(trace, 2.0) == 2
        assert iterations_to_reach(trace, 9.0) == -1

    def test_single_point_trace(self):
        # One-shot algorithms (DP, Greedy) produce length-1 traces; every
        # statistic must degrade gracefully instead of slicing to empty.
        assert converged_value([5.0]) == 5.0
        assert iterations_to_reach([5.0], 5.0) == 0
        assert iterations_to_reach([5.0], 6.0) == -1
        stats = trace_statistics([5.0])
        assert stats == {
            "first": 5.0,
            "last": 5.0,
            "max": 5.0,
            "converged": 5.0,
            "iterations": 1,
            "iters_to_99pct": 0,
        }

    def test_trace_statistics(self):
        stats = trace_statistics([1.0, 2.0, 4.0, 4.0])
        assert stats["first"] == 1.0
        assert stats["last"] == 4.0
        assert stats["max"] == 4.0
        assert stats["iterations"] == 4
        assert stats["iters_to_99pct"] == 2
