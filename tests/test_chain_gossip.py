"""Tests for the gossip overlay and epidemic broadcast."""

import numpy as np
import pytest

from repro.chain.gossip import (
    GossipNetwork,
    broadcast_completion_times,
    is_connected,
    random_regular_topology,
)
from repro.chain.params import NetworkParams

PARAMS = NetworkParams(base_delay=1.0, jitter_sigma=0.2)


class TestTopology:
    def test_connected(self):
        rng = np.random.default_rng(0)
        topology = random_regular_topology(50, 4, rng)
        assert is_connected(topology)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        topology = random_regular_topology(30, 4, rng)
        for node, peers in topology.items():
            for peer in peers:
                assert node in topology[peer]

    def test_no_self_loops(self):
        rng = np.random.default_rng(0)
        topology = random_regular_topology(30, 4, rng)
        assert all(node not in peers for node, peers in topology.items())

    def test_mean_degree_near_target(self):
        rng = np.random.default_rng(0)
        topology = random_regular_topology(100, 6, rng)
        mean_degree = np.mean([len(peers) for peers in topology.values()])
        assert 5.0 <= mean_degree <= 6.5

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_regular_topology(2, 2, rng)
        with pytest.raises(ValueError):
            random_regular_topology(10, 1, rng)
        with pytest.raises(ValueError):
            random_regular_topology(10, 10, rng)


class TestBroadcast:
    def test_reaches_every_node(self):
        rng = np.random.default_rng(1)
        topology = random_regular_topology(40, 4, rng)
        network = GossipNetwork(topology, PARAMS, rng)
        result = network.broadcast(origin=0)
        assert result.reached == 40

    def test_origin_receives_at_time_zero(self):
        rng = np.random.default_rng(1)
        network = GossipNetwork(random_regular_topology(20, 4, rng), PARAMS, rng)
        result = network.broadcast(origin=3)
        assert result.first_received[3] == 0.0

    def test_completion_fraction_monotone(self):
        rng = np.random.default_rng(1)
        network = GossipNetwork(random_regular_topology(40, 4, rng), PARAMS, rng)
        result = network.broadcast(origin=0)
        assert result.completion_time(0.5) <= result.completion_time(0.9) <= result.completion_time(1.0)
        with pytest.raises(ValueError):
            result.completion_time(0.0)

    def test_unknown_origin_rejected(self):
        rng = np.random.default_rng(1)
        network = GossipNetwork(random_regular_topology(20, 4, rng), PARAMS, rng)
        with pytest.raises(KeyError):
            network.broadcast(origin=99)

    def test_disconnected_overlay_rejected(self):
        rng = np.random.default_rng(1)
        disconnected = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
        with pytest.raises(ValueError):
            GossipNetwork(disconnected, PARAMS, rng)

    def test_logarithmic_scaling(self):
        """Epidemic broadcast grows ~log n: 10x the nodes is far less than
        10x the time."""
        rng = np.random.default_rng(2)
        small = np.mean(broadcast_completion_times(30, 4, PARAMS, rng, trials=4))
        large = np.mean(broadcast_completion_times(300, 4, PARAMS, rng, trials=4))
        assert large < 4 * small

    def test_higher_degree_faster(self):
        rng = np.random.default_rng(3)
        sparse = np.mean(broadcast_completion_times(100, 3, PARAMS, rng, trials=4))
        dense = np.mean(broadcast_completion_times(100, 12, PARAMS, rng, trials=4))
        assert dense < sparse
