"""Traced harness runs, the trace text report, and the CLI surfacing."""

import pytest

from repro.harness.cli import main
from repro.harness.tracing import build_telemetry, traced_solve
from repro.obs.sinks import JsonlSink, RingBufferSink, read_jsonl
from repro.obs.summary import summarize_file, summarize_records, utility_trace


@pytest.fixture(scope="module")
def small_run(tmp_path_factory):
    """One traced solve shared by every test in this module."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    run = traced_solve(
        num_committees=15,
        gamma=2,
        seed=0,
        max_iterations=120,
        convergence_window=60,
        trace_path=str(path),
        profile=True,
        top_n=4,
    )
    return run, path


def test_build_telemetry_wires_ring_and_jsonl(tmp_path):
    hub = build_telemetry(str(tmp_path / "t.jsonl"))
    kinds = [type(sink) for sink in hub.sinks]
    assert kinds == [RingBufferSink, JsonlSink]
    hub.event("x")
    hub.close()
    assert len(read_jsonl(tmp_path / "t.jsonl")) == 1
    assert len(build_telemetry().sinks) == 1  # no path -> ring only


def test_traced_solve_stream_carries_all_layers(small_run):
    run, path = small_run
    records = read_jsonl(path)
    assert len(records) == len(run.records)
    names = {r["name"] for r in records}
    # SE events, sim-engine stats, chain-phase span, profiling -- one stream.
    assert {"se.transition", "se.reset_broadcasts", "se.round"} <= names
    assert "sim.run" in names
    assert "profile.hotspots" in names
    spans = {r["name"] for r in records if r["type"] == "span"}
    assert "chain.pbft.round" in spans
    assert {"harness.se_solve", "harness.chain_phase"} <= spans
    assert records[-1]["name"] == "harness.done"
    assert all("wall" in r for r in records)  # harness hubs carry wall time
    assert run.hotspots and len(run.hotspots) <= 4


def test_traced_solve_without_trace_path_keeps_records_in_memory():
    run = traced_solve(num_committees=10, gamma=1, max_iterations=40, convergence_window=20)
    assert run.trace_path is None
    assert any(r["name"] == "se.round" for r in run.records)


def test_utility_trace_follows_se_rounds(small_run):
    run, path = small_run
    trace = utility_trace(read_jsonl(path))
    assert len(trace) == run.result.iterations
    assert trace[-1] == pytest.approx(run.result.best_utility)
    assert trace == sorted(trace)  # best-so-far is monotone


def test_summarize_records_renders_all_sections(small_run):
    run, path = small_run
    report = summarize_file(path)
    assert f"telemetry trace: {len(run.records)} records" in report
    assert "Top spans by cumulative time" in report
    assert "Record counts by name" in report
    assert "SE utility trace" in report
    assert "iters_to_99pct" in report
    assert "Profile hotspots: StochasticExploration.solve" in report


def test_summarize_records_handles_empty_and_spanless():
    assert "empty trace" in summarize_records([])
    report = summarize_records([{"type": "event", "name": "lonely"}])
    assert "lonely" in report
    assert "Top spans" not in report


def test_cli_solve_writes_trace_and_reports(tmp_path, capsys):
    path = tmp_path / "cli.jsonl"
    code = main(
        [
            "solve",
            "--committees", "10",
            "--gamma", "1",
            "--iterations", "40",
            "--trace", str(path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "utility=" in out
    assert "Record counts by name" in out
    assert any(r["type"] == "span" for r in read_jsonl(path))


def test_cli_trace_summary_renders_report(tmp_path, capsys):
    path = tmp_path / "cli.jsonl"
    main(["solve", "--committees", "10", "--gamma", "1", "--iterations", "40",
          "--trace", str(path)])
    capsys.readouterr()
    assert main(["trace", "summary", str(path)]) == 0
    assert "Top spans by cumulative time" in capsys.readouterr().out


def test_cli_trace_requires_summary_and_path():
    with pytest.raises(SystemExit):
        main(["trace"])
    with pytest.raises(SystemExit):
        main(["trace", "explode", "x.jsonl"])


def test_cli_trace_flag_rejected_outside_solve():
    with pytest.raises(SystemExit):
        main(["fig08", "--trace", "x.jsonl"])
