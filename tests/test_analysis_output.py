"""Tests for lint output formats, SARIF validation, baseline and the CLI."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.baseline import apply_baseline, load_baseline, render_baseline
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.output import (
    SARIF_VERSION,
    render_annotations,
    render_json,
    render_sarif,
    validate_sarif,
)
from repro.analysis.__main__ import main as lint_main


def diag(path="repro/core/a.py", line=3, rule="MV001", message="finding", column=4,
         severity=Severity.ERROR):
    return Diagnostic(
        path=path, line=line, rule_id=rule, message=message, column=column,
        severity=severity,
    )


# ---------------------------------------------------------------------- #
# JSON
# ---------------------------------------------------------------------- #
class TestJson:
    def test_shape_and_summary(self):
        document = json.loads(
            render_json([diag(), diag(rule="MV006", severity=Severity.WARNING)])
        )
        assert document["summary"] == {"errors": 1, "warnings": 1}
        assert document["diagnostics"][0]["rule"] == "MV001"
        assert document["diagnostics"][0]["line"] == 3

    def test_sorted_regardless_of_input_order(self):
        a = diag(path="repro/core/b.py")
        b = diag(path="repro/core/a.py")
        assert render_json([a, b]) == render_json([b, a])


# ---------------------------------------------------------------------- #
# SARIF
# ---------------------------------------------------------------------- #
class TestSarif:
    def test_valid_document(self):
        document = json.loads(render_sarif([diag()]))
        assert document["version"] == SARIF_VERSION
        assert validate_sarif(document) == []

    def test_result_shape(self):
        document = json.loads(render_sarif([diag()]))
        result = document["runs"][0]["results"][0]
        assert result["ruleId"] == "MV001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 5}  # 1-based

    def test_rules_declared_for_all_registered(self):
        document = json.loads(render_sarif([]))
        declared = {r["id"] for r in document["runs"][0]["tool"]["driver"]["rules"]}
        assert {"MV001", "MV101", "MV102", "MV103", "MV104"} <= declared

    def test_validator_rejects_broken_documents(self):
        assert validate_sarif([]) != []
        assert validate_sarif({"version": "2.0.0", "runs": []}) != []
        document = json.loads(render_sarif([diag()]))
        document["runs"][0]["results"][0]["message"] = {}
        assert any("message.text" in p for p in validate_sarif(document))
        document = json.loads(render_sarif([diag()]))
        document["runs"][0]["results"][0]["ruleId"] = "MV999"
        assert any("not declared" in p for p in validate_sarif(document))
        document = json.loads(render_sarif([diag()]))
        region = document["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        region["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(document))


class TestAnnotations:
    def test_workflow_command_shape(self):
        line = render_annotations([diag(message="bad % thing")])
        assert line.startswith("::error file=repro/core/a.py,line=3,col=5,title=MV001::")
        assert "%25" in line  # % escaped


# ---------------------------------------------------------------------- #
# baseline
# ---------------------------------------------------------------------- #
class TestBaseline:
    def test_round_trip_suppresses_line_insensitively(self, tmp_path):
        finding = diag(line=10)
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline([finding]))
        baseline = load_baseline(str(path))
        moved = diag(line=99)  # same path/rule/message, new line
        kept, suppressed = apply_baseline([moved], baseline)
        assert kept == [] and suppressed == 1

    def test_each_entry_suppresses_once(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline([diag()]))
        baseline = load_baseline(str(path))
        kept, suppressed = apply_baseline([diag(line=1), diag(line=2)], baseline)
        assert suppressed == 1 and len(kept) == 1

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(str(path))
        path.write_text(json.dumps({"version": 1, "entries": [{"path": "x"}]}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
BAD_SOURCE = textwrap.dedent(
    """
    import numpy as np


    def draw():
        return np.random.default_rng(42).random()
    """
)


@pytest.fixture()
def bad_tree(tmp_path):
    package = tmp_path / "repro" / "core"
    package.mkdir(parents=True)
    (package / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


class TestCli:
    def test_json_format_and_exit_code(self, bad_tree, capsys):
        code = lint_main(["--format", "json", "--no-baseline", str(bad_tree)])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == 1

    def test_sarif_format_validates(self, bad_tree, capsys):
        code = lint_main(["--format", "sarif", "--no-baseline", str(bad_tree)])
        assert code == 1
        assert validate_sarif(json.loads(capsys.readouterr().out)) == []

    def test_baseline_flag_suppresses(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "accepted.json"
        code = lint_main(
            ["--baseline", str(baseline), "--write-baseline", str(bad_tree)]
        )
        assert code == 0 and baseline.is_file()
        capsys.readouterr()
        code = lint_main(["--baseline", str(baseline), str(bad_tree)])
        assert code == 0
        assert "baselined" in capsys.readouterr().out

    def test_missing_baseline_file_is_a_usage_error(self, bad_tree, tmp_path, capsys):
        code = lint_main(
            ["--baseline", str(tmp_path / "absent.json"), str(bad_tree)]
        )
        assert code == 2

    def test_graph_dump(self, bad_tree, capsys):
        code = lint_main(["--graph", str(bad_tree)])
        assert code == 0
        assert "# call edges" in capsys.readouterr().out

    def test_dry_run_requires_fix(self, capsys):
        assert lint_main(["--dry-run", "src"]) == 2


# ---------------------------------------------------------------------- #
# byte-determinism across PYTHONHASHSEED (acceptance criterion)
# ---------------------------------------------------------------------- #
class TestHashSeedDeterminism:
    @pytest.mark.parametrize("format_name", ["text", "json", "sarif"])
    def test_output_identical_across_hash_seeds(self, bad_tree, format_name):
        outputs = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.abspath("src"), env.get("PYTHONPATH")) if p
            )
            completed = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.analysis",
                    "--format",
                    format_name,
                    "--no-baseline",
                    str(bad_tree),
                ],
                capture_output=True,
                env=env,
            )
            assert completed.returncode == 1
            outputs.add(completed.stdout)
        assert len(outputs) == 1
