"""Keep the README honest: its quickstart snippet must actually run."""

import importlib.util
from pathlib import Path

def test_readme_quickstart_snippet():
    from repro import (WorkloadConfig, generate_epoch_workload,
                       SEConfig, StochasticExploration, summarize_schedule)

    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=100, capacity=100_000, alpha=1.5, seed=42))
    result = StochasticExploration(
        SEConfig(num_threads=10, max_iterations=1000, convergence_window=400)).solve(
            workload.instance)
    row = summarize_schedule(workload.instance, result.best_mask, "SE").as_row()
    assert row["algorithm"] == "SE"
    assert row["throughput_txs"] <= 100_000
    assert row["feasible"]


def test_package_docstring_example():
    """The example in repro/__init__.py's docstring."""
    from repro import WorkloadConfig, generate_epoch_workload, SEConfig, StochasticExploration

    workload = generate_epoch_workload(WorkloadConfig(num_committees=50, capacity=50_000))
    result = StochasticExploration(SEConfig(num_threads=5, max_iterations=500)).solve(
        workload.instance)
    assert result.best_weight <= workload.instance.capacity


def test_observability_snippet():
    """The README's Observability section, end to end in memory."""
    from repro.core.se import SEConfig, StochasticExploration
    from repro.data.workload import WorkloadConfig, generate_epoch_workload
    from repro.obs import RingBufferSink, Telemetry

    ring = RingBufferSink()
    telemetry = Telemetry(sinks=[ring])
    workload = generate_epoch_workload(WorkloadConfig(num_committees=30, capacity=30_000))
    StochasticExploration(
        SEConfig(num_threads=3, max_iterations=200, convergence_window=100),
        telemetry=telemetry,
    ).solve(workload.instance)
    assert any(r["name"] == "se.transition" for r in ring.records)
    assert telemetry.snapshot()["counters"]["se.reset_broadcasts"] >= 0


def test_traced_run_example(capsys):
    """examples/traced_run.py must execute and render the trace report."""
    path = Path(__file__).resolve().parent.parent / "examples" / "traced_run.py"
    spec = importlib.util.spec_from_file_location("traced_run_example", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert "SE solve: utility=" in out
    assert "Top spans by cumulative time" in out
    assert "Profile hotspots" in out
