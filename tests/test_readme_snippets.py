"""Keep the README honest: its quickstart snippet must actually run."""

def test_readme_quickstart_snippet():
    from repro import (WorkloadConfig, generate_epoch_workload,
                       SEConfig, StochasticExploration, summarize_schedule)

    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=100, capacity=100_000, alpha=1.5, seed=42))
    result = StochasticExploration(
        SEConfig(num_threads=10, max_iterations=1000, convergence_window=400)).solve(
            workload.instance)
    row = summarize_schedule(workload.instance, result.best_mask, "SE").as_row()
    assert row["algorithm"] == "SE"
    assert row["throughput_txs"] <= 100_000
    assert row["feasible"]


def test_package_docstring_example():
    """The example in repro/__init__.py's docstring."""
    from repro import WorkloadConfig, generate_epoch_workload, SEConfig, StochasticExploration

    workload = generate_epoch_workload(WorkloadConfig(num_committees=50, capacity=50_000))
    result = StochasticExploration(SEConfig(num_threads=5, max_iterations=500)).solve(
        workload.instance)
    assert result.best_weight <= workload.instance.capacity
