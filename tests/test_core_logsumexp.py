"""Tests for the log-sum-exp approximation (Section IV-B, Remark 1)."""

import numpy as np
import pytest

from repro.core.logsumexp import (
    approximation_loss_bound,
    entropy,
    expected_utility,
    log_softmax,
    optimality_gap,
    stationary_distribution,
)


class TestStationaryDistribution:
    def test_sums_to_one(self):
        probabilities = stationary_distribution(2.0, [1.0, 2.0, 3.0])
        assert probabilities.sum() == pytest.approx(1.0)

    def test_monotone_in_utility(self):
        probabilities = stationary_distribution(2.0, [1.0, 2.0, 3.0])
        assert probabilities[0] < probabilities[1] < probabilities[2]

    def test_matches_gibbs_formula_directly(self):
        """p*_f = exp(beta U_f) / sum exp(beta U_f') -- eq. (6)."""
        utilities = np.array([0.3, 1.1, -0.4])
        beta = 1.7
        weights = np.exp(beta * utilities)
        expected = weights / weights.sum()
        assert np.allclose(stationary_distribution(beta, utilities), expected)

    def test_numerically_stable_for_huge_utilities(self):
        """The paper-scale case: beta*U ~ 1e6 would overflow naive exp."""
        probabilities = stationary_distribution(2.0, [500_000.0, 499_999.0, 100.0])
        assert np.isfinite(probabilities).all()
        assert probabilities.sum() == pytest.approx(1.0)
        assert probabilities[0] > probabilities[1] > probabilities[2]

    def test_uniform_for_equal_utilities(self):
        probabilities = stationary_distribution(3.0, [5.0] * 4)
        assert np.allclose(probabilities, 0.25)

    def test_concentrates_as_beta_grows(self):
        spread = stationary_distribution(0.1, [1.0, 2.0])
        sharp = stationary_distribution(10.0, [1.0, 2.0])
        assert sharp[1] > spread[1]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            stationary_distribution(0.0, [1.0])
        with pytest.raises(ValueError):
            stationary_distribution(1.0, [])


class TestApproximationBound:
    def test_remark1_bound_formula(self):
        assert approximation_loss_bound(2.0, 8) == pytest.approx(np.log(8) / 2.0)

    def test_gap_respects_bound_random_instances(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            utilities = rng.normal(0, 10, size=rng.integers(2, 40))
            beta = float(rng.uniform(0.05, 5.0))
            gap = optimality_gap(beta, utilities)
            assert gap <= approximation_loss_bound(beta, len(utilities)) + 1e-9
            assert gap >= -1e-9

    def test_gap_shrinks_with_beta(self):
        utilities = [0.0, 1.0, 2.0, 3.0]
        gaps = [optimality_gap(beta, utilities) for beta in (0.5, 1.0, 2.0, 4.0)]
        assert gaps == sorted(gaps, reverse=True)

    def test_expected_utility_below_max(self):
        utilities = [1.0, 5.0, 3.0]
        assert expected_utility(1.0, utilities) <= 5.0


class TestEntropy:
    def test_uniform_maximises(self):
        assert entropy([0.25] * 4) == pytest.approx(np.log(4))

    def test_degenerate_is_zero(self):
        assert entropy([1.0, 0.0, 0.0]) == 0.0

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            entropy([-0.1, 1.1])

    def test_log_softmax_consistency(self):
        log_p = log_softmax(2.0, [1.0, 2.0])
        assert np.allclose(np.exp(log_p), stationary_distribution(2.0, [1.0, 2.0]))

    def test_gibbs_maximises_free_energy(self):
        """The Gibbs distribution maximises E[U] + H/beta over distributions.

        This is the variational fact Remark 1 rests on; check against random
        competitor distributions.
        """
        rng = np.random.default_rng(1)
        utilities = rng.normal(0, 3, size=10)
        beta = 1.3
        gibbs = stationary_distribution(beta, utilities)
        objective = gibbs @ utilities + entropy(gibbs) / beta
        for _ in range(50):
            competitor = rng.dirichlet(np.ones(10))
            competitor_objective = competitor @ utilities + entropy(competitor) / beta
            assert competitor_objective <= objective + 1e-9
