"""Tests for the PBFT intra-committee consensus simulation."""

import numpy as np
import pytest

from repro.chain.node import Node, spawn_nodes
from repro.chain.params import NetworkParams
from repro.chain.pbft import run_pbft_round


def make_committee(size, byzantine=0, seed=0):
    rng = np.random.default_rng(seed)
    nodes = spawn_nodes(size, 0.0, rng)
    for node in nodes[:byzantine]:
        node.honest = False
    # keep the primary honest unless the test wants otherwise
    nodes[0], nodes[-1] = nodes[-1], nodes[0]
    return nodes


NETWORK = NetworkParams(base_delay=1.0, jitter_sigma=0.3)


class TestCommit:
    def test_all_honest_commits(self):
        outcome = run_pbft_round(make_committee(7), np.random.default_rng(1), NETWORK, 5.0)
        assert outcome.committed
        assert outcome.latency > 0

    def test_stage_times_ordered(self):
        outcome = run_pbft_round(make_committee(7), np.random.default_rng(1), NETWORK, 5.0)
        stages = outcome.stage_times
        assert stages["pre-prepare-sent"] <= stages["prepare-quorum"] <= stages["commit-quorum"]

    def test_commits_with_f_byzantine(self):
        # 7 = 3f+1 with f=2: up to 2 silent members tolerated.
        outcome = run_pbft_round(
            make_committee(7, byzantine=2, seed=3), np.random.default_rng(1), NETWORK, 5.0
        )
        assert outcome.committed

    def test_stalls_beyond_f_byzantine(self):
        outcome = run_pbft_round(
            make_committee(7, byzantine=3, seed=3), np.random.default_rng(1), NETWORK, 5.0
        )
        assert not outcome.committed
        assert outcome.commit_time is None

    def test_byzantine_primary_replaced_by_view_change(self):
        nodes = make_committee(7, byzantine=0, seed=4)
        nodes[0].honest = False  # primary itself is Byzantine
        outcome = run_pbft_round(nodes, np.random.default_rng(1), NETWORK, 5.0)
        assert outcome.committed
        # The view change shows up in the stages and in the latency: the
        # round pays (at least) the view-change timeout before committing.
        assert any(stage.startswith("new-view") for stage in outcome.stage_times)
        assert outcome.latency > 60.0

    def test_honest_primary_needs_no_view_change(self):
        outcome = run_pbft_round(make_committee(7), np.random.default_rng(1), NETWORK, 5.0)
        assert not any(stage.startswith("new-view") for stage in outcome.stage_times)

    def test_consecutive_byzantine_primaries_skipped(self):
        nodes = make_committee(10, byzantine=0, seed=4)
        nodes[0].honest = False
        nodes[1].honest = False  # the next primary is Byzantine too
        outcome = run_pbft_round(nodes, np.random.default_rng(1), NETWORK, 5.0)
        assert outcome.committed
        # Two view changes -> the round pays two timeouts.
        assert outcome.latency > 120.0

    def test_too_small_committee_rejected(self):
        with pytest.raises(ValueError):
            run_pbft_round(make_committee(3), np.random.default_rng(1), NETWORK, 5.0)

    def test_latency_property_requires_commit(self):
        outcome = run_pbft_round(
            make_committee(7, byzantine=3, seed=3), np.random.default_rng(1), NETWORK, 5.0
        )
        with pytest.raises(ValueError):
            _ = outcome.latency


class TestLatencyStructure:
    def test_latency_grows_with_verify_mean(self):
        slow = run_pbft_round(make_committee(7), np.random.default_rng(1), NETWORK, 30.0)
        fast = run_pbft_round(make_committee(7), np.random.default_rng(1), NETWORK, 1.0)
        assert slow.latency > fast.latency

    def test_latency_varies_across_committees(self):
        """Heterogeneity: different committees take visibly different times
        (the paper's unbalanced intra-consensus latency)."""
        latencies = [
            run_pbft_round(make_committee(7, seed=s), np.random.default_rng(s), NETWORK, 10.0).latency
            for s in range(12)
        ]
        assert np.std(latencies) > 0.05 * np.mean(latencies)

    def test_deterministic_per_rng(self):
        a = run_pbft_round(make_committee(7), np.random.default_rng(5), NETWORK, 5.0)
        b = run_pbft_round(make_committee(7), np.random.default_rng(5), NETWORK, 5.0)
        assert a.latency == pytest.approx(b.latency)
