"""Engine-equivalence tests for the SE execution-engine layer.

Three engines share one algorithm (:mod:`repro.core.engine`):

* ``serial`` — the reference loop; pinned by the wider suite and by the
  golden fingerprint below.
* ``parallel`` — Γ replicas across a spawn-safe process pool, segmented
  between dynamic events; must be **byte-identical** to serial (same
  seeds → same masks, traces, iteration counts, applied events), with and
  without churn-storm schedules, including the chunked-convergence
  truncation edges.
* ``vectorized`` — a batched race kernel with its own stream layout;
  validated *distributionally*: χ² of per-round state occupancy against
  the Gibbs distribution ``p* ∝ exp(βU_f)`` (eq. 6) on a small instance,
  and a KS comparison of converged utilities vs serial across seeds.
"""

import itertools
import math
from dataclasses import asdict

import numpy as np
import pytest

from repro.core import engine as engine_module
from repro.core.dynamics import fail_and_recover_schedule
from repro.core.problem import EpochInstance, MVComConfig
from repro.core.se import SEConfig, SEResult, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.faultinject.runner import (
    DEFAULT_ARMED,
    REPRODUCER_FORMAT,
    build_storm_instance,
    event_to_json,
    replay_reproducer,
    run_storm,
)
from repro.faultinject.storm import StormConfig, generate_storm
from repro.sim.rng import RandomStreams

WORKERS = 4  # all parallel tests share one pool via engine._shared_pool


def solve_with(engine, *, num_committees=30, capacity=25_000, seed=0, gamma=4,
               max_iterations=500, convergence_window=200, schedule=None):
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=num_committees, capacity=capacity, seed=seed)
    )
    config = SEConfig(
        num_threads=gamma,
        max_iterations=max_iterations,
        convergence_window=convergence_window,
        seed=seed,
        engine=engine,
        num_workers=WORKERS,
    )
    if schedule is not None:
        schedule.reset()
    return StochasticExploration(config).solve(workload.instance, schedule=schedule)


def assert_byte_identical(a: SEResult, b: SEResult) -> None:
    """Bit-for-bit equality of everything an SEResult carries."""
    assert np.array_equal(a.best_mask, b.best_mask)
    assert a.best_utility == b.best_utility
    assert a.best_weight == b.best_weight
    assert a.best_count == b.best_count
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert np.array_equal(a.utility_trace, b.utility_trace)
    assert np.array_equal(a.current_trace, b.current_trace)
    assert np.array_equal(a.virtual_time_trace, b.virtual_time_trace)
    assert a.thread_cardinalities == b.thread_cardinalities
    assert a.events_applied == b.events_applied


# ---------------------------------------------------------------------- #
# config plumbing
# ---------------------------------------------------------------------- #
class TestEngineConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SEConfig(engine="gpu")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            SEConfig(num_workers=0)

    def test_engine_names_exported(self):
        assert engine_module.ENGINE_NAMES == ("serial", "parallel", "vectorized")


# ---------------------------------------------------------------------- #
# serial golden fingerprint (pins the reference engine)
# ---------------------------------------------------------------------- #
class TestSerialGolden:
    def test_serial_run_is_reproducible(self):
        first = solve_with("serial", seed=0)
        second = solve_with("serial", seed=0)
        assert_byte_identical(first, second)


# ---------------------------------------------------------------------- #
# serial <-> parallel byte identity
# ---------------------------------------------------------------------- #
class TestParallelByteIdentity:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("gamma", [1, 4, 10])
    def test_static_epochs(self, seed, gamma):
        serial = solve_with("serial", seed=seed, gamma=gamma)
        parallel = solve_with("parallel", seed=seed, gamma=gamma)
        assert_byte_identical(serial, parallel)

    def test_dynamic_schedule(self):
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=30, capacity=25_000, seed=7)
        )
        instance = workload.instance
        schedule = fail_and_recover_schedule(
            shard_id=int(instance.shard_ids[2]),
            tx_count=int(instance.tx_counts[2]),
            latency=float(instance.latencies[2]),
            fail_at=60,
            recover_at=160,
        )
        results = []
        for engine in ("serial", "parallel"):
            schedule.reset()
            config = SEConfig(
                num_threads=4, max_iterations=400, convergence_window=150,
                seed=7, engine=engine, num_workers=WORKERS,
            )
            results.append(StochasticExploration(config).solve(instance, schedule=schedule))
        assert_byte_identical(results[0], results[1])
        assert len(results[1].events_applied) == 2

    @pytest.mark.parametrize("seed", [0, 5])
    def test_churn_storm(self, seed):
        config = StormConfig(
            seed=seed, num_committees=24, gamma=4, num_events=60,
            max_iterations=500, convergence_window=200,
        )
        serial = run_storm(config, engine="serial")
        parallel = run_storm(config, engine="parallel", num_workers=WORKERS)
        assert serial.status == parallel.status
        assert serial.boundaries == parallel.boundaries
        if serial.result is not None:
            assert_byte_identical(serial.result, parallel.result)

    def test_replayed_reproducer(self):
        """A stored reproducer replays to the same outcome on either engine."""
        config = StormConfig(
            seed=2, num_committees=24, gamma=4, num_events=40,
            max_iterations=400, convergence_window=150,
        )
        instance = build_storm_instance(config)
        events = generate_storm(instance, config, RandomStreams(config.seed))
        reproducer = {
            "format": REPRODUCER_FORMAT,
            "config": asdict(config),
            "armed": list(DEFAULT_ARMED),
            "events": [event_to_json(event) for event in events],
        }
        serial = replay_reproducer(reproducer, engine="serial")
        parallel = replay_reproducer(reproducer, engine="parallel", num_workers=WORKERS)
        assert serial.status == parallel.status
        assert serial.boundaries == parallel.boundaries
        if serial.result is not None:
            assert_byte_identical(serial.result, parallel.result)


# ---------------------------------------------------------------------- #
# chunked-convergence truncation edges
# ---------------------------------------------------------------------- #
def _frozen_instance() -> EpochInstance:
    """An instance whose threads can never swap: every pair is rejected.

    Geometric tx counts with capacity equal to the lightest-k prefix sum
    make any swap-in strictly heavier than the swap-out it replaces, so
    every thread parks each round and the detector converges after exactly
    ``convergence_window`` stale rounds.
    """
    tx = [1, 2, 4, 8, 16, 32]
    config = MVComConfig(alpha=4.0, capacity=3, n_min_fraction=0.3)  # Ĉ fits {1,2}
    return EpochInstance(tx_counts=tx, latencies=[10.0 * (i + 1) for i in range(6)],
                        config=config, ddl=60.0)


class TestChunkTruncation:
    def test_convergence_at_first_round_of_chunk(self):
        """Window w ⇒ converged at iteration w (round index w-1): the serial
        and parallel engines must truncate the second chunk at its first round."""
        instance = _frozen_instance()
        results = []
        for engine in ("serial", "parallel"):
            config = SEConfig(
                num_threads=3, max_iterations=500, convergence_window=100,
                seed=1, engine=engine, num_workers=WORKERS,
            )
            results.append(StochasticExploration(config).solve(instance))
        serial, parallel = results
        assert serial.converged and serial.iterations == 101
        assert_byte_identical(serial, parallel)

    @pytest.mark.parametrize("window", [99, 100, 101])
    def test_convergence_around_chunk_boundary(self, window):
        """±1 around the segment size: truncation may fall on the last round
        of a chunk, exactly at the boundary, or one round into the next."""
        instance = _frozen_instance()
        results = []
        for engine in ("serial", "parallel"):
            config = SEConfig(
                num_threads=2, max_iterations=400, convergence_window=window,
                seed=2, engine=engine, num_workers=WORKERS,
            )
            results.append(StochasticExploration(config).solve(instance))
        assert results[0].converged
        assert_byte_identical(results[0], results[1])

    def test_max_iterations_exhausts_mid_chunk(self):
        """max_iterations not a multiple of the window: the final segment is
        shorter than convergence_window and both engines stop at the cap."""
        serial = solve_with("serial", seed=4, max_iterations=250, convergence_window=400)
        parallel = solve_with("parallel", seed=4, max_iterations=250, convergence_window=400)
        assert not serial.converged and serial.iterations == 250
        assert_byte_identical(serial, parallel)


# ---------------------------------------------------------------------- #
# vectorized engine: distributional validation
# ---------------------------------------------------------------------- #
def wilson_hilferty_critical(df: int, z: float) -> float:
    """Upper χ² quantile via the Wilson–Hilferty cube approximation."""
    return df * (1.0 - 2.0 / (9.0 * df) + z * math.sqrt(2.0 / (9.0 * df))) ** 3


def _flat_race_instance(num_shards: int) -> EpochInstance:
    """Equal tx counts (capacity never binds) with a linear value ladder:
    alpha*s - (ddl - l) makes shard k worth exactly 5(k+1) utility units."""
    config = MVComConfig(alpha=4.0, capacity=10 * num_shards, n_min_fraction=1.0 / num_shards)
    latencies = [5.0 * (i + 1) for i in range(num_shards)]
    return EpochInstance(
        tx_counts=[10] * num_shards, latencies=latencies, config=config,
        ddl=5.0 * num_shards,
    )


class TestVectorizedGibbs:
    def test_chi_square_stationarity(self):
        """Per-round occupancy of the cardinality-2 threads matches the Gibbs
        distribution p* ∝ exp(βU_f) (eq. 6) and decisively rejects uniform.

        Occupancy is counted per *round* (not per fire): a thread parks in a
        state for a number of rounds inversely proportional to its race-win
        probability, which is what restores the exp(βU) weighting that the
        raw jump chain lacks.  The race against finitely many sibling
        threads shrinks the effective β by ~1/#threads (win probability
        saturates as r/(r+R)); 16 shards → 15 racing siblings keep that
        bias inside the α=0.001 χ² band at this sample size, while the
        uniform hypothesis is rejected by >3× the critical value.
        """
        num_shards, card, beta = 16, 2, 1.0 / 60.0
        gamma, rounds, burn, every = 8, 30_000, 500, 90
        instance = _flat_race_instance(num_shards)
        config = SEConfig(
            num_threads=gamma, max_iterations=rounds, convergence_window=10 ** 6,
            seed=3, engine="vectorized", beta=beta,
        )
        solver = StochasticExploration(config)
        run = engine_module._EngineRun(solver, instance, None, None)
        state = engine_module._VectorState(run.replicas, instance, solver.config)
        targets = [row for row in range(state.size) if state.cards[row] == card]
        assert len(targets) == gamma
        race_rng = run.streams.get("vectorized-race")

        counts: dict = {}
        done = 0
        while done < rounds:
            block = min(rounds - done, 512)
            state.start_block(race_rng, block)
            for k in range(block):
                state.race_round(k)
                round_index = done + k
                if round_index >= burn and (round_index - burn) % every == 0:
                    for row in targets:
                        offset = int(state.off_sel[row])
                        key = tuple(sorted(
                            int(x) for x in
                            state.sel_flat[offset: offset + int(state.n_sel[row])]
                        ))
                        counts[key] = counts.get(key, 0) + 1
            done += block

        states = list(itertools.combinations(range(num_shards), card))
        values = np.asarray(instance.values)
        utilities = np.array([values[list(s)].sum() for s in states])
        gibbs = np.exp(beta * (utilities - utilities.max()))
        gibbs /= gibbs.sum()
        uniform = np.full(len(states), 1.0 / len(states))
        observed = np.array([counts.get(s, 0) for s in states], dtype=float)
        total = observed.sum()
        assert total > 2_000  # enough mass for ~20 expected counts per state

        def chi_square(expected_p: np.ndarray) -> float:
            expected = expected_p * total
            return float(((observed - expected) ** 2 / expected).sum())

        critical = wilson_hilferty_critical(len(states) - 1, z=3.0902)  # α=0.001
        assert chi_square(gibbs) < critical
        assert chi_square(uniform) > 3.0 * critical

    def test_ks_converged_utilities_match_serial(self):
        """Two-sample KS over 50 seeds: converged best utilities of the
        vectorized engine are distributionally indistinguishable from serial
        (α=0.01 ⇒ D < 1.628·sqrt(2/n))."""
        seeds = range(50)
        serial_u, vector_u = [], []
        for seed in seeds:
            for engine, sink in (("serial", serial_u), ("vectorized", vector_u)):
                result = solve_with(
                    engine, num_committees=20, capacity=16_000, seed=seed,
                    gamma=2, max_iterations=300, convergence_window=150,
                )
                sink.append(result.best_utility)
        a = np.sort(np.asarray(serial_u))
        b = np.sort(np.asarray(vector_u))
        grid = np.union1d(a, b)
        cdf_a = np.searchsorted(a, grid, side="right") / a.size
        cdf_b = np.searchsorted(b, grid, side="right") / b.size
        d_stat = float(np.abs(cdf_a - cdf_b).max())
        d_crit = 1.628 * math.sqrt((a.size + b.size) / (a.size * b.size))
        assert d_stat < d_crit


class TestVectorizedBehaviour:
    def test_same_seed_reproducible(self):
        first = solve_with("vectorized", seed=9)
        second = solve_with("vectorized", seed=9)
        assert_byte_identical(first, second)

    def test_trace_monotone_and_feasible(self):
        result = solve_with("vectorized", seed=5)
        assert (np.diff(result.utility_trace) >= -1e-9).all()
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=30, capacity=25_000, seed=5)
        )
        assert workload.instance.weight(result.best_mask) == result.best_weight
        assert result.best_weight <= workload.instance.capacity
        assert result.best_count >= workload.instance.n_min

    def test_dynamic_schedule_applies_events(self):
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=30, capacity=25_000, seed=7)
        )
        instance = workload.instance
        schedule = fail_and_recover_schedule(
            shard_id=int(instance.shard_ids[2]),
            tx_count=int(instance.tx_counts[2]),
            latency=float(instance.latencies[2]),
            fail_at=60,
            recover_at=160,
        )
        config = SEConfig(
            num_threads=4, max_iterations=400, convergence_window=150,
            seed=7, engine="vectorized",
        )
        result = StochasticExploration(config).solve(instance, schedule=schedule)
        assert len(result.events_applied) == 2
        final = result.final_instance
        assert final.weight(result.best_mask) <= final.capacity
