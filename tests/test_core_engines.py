"""Engine-equivalence tests for the SE execution-engine layer.

Three engines share one algorithm (:mod:`repro.core.engine`):

* ``serial`` — the reference loop; pinned by the wider suite and by the
  golden fingerprint below.
* ``parallel`` — Γ replicas across a spawn-safe process pool, segmented
  between dynamic events; must be **byte-identical** to serial (same
  seeds → same masks, traces, iteration counts, applied events), with and
  without churn-storm schedules, including the chunked-convergence
  truncation edges.
* ``vectorized`` — a batched race kernel with its own stream layout;
  validated *distributionally*: χ² of per-round state occupancy against
  the Gibbs distribution ``p* ∝ exp(βU_f)`` (eq. 6) on a small instance,
  and a KS comparison of converged utilities vs serial across seeds.
"""

import itertools
import math
from dataclasses import asdict

import numpy as np
import pytest

from repro.core import engine as engine_module
from repro.core.dynamics import (
    CommitteeEvent,
    DynamicSchedule,
    EventKind,
    fail_and_recover_schedule,
)
from repro.core.problem import EpochInstance, MVComConfig
from repro.core.se import SEConfig, SEResult, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.faultinject.runner import (
    DEFAULT_ARMED,
    REPRODUCER_FORMAT,
    build_storm_instance,
    event_to_json,
    replay_reproducer,
    run_storm,
)
from repro.faultinject.storm import StormConfig, generate_storm
from repro.sim.rng import RandomStreams

WORKERS = 4  # all parallel tests share one pool via engine._shared_pool


def solve_with(engine, *, num_committees=30, capacity=25_000, seed=0, gamma=4,
               max_iterations=500, convergence_window=200, schedule=None):
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=num_committees, capacity=capacity, seed=seed)
    )
    config = SEConfig(
        num_threads=gamma,
        max_iterations=max_iterations,
        convergence_window=convergence_window,
        seed=seed,
        engine=engine,
        num_workers=WORKERS,
    )
    if schedule is not None:
        schedule.reset()
    return StochasticExploration(config).solve(workload.instance, schedule=schedule)


def assert_byte_identical(a: SEResult, b: SEResult) -> None:
    """Bit-for-bit equality of everything an SEResult carries."""
    assert np.array_equal(a.best_mask, b.best_mask)
    assert a.best_utility == b.best_utility
    assert a.best_weight == b.best_weight
    assert a.best_count == b.best_count
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert np.array_equal(a.utility_trace, b.utility_trace)
    assert np.array_equal(a.current_trace, b.current_trace)
    assert np.array_equal(a.virtual_time_trace, b.virtual_time_trace)
    assert a.thread_cardinalities == b.thread_cardinalities
    assert a.events_applied == b.events_applied


# ---------------------------------------------------------------------- #
# config plumbing
# ---------------------------------------------------------------------- #
class TestEngineConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SEConfig(engine="gpu")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            SEConfig(num_workers=0)

    def test_engine_names_exported(self):
        assert engine_module.ENGINE_NAMES == ("serial", "parallel", "vectorized")


# ---------------------------------------------------------------------- #
# serial golden fingerprint (pins the reference engine)
# ---------------------------------------------------------------------- #
class TestSerialGolden:
    def test_serial_run_is_reproducible(self):
        first = solve_with("serial", seed=0)
        second = solve_with("serial", seed=0)
        assert_byte_identical(first, second)


# ---------------------------------------------------------------------- #
# serial <-> parallel byte identity
# ---------------------------------------------------------------------- #
class TestParallelByteIdentity:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("gamma", [1, 4, 10])
    def test_static_epochs(self, seed, gamma):
        serial = solve_with("serial", seed=seed, gamma=gamma)
        parallel = solve_with("parallel", seed=seed, gamma=gamma)
        assert_byte_identical(serial, parallel)

    def test_dynamic_schedule(self):
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=30, capacity=25_000, seed=7)
        )
        instance = workload.instance
        schedule = fail_and_recover_schedule(
            shard_id=int(instance.shard_ids[2]),
            tx_count=int(instance.tx_counts[2]),
            latency=float(instance.latencies[2]),
            fail_at=60,
            recover_at=160,
        )
        results = []
        for engine in ("serial", "parallel"):
            schedule.reset()
            config = SEConfig(
                num_threads=4, max_iterations=400, convergence_window=150,
                seed=7, engine=engine, num_workers=WORKERS,
            )
            results.append(StochasticExploration(config).solve(instance, schedule=schedule))
        assert_byte_identical(results[0], results[1])
        assert len(results[1].events_applied) == 2

    @pytest.mark.parametrize("seed", [0, 5])
    def test_churn_storm(self, seed):
        config = StormConfig(
            seed=seed, num_committees=24, gamma=4, num_events=60,
            max_iterations=500, convergence_window=200,
        )
        serial = run_storm(config, engine="serial")
        parallel = run_storm(config, engine="parallel", num_workers=WORKERS)
        assert serial.status == parallel.status
        assert serial.boundaries == parallel.boundaries
        if serial.result is not None:
            assert_byte_identical(serial.result, parallel.result)

    def test_replayed_reproducer(self):
        """A stored reproducer replays to the same outcome on either engine."""
        config = StormConfig(
            seed=2, num_committees=24, gamma=4, num_events=40,
            max_iterations=400, convergence_window=150,
        )
        instance = build_storm_instance(config)
        events = generate_storm(instance, config, RandomStreams(config.seed))
        reproducer = {
            "format": REPRODUCER_FORMAT,
            "config": asdict(config),
            "armed": list(DEFAULT_ARMED),
            "events": [event_to_json(event) for event in events],
        }
        serial = replay_reproducer(reproducer, engine="serial")
        parallel = replay_reproducer(reproducer, engine="parallel", num_workers=WORKERS)
        assert serial.status == parallel.status
        assert serial.boundaries == parallel.boundaries
        if serial.result is not None:
            assert_byte_identical(serial.result, parallel.result)


# ---------------------------------------------------------------------- #
# chunked-convergence truncation edges
# ---------------------------------------------------------------------- #
def _frozen_instance() -> EpochInstance:
    """An instance whose threads can never swap: every pair is rejected.

    Geometric tx counts with capacity equal to the lightest-k prefix sum
    make any swap-in strictly heavier than the swap-out it replaces, so
    every thread parks each round and the detector converges after exactly
    ``convergence_window`` stale rounds.
    """
    tx = [1, 2, 4, 8, 16, 32]
    config = MVComConfig(alpha=4.0, capacity=3, n_min_fraction=0.3)  # Ĉ fits {1,2}
    return EpochInstance(tx_counts=tx, latencies=[10.0 * (i + 1) for i in range(6)],
                        config=config, ddl=60.0)


class TestChunkTruncation:
    def test_convergence_at_first_round_of_chunk(self):
        """Window w ⇒ converged at iteration w (round index w-1): the serial
        and parallel engines must truncate the second chunk at its first round."""
        instance = _frozen_instance()
        results = []
        for engine in ("serial", "parallel"):
            config = SEConfig(
                num_threads=3, max_iterations=500, convergence_window=100,
                seed=1, engine=engine, num_workers=WORKERS,
            )
            results.append(StochasticExploration(config).solve(instance))
        serial, parallel = results
        assert serial.converged and serial.iterations == 101
        assert_byte_identical(serial, parallel)

    @pytest.mark.parametrize("window", [99, 100, 101])
    def test_convergence_around_chunk_boundary(self, window):
        """±1 around the segment size: truncation may fall on the last round
        of a chunk, exactly at the boundary, or one round into the next."""
        instance = _frozen_instance()
        results = []
        for engine in ("serial", "parallel"):
            config = SEConfig(
                num_threads=2, max_iterations=400, convergence_window=window,
                seed=2, engine=engine, num_workers=WORKERS,
            )
            results.append(StochasticExploration(config).solve(instance))
        assert results[0].converged
        assert_byte_identical(results[0], results[1])

    def test_max_iterations_exhausts_mid_chunk(self):
        """max_iterations not a multiple of the window: the final segment is
        shorter than convergence_window and both engines stop at the cap."""
        serial = solve_with("serial", seed=4, max_iterations=250, convergence_window=400)
        parallel = solve_with("parallel", seed=4, max_iterations=250, convergence_window=400)
        assert not serial.converged and serial.iterations == 250
        assert_byte_identical(serial, parallel)


# ---------------------------------------------------------------------- #
# vectorized engine: distributional validation
# ---------------------------------------------------------------------- #
def wilson_hilferty_critical(df: int, z: float) -> float:
    """Upper χ² quantile via the Wilson–Hilferty cube approximation."""
    return df * (1.0 - 2.0 / (9.0 * df) + z * math.sqrt(2.0 / (9.0 * df))) ** 3


def _flat_race_instance(num_shards: int) -> EpochInstance:
    """Equal tx counts (capacity never binds) with a linear value ladder:
    alpha*s - (ddl - l) makes shard k worth exactly 5(k+1) utility units."""
    config = MVComConfig(alpha=4.0, capacity=10 * num_shards, n_min_fraction=1.0 / num_shards)
    latencies = [5.0 * (i + 1) for i in range(num_shards)]
    return EpochInstance(
        tx_counts=[10] * num_shards, latencies=latencies, config=config,
        ddl=5.0 * num_shards,
    )


class TestVectorizedGibbs:
    def test_chi_square_stationarity(self):
        """Per-round occupancy of the cardinality-2 threads matches the Gibbs
        distribution p* ∝ exp(βU_f) (eq. 6) and decisively rejects uniform.

        Occupancy is counted per *round* (not per fire): a thread parks in a
        state for a number of rounds inversely proportional to its race-win
        probability, which is what restores the exp(βU) weighting that the
        raw jump chain lacks.  The race against finitely many sibling
        threads shrinks the effective β by ~1/#threads (win probability
        saturates as r/(r+R)); 16 shards → 15 racing siblings keep that
        bias inside the α=0.001 χ² band at this sample size, while the
        uniform hypothesis is rejected by >3× the critical value.
        """
        num_shards, card, beta = 16, 2, 1.0 / 60.0
        gamma, rounds, burn, every = 8, 30_000, 500, 90
        instance = _flat_race_instance(num_shards)
        config = SEConfig(
            num_threads=gamma, max_iterations=rounds, convergence_window=10 ** 6,
            seed=3, engine="vectorized", beta=beta,
        )
        solver = StochasticExploration(config)
        run = engine_module._EngineRun(solver, instance, None, None)
        state = engine_module._VectorState(run.replicas, instance, solver.config)
        targets = [row for row in range(state.size) if state.cards[row] == card]
        assert len(targets) == gamma
        race_rng = run.streams.get("vectorized-race")

        counts: dict = {}
        done = 0
        while done < rounds:
            block = min(rounds - done, 512)
            state.start_block(race_rng, block)
            for k in range(block):
                state.race_round(k)
                round_index = done + k
                if round_index >= burn and (round_index - burn) % every == 0:
                    for row in targets:
                        offset = int(state.off_sel[row])
                        key = tuple(sorted(
                            int(x) for x in
                            state.sel_flat[offset: offset + int(state.n_sel[row])]
                        ))
                        counts[key] = counts.get(key, 0) + 1
            done += block

        states = list(itertools.combinations(range(num_shards), card))
        values = np.asarray(instance.values)
        utilities = np.array([values[list(s)].sum() for s in states])
        gibbs = np.exp(beta * (utilities - utilities.max()))
        gibbs /= gibbs.sum()
        uniform = np.full(len(states), 1.0 / len(states))
        observed = np.array([counts.get(s, 0) for s in states], dtype=float)
        total = observed.sum()
        assert total > 2_000  # enough mass for ~20 expected counts per state

        def chi_square(expected_p: np.ndarray) -> float:
            expected = expected_p * total
            return float(((observed - expected) ** 2 / expected).sum())

        critical = wilson_hilferty_critical(len(states) - 1, z=3.0902)  # α=0.001
        assert chi_square(gibbs) < critical
        assert chi_square(uniform) > 3.0 * critical

    def test_ks_converged_utilities_match_serial(self):
        """Two-sample KS over 50 seeds: converged best utilities of the
        vectorized engine are distributionally indistinguishable from serial
        (α=0.01 ⇒ D < 1.628·sqrt(2/n))."""
        seeds = range(50)
        serial_u, vector_u = [], []
        for seed in seeds:
            for engine, sink in (("serial", serial_u), ("vectorized", vector_u)):
                result = solve_with(
                    engine, num_committees=20, capacity=16_000, seed=seed,
                    gamma=2, max_iterations=300, convergence_window=150,
                )
                sink.append(result.best_utility)
        a = np.sort(np.asarray(serial_u))
        b = np.sort(np.asarray(vector_u))
        grid = np.union1d(a, b)
        cdf_a = np.searchsorted(a, grid, side="right") / a.size
        cdf_b = np.searchsorted(b, grid, side="right") / b.size
        d_stat = float(np.abs(cdf_a - cdf_b).max())
        d_crit = 1.628 * math.sqrt((a.size + b.size) / (a.size * b.size))
        assert d_stat < d_crit


class TestVectorizedBehaviour:
    def test_same_seed_reproducible(self):
        first = solve_with("vectorized", seed=9)
        second = solve_with("vectorized", seed=9)
        assert_byte_identical(first, second)

    def test_trace_monotone_and_feasible(self):
        result = solve_with("vectorized", seed=5)
        assert (np.diff(result.utility_trace) >= -1e-9).all()
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=30, capacity=25_000, seed=5)
        )
        assert workload.instance.weight(result.best_mask) == result.best_weight
        assert result.best_weight <= workload.instance.capacity
        assert result.best_count >= workload.instance.n_min

    def test_dynamic_schedule_applies_events(self):
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=30, capacity=25_000, seed=7)
        )
        instance = workload.instance
        schedule = fail_and_recover_schedule(
            shard_id=int(instance.shard_ids[2]),
            tx_count=int(instance.tx_counts[2]),
            latency=float(instance.latencies[2]),
            fail_at=60,
            recover_at=160,
        )
        config = SEConfig(
            num_threads=4, max_iterations=400, convergence_window=150,
            seed=7, engine="vectorized",
        )
        result = StochasticExploration(config).solve(instance, schedule=schedule)
        assert len(result.events_applied) == 2
        final = result.final_instance
        assert final.weight(result.best_mask) <= final.capacity


# ---------------------------------------------------------------------- #
# engine="auto" selection and equivalence
# ---------------------------------------------------------------------- #
class _CaptureSink:
    """Minimal telemetry sink: keeps every record for assertions."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)

    def close(self):
        pass


def _dense_schedule(max_iterations, every=10):
    """A schedule whose mean event gap is well under AUTO_DENSE_GAP_ROUNDS."""
    return DynamicSchedule(events=[
        CommitteeEvent(iteration=i, kind=EventKind.LEAVE, shard_id=0)
        for i in range(0, max_iterations, every)
    ])


class TestAutoEngine:
    def test_selectable_engines_exported(self):
        assert engine_module.SELECTABLE_ENGINES == (
            "auto", "serial", "parallel", "vectorized"
        )
        assert SEConfig().engine == engine_module.AUTO_ENGINE

    @pytest.mark.parametrize("gamma,racing,cpus,dense,expected", [
        # Small work: the scalar loop wins regardless of the core count.
        (2, 10, 1, False, "serial"),
        (2, 10, 64, False, "serial"),
        # Sparse schedule + big work: batched kernel, cpu-independent.
        (8, 60, 1, False, "vectorized"),
        (8, 60, 64, False, "vectorized"),
        # Dense schedule forces the byte-identical scalar family; the pool
        # only pays off with enough cores, replicas and work.
        (8, 600, 64, True, "parallel"),
        (8, 600, 2, True, "serial"),
        (2, 600, 64, True, "serial"),   # Gamma < AUTO_PARALLEL_MIN_GAMMA
        (8, 100, 64, True, "serial"),   # work < AUTO_PARALLEL_MIN_WORK
    ])
    def test_selection_matrix(self, gamma, racing, cpus, dense, expected):
        config = SEConfig(
            num_threads=gamma, max_iterations=400, convergence_window=100
        )
        schedule = _dense_schedule(400) if dense else None
        engine, reason = engine_module.select_engine(
            config, racing, schedule=schedule, cpu_count=cpus
        )
        assert engine == expected, reason

    def test_selection_is_machine_independent_for_the_batched_split(self):
        """The scalar-vs-batched decision (the only trajectory-changing
        split) never consults cpu_count: serial and parallel are
        byte-identical twins, so only they may differ by machine."""
        config = SEConfig(num_threads=8, max_iterations=400,
                          convergence_window=100)
        picks = {
            engine_module.select_engine(config, 60, cpu_count=cpus)[0]
            for cpus in (1, 2, 4, 64)
        }
        assert picks == {"vectorized"}

    def test_auto_small_instance_byte_identical_to_serial(self):
        """Default solve_with instance has work << AUTO_VECTORIZE_MIN_WORK,
        so auto must resolve to serial and reproduce its exact bytes."""
        assert_byte_identical(solve_with("auto"), solve_with("serial"))

    def test_auto_big_instance_matches_vectorized_and_logs_decision(self):
        """On a thread-rich instance auto resolves to the batched kernel:
        the pick is logged as an engine.auto event and the run is
        byte-identical to engine="vectorized" (same streams, same kernel) —
        which carries over the χ²-vs-Gibbs / KS validation of the batched
        kernel to every auto→batched pick."""
        from repro.obs.telemetry import Telemetry

        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=150, capacity=150_000, seed=2)
        )
        kwargs = dict(num_threads=8, max_iterations=120,
                      convergence_window=10 ** 6, seed=2)
        sink = _CaptureSink()
        hub = Telemetry(sinks=[sink])
        auto_result = StochasticExploration(
            SEConfig(engine="auto", **kwargs), telemetry=hub
        ).solve(workload.instance)
        hub.close()
        decisions = [r for r in sink.records if r.get("name") == "engine.auto"]
        assert len(decisions) == 1
        assert decisions[0]["engine"] == "vectorized"
        assert decisions[0]["work"] >= engine_module.AUTO_VECTORIZE_MIN_WORK
        explicit = StochasticExploration(
            SEConfig(engine="vectorized", **kwargs)
        ).solve(workload.instance)
        assert_byte_identical(auto_result, explicit)

    def test_auto_batched_picks_match_serial_distributionally(self):
        """KS over 30 seeds on an instance where auto picks the batched
        kernel: converged utilities indistinguishable from serial
        (alpha=0.01 => D < 1.628*sqrt(2/n))."""
        serial_u, auto_u = [], []
        for seed in range(30):
            for engine, sink in (("serial", serial_u), ("auto", auto_u)):
                result = solve_with(
                    engine, num_committees=40, capacity=32_000, seed=seed,
                    gamma=8, max_iterations=250, convergence_window=120,
                )
                sink.append(result.best_utility)
        a = np.sort(np.asarray(serial_u))
        b = np.sort(np.asarray(auto_u))
        grid = np.union1d(a, b)
        cdf_a = np.searchsorted(a, grid, side="right") / a.size
        cdf_b = np.searchsorted(b, grid, side="right") / b.size
        d_stat = float(np.abs(cdf_a - cdf_b).max())
        d_crit = 1.628 * math.sqrt((a.size + b.size) / (a.size * b.size))
        assert d_stat < d_crit


# ---------------------------------------------------------------------- #
# worker clamping (pool oversubscription bugfix)
# ---------------------------------------------------------------------- #
class TestWorkerClamp:
    def test_clamp_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            engine_module.clamp_workers(0)
        with pytest.raises(ValueError):
            engine_module.shared_pool(0)

    def test_clamp_caps_to_cores(self):
        assert engine_module.clamp_workers(8, cpu_count=2) == 2
        assert engine_module.clamp_workers(2, cpu_count=8) == 2
        assert engine_module.clamp_workers(1, cpu_count=1) == 1

    def test_run_parallel_emits_clamp_event(self, monkeypatch):
        from repro.obs.telemetry import Telemetry

        monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 1)
        sink = _CaptureSink()
        hub = Telemetry(sinks=[sink])
        config = SEConfig(
            num_threads=2, max_iterations=20, convergence_window=10 ** 6,
            seed=0, engine="parallel", num_workers=2,
        )
        StochasticExploration(config, telemetry=hub).solve(_frozen_instance())
        hub.close()
        clamps = [r for r in sink.records
                  if r.get("name") == "engine.workers_clamped"]
        assert clamps
        assert clamps[0]["requested"] == 2
        assert clamps[0]["granted"] == 1

    def test_resolve_sweep_workers(self):
        from repro.harness.parallel import resolve_sweep_workers

        assert resolve_sweep_workers("auto", cpu_count=1) == (1, None)
        assert resolve_sweep_workers("auto", cpu_count=2) == (1, None)
        assert resolve_sweep_workers("auto", cpu_count=3) == (3, None)
        assert resolve_sweep_workers("auto", cpu_count=16) == (4, None)
        workers, warning = resolve_sweep_workers(4, cpu_count=8)
        assert (workers, warning) == (4, None)
        workers, warning = resolve_sweep_workers(4, cpu_count=1)
        assert workers == 1
        assert warning is not None and "warning" in warning
        with pytest.raises(ValueError):
            resolve_sweep_workers(0, cpu_count=4)


# ---------------------------------------------------------------------- #
# batched-kernel accounting regressions (all-parked rounds, empty racing
# set, racing_current downgrade bookkeeping)
# ---------------------------------------------------------------------- #
class TestBatchedAccounting:
    def test_all_parked_rounds_are_byte_identical_to_serial(self):
        """On the frozen instance every pair is rejected, so every round is
        all-parked: no timer fires, no utility moves, no virtual time
        accrues.  Serial and batched must then agree bit-for-bit — same
        iteration count (all-parked rounds still feed the convergence
        detector), same constant traces, same zero virtual time."""
        instance = _frozen_instance()
        results = {}
        for engine in ("serial", "vectorized"):
            config = SEConfig(
                num_threads=3, max_iterations=400, convergence_window=100,
                seed=11, engine=engine,
            )
            results[engine] = StochasticExploration(config).solve(instance)
        assert_byte_identical(results["serial"], results["vectorized"])
        assert results["vectorized"].converged
        assert float(results["vectorized"].virtual_time_trace[-1]) == 0.0

    @pytest.mark.parametrize("engine", ["serial", "vectorized"])
    def test_leave_emptying_racing_set_keeps_virtual_time(self, engine):
        """A LEAVE that removes the last swappable pair empties the racing
        set mid-run.  The replica clocks advanced before the event must
        survive into every later trace entry (regression: the batched path
        reported 0.0 once no rows raced)."""
        config = MVComConfig(alpha=4.0, capacity=100, n_min_fraction=0.4)
        instance = EpochInstance(
            tx_counts=[5, 5], latencies=[5.0, 9.0], config=config, ddl=10.0
        )
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=20, kind=EventKind.LEAVE,
                           shard_id=int(instance.shard_ids[1]))
        ])
        se_config = SEConfig(
            num_threads=2, max_iterations=200, convergence_window=50,
            seed=3, engine=engine,
        )
        result = StochasticExploration(se_config).solve(
            instance, schedule=schedule
        )
        assert len(result.events_applied) == 1
        trace = np.asarray(result.virtual_time_trace)
        carried = float(trace[25])
        assert carried > 0.0  # clocks ran before the event
        assert np.all(trace[25:] == carried)

    def test_racing_current_tracks_utility_max_through_downgrades(self):
        """Drive the batched kernel round by round and pin the downgrade
        bookkeeping: after every round racing_current must equal the exact
        max over the racing rows' utilities, including rounds where the
        leading thread swapped downhill and a full rescan is required."""
        instance = _flat_race_instance(12)
        config = SEConfig(
            num_threads=4, max_iterations=600, convergence_window=10 ** 6,
            seed=5, engine="vectorized", beta=1.0 / 60.0,
        )
        solver = StochasticExploration(config)
        run = engine_module._EngineRun(solver, instance, None, None)
        state = engine_module._VectorState(
            run.replicas, instance, solver.config,
            retry_rng=run.streams.get("vectorized-race-retry"),
        )
        race_rng = run.streams.get("vectorized-race")
        downgrades = 0
        done, rounds = 0, 600
        previous_max = float(state.utility.max())
        while done < rounds:
            block = min(rounds - done, 128)
            state.start_block(race_rng, block)
            for k in range(block):
                state.race_round(k)
                current_max = float(state.utility.max())
                assert state.racing_current == current_max
                if current_max < previous_max:
                    downgrades += 1
                previous_max = current_max
            done += block
        assert downgrades > 0  # the rescan path was actually exercised
