"""Failure-injection tests: message loss through the protocol stack."""

import numpy as np
import pytest

from repro.chain.network import Network
from repro.chain.node import spawn_nodes
from repro.chain.params import ChainParams, NetworkParams
from repro.chain.pbft import run_pbft_round
from repro.sim.engine import SimulationEngine


class TestLossyNetwork:
    def test_loss_probability_validated(self):
        with pytest.raises(ValueError):
            NetworkParams(loss_probability=1.0)
        with pytest.raises(ValueError):
            NetworkParams(loss_probability=-0.1)

    def test_drop_rate_matches_probability(self):
        engine = SimulationEngine()
        params = NetworkParams(base_delay=1.0, loss_probability=0.3)
        network = Network(engine, params, np.random.default_rng(0))
        received = []
        network.register(0, lambda m: None)
        network.register(1, lambda m: received.append(m))
        for _ in range(2_000):
            network.send(0, 1, "ping")
        engine.run()
        assert network.messages_sent == 2_000
        assert network.messages_dropped == pytest.approx(600, rel=0.15)
        assert len(received) == 2_000 - network.messages_dropped

    def test_zero_loss_delivers_everything(self):
        engine = SimulationEngine()
        network = Network(engine, NetworkParams(base_delay=1.0), np.random.default_rng(0))
        received = []
        network.register(0, lambda m: None)
        network.register(1, lambda m: received.append(m))
        for _ in range(100):
            network.send(0, 1, "ping")
        engine.run()
        assert len(received) == 100
        assert network.messages_dropped == 0


class TestPbftUnderLoss:
    def _round(self, loss, seed=0, size=10):
        params = NetworkParams(base_delay=1.0, jitter_sigma=0.3, loss_probability=loss)
        members = spawn_nodes(size, 0.0, np.random.default_rng(seed))
        return run_pbft_round(members, np.random.default_rng(100 + seed), params, 5.0,
                              round_tag=f"loss-{loss}-{seed}")

    def test_commits_under_moderate_loss(self):
        """Quorum redundancy (2f+1 of 3f+1) absorbs 10% message loss."""
        committed = sum(1 for seed in range(6) if self._round(0.10, seed).committed)
        assert committed >= 5

    def test_loss_increases_latency(self):
        clean = [self._round(0.0, seed).latency for seed in range(6)]
        lossy = [self._round(0.15, seed).latency for seed in range(6)
                 if self._round(0.15, seed).committed]
        assert np.mean(lossy) >= np.mean(clean)

    def test_extreme_loss_can_stall_the_round(self):
        """At very high loss the quorum never assembles (no retransmission
        layer is modelled) -- the committee stalls, exactly the straggler
        behaviour the final committee's DDL protects against."""
        outcomes = [self._round(0.9, seed) for seed in range(4)]
        assert any(not outcome.committed for outcome in outcomes)


class TestEpochUnderLoss:
    def test_epoch_still_produces_a_block_with_lossy_network(self):
        from repro.chain.elastico import ElasticoSimulation
        from repro.core.problem import MVComConfig

        params = ChainParams(
            num_nodes=120, committee_size=8, seed=71,
            network=NetworkParams(base_delay=2.0, loss_probability=0.05),
        )
        simulation = ElasticoSimulation(params, mvcom_config=MVComConfig(alpha=1.5, capacity=12_000))
        outcome = simulation.run_epoch()
        # Some committees may stall, but the epoch as a whole survives.
        assert outcome.final is not None
        assert simulation.chain.verify()
