"""Tests for Section V: committee-failure analysis (Lemma 4, Theorem 2)."""

import numpy as np
import pytest

from repro.core.failure import (
    analyze_failure,
    space_sizes,
    trimmed_mixing_parameters,
    tv_distance_bound,
)

from tests.conftest import random_instance


class TestSpaceSizes:
    def test_powers_of_two(self):
        sizes = space_sizes(10)
        assert sizes.full == 1024
        assert sizes.trimmed == 512
        assert sizes.removed == 512

    def test_lemma4_removed_fraction_is_half(self):
        """|F\\G| / |F| = 1/2, the heart of Lemma 4's proof."""
        for n in (1, 3, 8, 20):
            assert space_sizes(n).removed_fraction == 0.5

    def test_zero_committees_rejected(self):
        with pytest.raises(ValueError):
            space_sizes(0)

    def test_bound_constant(self):
        assert tv_distance_bound() == 0.5


class TestAnalyzeFailure:
    @pytest.mark.parametrize("beta", [1e-4, 1e-3, 1e-2])
    @pytest.mark.parametrize("failed", [0, 3, 7])
    def test_lemma4_tv_bound_holds(self, beta, failed):
        instance = random_instance(8, seed=21)
        analysis = analyze_failure(instance, failed, beta)
        assert analysis.tv_within_bound
        assert 0.0 <= analysis.tv_distance <= 0.5 + 1e-12

    @pytest.mark.parametrize("beta", [1e-4, 1e-3, 1e-2])
    def test_theorem2_perturbation_bound_holds(self, beta):
        instance = random_instance(8, seed=22)
        for failed in range(instance.num_shards):
            analysis = analyze_failure(instance, failed, beta)
            assert analysis.perturbation_within_bound

    def test_tv_approaches_half_for_large_beta(self):
        """With sharp beta all mass sits on the best state; if the failed
        committee is in it, the trimmed chain loses half the mass exactly."""
        instance = random_instance(8, seed=23)
        best_state_member = int(np.argmax(instance.values))
        analysis = analyze_failure(instance, best_state_member, beta=0.5)
        assert analysis.tv_distance == pytest.approx(0.5, abs=1e-3)

    def test_uniform_limit_beta_to_zero(self):
        """At beta -> 0 the Gibbs distribution is uniform: the stranded mass
        is exactly |F\\G|/|F| = 1/2 (the paper's LLN evaluation) and the
        literal TV distance is half of that."""
        instance = random_instance(6, seed=24)
        analysis = analyze_failure(instance, 0, beta=1e-8)
        assert analysis.stranded_mass == pytest.approx(0.5, abs=1e-4)
        assert analysis.tv_distance == pytest.approx(0.25, abs=1e-4)

    def test_stranded_mass_can_exceed_half_at_sharp_beta(self):
        """The LLN step of Lemma 4 is a small-beta approximation: when beta
        is sharp and the failed committee sits in the top solutions, more
        than half the Gibbs mass is stranded (documented in EXPERIMENTS.md).
        The literal TV distance still respects the 1/2 bound."""
        instance = random_instance(8, seed=23)
        best_member = int(np.argmax(instance.values))
        analysis = analyze_failure(instance, best_member, beta=0.5)
        assert analysis.stranded_mass > 0.5
        assert analysis.tv_distance <= 0.5 + 1e-12

    def test_trimmed_best_not_above_full_best(self):
        instance = random_instance(8, seed=25)
        full_best = float(np.sum(instance.values[instance.values > 0]))
        analysis = analyze_failure(instance, 0, beta=1e-3)
        assert analysis.trimmed_best_utility <= full_best + 1e-9

    def test_invalid_position_rejected(self):
        instance = random_instance(6, seed=26)
        with pytest.raises(ValueError):
            analyze_failure(instance, 6, beta=1e-3)

    def test_large_instance_rejected(self):
        instance = random_instance(20, seed=27)
        with pytest.raises(ValueError):
            analyze_failure(instance, 0, beta=1e-3)


class TestRemark3:
    def test_trimmed_mixing_parameters(self):
        params = trimmed_mixing_parameters(10)
        assert params["eta"] == 2**9
        assert params["num_shards"] == 9
        assert params["log2_eta"] == pytest.approx(9.0)
