"""Tests for the opt-in runtime contracts (REPRO_CONTRACTS=1)."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    ContractViolation,
    check_finite_utility,
    check_result_feasible,
    check_solution_feasible,
    contracts_enabled,
    feasible_result,
    finite_utility,
    sane_instance,
)
from repro.core.problem import EpochInstance, MVComConfig
from repro.core.solution import Solution


@pytest.fixture
def instance():
    # n_min = ceil(0.5 * 4) = 2; capacity admits at most the two lightest.
    return EpochInstance(
        tx_counts=[100, 200, 300, 400],
        latencies=[1.0, 2.0, 3.0, 4.0],
        config=MVComConfig(capacity=600),
    )


@pytest.fixture
def contracts_on(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")


@pytest.fixture
def contracts_off(monkeypatch):
    monkeypatch.delenv("REPRO_CONTRACTS", raising=False)


class TestFlag:
    def test_enabled_values(self, monkeypatch):
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv("REPRO_CONTRACTS", value)
            assert contracts_enabled()

    def test_disabled_by_default(self, contracts_off):
        assert not contracts_enabled()

    def test_zero_is_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        assert not contracts_enabled()


class TestDirectChecks:
    def test_feasible_solution_passes(self, instance):
        solution = Solution.from_indices(instance, [0, 1])
        check_solution_feasible(solution)  # no raise

    def test_nmin_violation_raises(self, instance):
        lonely = Solution.from_indices(instance, [0])
        with pytest.raises(ContractViolation, match="N_min"):
            check_solution_feasible(lonely)

    def test_capacity_violation_raises(self, instance):
        heavy = Solution.from_indices(instance, [1, 2, 3])  # 900 TXs > 600
        with pytest.raises(ContractViolation, match="Ĉ"):
            check_solution_feasible(heavy)

    def test_nonfinite_utility_raises(self):
        with pytest.raises(ContractViolation, match="finite"):
            check_finite_utility(float("nan"))

    def test_result_feasible_understands_schedule_results(self, instance):
        from repro.baselines.base import ScheduleResult

        good = ScheduleResult.from_solution(
            "unit", Solution.from_indices(instance, [0, 1]), iterations=1
        )
        check_result_feasible(good, instance=instance)  # no raise
        bad = ScheduleResult.from_solution(
            "unit", Solution.from_indices(instance, [0]), iterations=1
        )
        with pytest.raises(ContractViolation, match="const. 3"):
            check_result_feasible(bad, instance=instance)


class TestDecorators:
    def test_passthrough_when_disabled(self, contracts_off):
        def produce():
            return float("inf")

        assert finite_utility(produce) is produce
        assert feasible_result(produce) is produce
        assert sane_instance(produce) is produce

    def test_feasible_result_armed(self, contracts_on, instance):
        @feasible_result
        def solver(instance):
            return Solution.from_indices(instance, [0])  # violates N_min

        with pytest.raises(ContractViolation, match="N_min"):
            solver(instance)

    def test_feasible_result_accepts_good_solutions(self, contracts_on, instance):
        @feasible_result
        def solver(instance):
            return Solution.from_indices(instance, [0, 1])

        assert solver(instance).count == 2

    def test_finite_utility_armed(self, contracts_on):
        @finite_utility
        def utility():
            return float("nan")

        with pytest.raises(ContractViolation):
            utility()

    def test_decorated_solver_keeps_metadata(self, contracts_on):
        @feasible_result
        def well_named():
            return None

        assert well_named.__name__ == "well_named"
        assert well_named() is None  # None results are ignored

    def test_infeasible_capacity_result(self, contracts_on, instance):
        @feasible_result
        def solver(instance):
            solution = Solution(instance, np.ones(instance.num_shards, dtype=bool))
            return solution  # 1000 TXs > 600

        with pytest.raises(ContractViolation, match="const. 4"):
            solver(instance)


class TestBoundaryWiring:
    """The real solver boundaries honour the flag end-to-end.

    The decorators read REPRO_CONTRACTS at import time, so a subprocess is
    the honest way to exercise the armed path of the installed modules.
    """

    def test_se_solve_contract_armed_in_subprocess(self):
        import subprocess
        import sys

        code = (
            "from repro.core.problem import EpochInstance, MVComConfig\n"
            "from repro.core.se import SEConfig, StochasticExploration\n"
            "inst = EpochInstance(tx_counts=[100, 200, 300, 400],\n"
            "                     latencies=[1.0, 2.0, 3.0, 4.0],\n"
            "                     config=MVComConfig(capacity=600))\n"
            "result = StochasticExploration(SEConfig(num_threads=2, max_iterations=100)).solve(inst)\n"
            "assert result.best_count >= inst.n_min\n"
            "assert result.best_weight <= inst.capacity\n"
            "print('armed-ok')\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"REPRO_CONTRACTS": "1", "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stderr
        assert "armed-ok" in completed.stdout
