"""Tests for the MVCom problem model (Section III)."""

import numpy as np
import pytest

from repro.core.problem import EpochInstance, MVComConfig, build_instance


class TestConfig:
    def test_defaults_match_paper(self):
        config = MVComConfig()
        assert config.alpha == 1.5
        assert config.n_min_fraction == 0.5
        assert config.n_max_fraction == 0.8

    @pytest.mark.parametrize("kwargs", [
        {"alpha": 0}, {"alpha": -1}, {"capacity": 0},
        {"n_min_fraction": -0.1}, {"n_min_fraction": 1.1},
        {"n_max_fraction": 0.0}, {"n_max_fraction": 1.5},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MVComConfig(**kwargs)


class TestConstruction:
    def test_basic_shapes(self, tiny_instance):
        assert tiny_instance.num_shards == 6
        assert tiny_instance.capacity == 5_000
        assert tiny_instance.shard_ids == (0, 1, 2, 3, 4, 5)

    def test_ddl_is_max_latency(self, tiny_instance):
        assert tiny_instance.ddl == pytest.approx(900.0)

    def test_explicit_ddl_respected(self, tiny_config):
        instance = EpochInstance([100, 200], [10.0, 20.0], tiny_config, ddl=50.0)
        assert instance.ddl == 50.0

    def test_ddl_below_max_latency_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            EpochInstance([100, 200], [10.0, 20.0], tiny_config, ddl=15.0)

    def test_values_formula(self, tiny_instance):
        """v_i = alpha*s_i - (t_j - l_i) -- eq. (1) folded into eq. (2)."""
        expected = 1.5 * tiny_instance.tx_counts - (900.0 - tiny_instance.latencies)
        assert np.allclose(tiny_instance.values, expected)

    def test_slowest_shard_has_zero_age(self, tiny_instance):
        assert tiny_instance.ages[3] == pytest.approx(0.0)

    def test_mismatched_lengths_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            EpochInstance([1, 2, 3], [1.0, 2.0], tiny_config)

    def test_empty_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            EpochInstance([], [], tiny_config)

    def test_negative_inputs_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            EpochInstance([-1, 2], [1.0, 2.0], tiny_config)
        with pytest.raises(ValueError):
            EpochInstance([1, 2], [-1.0, 2.0], tiny_config)

    def test_duplicate_shard_ids_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            EpochInstance([1, 2], [1.0, 2.0], tiny_config, shard_ids=[7, 7])

    def test_list_mirrors_match_arrays(self, tiny_instance):
        assert tiny_instance.tx_counts_list == tiny_instance.tx_counts.tolist()
        assert tiny_instance.values_list == tiny_instance.values.tolist()


class TestObjective:
    def test_utility_of_empty_selection(self, tiny_instance):
        assert tiny_instance.utility(np.zeros(6, dtype=bool)) == 0.0

    def test_utility_matches_manual_sum(self, tiny_instance):
        mask = np.array([True, False, True, False, False, True])
        expected = tiny_instance.values[[0, 2, 5]].sum()
        assert tiny_instance.utility(mask) == pytest.approx(expected)

    def test_weight_and_throughput_agree(self, tiny_instance):
        mask = np.array([True, True, False, False, False, False])
        assert tiny_instance.weight(mask) == 3_000
        assert tiny_instance.throughput(mask) == 3_000

    def test_cumulative_age(self, tiny_instance):
        mask = np.array([True, False, False, False, False, False])
        assert tiny_instance.cumulative_age(mask) == pytest.approx(300.0)

    def test_wrong_mask_length_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            tiny_instance.utility(np.zeros(5, dtype=bool))


class TestConstraints:
    def test_capacity_feasibility(self, tiny_instance):
        light = np.array([True, False, False, True, False, False])  # 1800
        heavy = np.array([False, True, False, False, True, True])   # 5700
        assert tiny_instance.is_capacity_feasible(light)
        assert not tiny_instance.is_capacity_feasible(heavy)

    def test_n_min_enforced_by_is_feasible(self, tiny_instance):
        assert tiny_instance.n_min == 2
        single = np.array([True, False, False, False, False, False])
        assert not tiny_instance.is_feasible(single)
        double = np.array([True, False, False, True, False, False])
        assert tiny_instance.is_feasible(double)

    def test_max_feasible_cardinality(self, tiny_instance):
        # lightest prefix: 800+1000+1200=3000, +1500=4500, +2000=6500 > 5000
        assert tiny_instance.max_feasible_cardinality == 4

    def test_n_min_relaxed_when_capacity_binds(self):
        config = MVComConfig(alpha=1.5, capacity=1_000, n_min_fraction=1.0)
        instance = EpochInstance([900, 900, 900], [1.0, 2.0, 3.0], config)
        assert instance.n_min == 1
        assert instance.n_min_relaxed


class TestDynamicsSupport:
    def test_without_removes_shard(self, tiny_instance):
        smaller = tiny_instance.without(3)
        assert smaller.num_shards == 5
        assert 3 not in smaller.shard_ids
        # DDL re-evaluates: shard 3 was the slowest (900); next is 820.
        assert smaller.ddl == pytest.approx(820.0)

    def test_without_unknown_id_raises(self, tiny_instance):
        with pytest.raises(KeyError):
            tiny_instance.without(99)

    def test_with_shard_appends_and_reevaluates_ddl(self, tiny_instance):
        bigger = tiny_instance.with_shard(10, tx_count=500, latency=1_000.0)
        assert bigger.num_shards == 7
        assert bigger.ddl == pytest.approx(1_000.0)
        # Every existing shard aged by the new straggler.
        assert np.all(bigger.ages[:6] >= tiny_instance.ages)

    def test_with_duplicate_id_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            tiny_instance.with_shard(2, tx_count=1, latency=1.0)

    def test_position_of(self, tiny_instance):
        assert tiny_instance.position_of(4) == 4
        smaller = tiny_instance.without(0)
        assert smaller.position_of(4) == 3

    def test_carry_over_latency(self, tiny_instance):
        """Fig. 3: refused committee re-enters with l_i - t_j, floored."""
        instance = tiny_instance.with_shard(10, tx_count=100, latency=1_200.0)
        # shard 0 (l=600) finished before the DDL of 1200 -> floored carry-over.
        assert instance.carry_over_latency(0) == 1.0
        # the straggler itself carries max(1200 - 1200, 1) = 1.
        assert instance.carry_over_latency(10) == 1.0

    def test_carry_over_for_refused_straggler(self):
        from repro.core.problem import carry_over_latency

        # A committee with l=500 refused at a DDL of 100 re-enters epoch
        # j+1 having already worked 100 s: carry-over is 400 s.
        assert carry_over_latency(500.0, 100.0) == pytest.approx(400.0)
        # A committee that finished before the DDL carries the floor.
        assert carry_over_latency(80.0, 100.0) == 1.0
        with pytest.raises(ValueError):
            carry_over_latency(80.0, 100.0, floor=0.0)


class TestBuildInstance:
    def test_from_duck_typed_records(self, tiny_config):
        class Record:
            def __init__(self, shard_id, tx_count, latency):
                self.shard_id, self.tx_count, self.latency = shard_id, tx_count, latency

        records = [Record(5, 100, 10.0), Record(9, 200, 20.0)]
        instance = build_instance(records, tiny_config)
        assert instance.shard_ids == (5, 9)
        assert instance.tx_counts.tolist() == [100, 200]

    def test_empty_records_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            build_instance([], tiny_config)
