"""Tests for the convergence detector."""

import pytest

from repro.core.convergence import ConvergenceDetector


def test_not_converged_while_improving():
    detector = ConvergenceDetector(window=3)
    for utility in (1.0, 2.0, 3.0, 4.0, 5.0):
        assert not detector.update(utility)


def test_converges_after_window_stale_iterations():
    detector = ConvergenceDetector(window=3)
    detector.update(10.0)
    assert not detector.update(10.0)
    assert not detector.update(10.0)
    assert detector.update(10.0)


def test_improvement_resets_window():
    detector = ConvergenceDetector(window=3)
    detector.update(1.0)
    detector.update(1.0)
    detector.update(1.0)
    detector.update(2.0)  # improvement: window restarts
    assert not detector.converged
    assert detector.stale_iterations == 0


def test_tolerance_filters_noise():
    detector = ConvergenceDetector(window=2, tolerance=0.5)
    detector.update(1.0)
    detector.update(1.3)  # within tolerance: counts as stale
    assert detector.update(1.4)


def test_decreasing_utility_counts_as_stale():
    detector = ConvergenceDetector(window=2)
    detector.update(5.0)
    detector.update(4.0)
    assert detector.update(3.0)
    assert detector.best == 5.0


def test_reset_restarts_detection():
    detector = ConvergenceDetector(window=2)
    detector.update(5.0)
    detector.update(5.0)
    detector.reset()
    assert not detector.converged
    assert detector.best == float("-inf")


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ConvergenceDetector(window=0)
    with pytest.raises(ValueError):
        ConvergenceDetector(window=5, tolerance=-1.0)
