"""Tests for the spectral-gap analysis of the designed chain."""

import numpy as np
import pytest

from repro.core.markov import build_chain, empirical_mixing_time
from repro.core.problem import EpochInstance, MVComConfig
from repro.core.spectral import (
    conductance_lower_bound_on_gap,
    mixing_time_spectral_bounds,
    relaxation_time,
    spectral_gap,
    spectral_summary,
)

BETA = 0.001


@pytest.fixture(scope="module")
def chain():
    config = MVComConfig(alpha=1.5, capacity=6_000, n_min_fraction=0.2)
    instance = EpochInstance(
        tx_counts=[1_000, 2_000, 1_500, 800, 2_500, 1_200],
        latencies=[600.0, 700.0, 650.0, 900.0, 500.0, 820.0],
        config=config,
    )
    return build_chain(instance, 3, beta=BETA)


class TestSpectrum:
    def test_smallest_eigenvalue_is_zero(self, chain):
        summary = spectral_summary(chain)
        assert summary.eigenvalues[0] == pytest.approx(0.0, abs=1e-9)

    def test_gap_positive_for_irreducible_chain(self, chain):
        assert spectral_gap(chain) > 0

    def test_relaxation_time_is_inverse_gap(self, chain):
        summary = spectral_summary(chain)
        assert relaxation_time(chain) == pytest.approx(1.0 / summary.gap)

    def test_all_eigenvalues_nonnegative(self, chain):
        """-Q of a reversible generator is PSD."""
        summary = spectral_summary(chain)
        assert all(v >= -1e-9 for v in summary.eigenvalues)

    def test_gap_shrinks_with_beta(self):
        """Remark 2's slowdown, seen spectrally: sharper beta -> smaller gap
        relative to the chain's overall rate scale."""
        config = MVComConfig(alpha=1.5, capacity=6_000, n_min_fraction=0.2)
        instance = EpochInstance(
            tx_counts=[1_000, 2_000, 1_500, 800, 2_500, 1_200],
            latencies=[600.0, 700.0, 650.0, 900.0, 500.0, 820.0],
            config=config,
        )
        summaries = []
        for beta in (BETA, BETA * 4):
            c = build_chain(instance, 3, beta=beta)
            rate_scale = float(np.max(-np.diag(c.generator)))
            summaries.append(spectral_gap(c) / rate_scale)
        assert summaries[1] < summaries[0]


class TestMixingSandwich:
    def test_spectral_bounds_contain_empirical_mixing(self, chain):
        epsilon = 0.05
        lower, upper = mixing_time_spectral_bounds(chain, epsilon)
        measured = empirical_mixing_time(chain, epsilon)
        assert lower <= measured <= upper

    def test_spectral_upper_much_tighter_than_theorem1(self, chain):
        from repro.core.markov import mixing_time_upper_bound

        epsilon = 0.05
        _, spectral_upper = mixing_time_spectral_bounds(chain, epsilon)
        u_max, u_min = float(chain.utilities.max()), float(chain.utilities.min())
        theorem1_upper = mixing_time_upper_bound(6, BETA, 0.0, u_max, u_min, epsilon)
        assert spectral_upper < theorem1_upper

    def test_epsilon_validation(self, chain):
        with pytest.raises(ValueError):
            mixing_time_spectral_bounds(chain, 0.7)


class TestConductance:
    def test_cheeger_lower_bounds_the_gap(self):
        # Cardinality-2 chain: 15 states, small enough to enumerate cuts.
        config = MVComConfig(alpha=1.5, capacity=6_000, n_min_fraction=0.2)
        instance = EpochInstance(
            tx_counts=[1_000, 2_000, 1_500, 800, 2_500, 1_200],
            latencies=[600.0, 700.0, 650.0, 900.0, 500.0, 820.0],
            config=config,
        )
        small_chain = build_chain(instance, 2, beta=BETA)
        assert conductance_lower_bound_on_gap(small_chain) <= spectral_gap(small_chain) + 1e-12

    def test_enumeration_cap(self):
        config = MVComConfig(alpha=1.5, capacity=10**9)
        instance = EpochInstance(
            tx_counts=list(range(1, 25)), latencies=[float(i) for i in range(24)], config=config
        )
        big_chain = build_chain(instance, 1, beta=BETA)
        with pytest.raises(ValueError):
            conductance_lower_bound_on_gap(big_chain)
