"""Tests shared across all baseline schedulers + per-algorithm specifics."""

import numpy as np
import pytest

from repro.baselines import (
    DynamicProgrammingScheduler,
    GreedyDensityScheduler,
    RandomSearchScheduler,
    SimulatedAnnealingScheduler,
    WhaleOptimizationScheduler,
)
from repro.baselines.annealing import AnnealingParams
from repro.baselines.base import greedy_feasible_start, random_feasible_start
from repro.baselines.whale import WhaleParams
from repro.core.exact import branch_and_bound_optimum

from tests.conftest import random_instance

ALL_SCHEDULERS = [
    SimulatedAnnealingScheduler,
    DynamicProgrammingScheduler,
    WhaleOptimizationScheduler,
    GreedyDensityScheduler,
    RandomSearchScheduler,
]


@pytest.fixture(scope="module")
def instance():
    return random_instance(20, seed=31)


class TestCommonContract:
    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_respects_capacity(self, instance, scheduler_cls):
        result = scheduler_cls(seed=1).solve(instance, 400)
        assert instance.weight(result.mask) <= instance.capacity

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_respects_n_min(self, instance, scheduler_cls):
        result = scheduler_cls(seed=1).solve(instance, 400)
        assert int(result.mask.sum()) >= instance.n_min

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_reported_utility_matches_mask(self, instance, scheduler_cls):
        result = scheduler_cls(seed=1).solve(instance, 400)
        assert result.utility == pytest.approx(instance.utility(result.mask))
        assert result.weight == instance.weight(result.mask)
        assert result.count == int(result.mask.sum())

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_deterministic_per_seed(self, instance, scheduler_cls):
        a = scheduler_cls(seed=9).solve(instance, 300)
        b = scheduler_cls(seed=9).solve(instance, 300)
        assert a.utility == b.utility
        assert np.array_equal(a.mask, b.mask)

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_trace_is_monotone_best_so_far(self, instance, scheduler_cls):
        result = scheduler_cls(seed=1).solve(instance, 300)
        diffs = np.diff(result.utility_trace)
        assert (diffs >= -1e-9).all()

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_algorithm_name_set(self, instance, scheduler_cls):
        result = scheduler_cls(seed=1).solve(instance, 50)
        assert result.algorithm == scheduler_cls.name


class TestStartingPoints:
    def test_greedy_start_feasible(self, instance):
        start = greedy_feasible_start(instance)
        assert start.capacity_feasible
        assert start.count >= instance.n_min

    def test_random_start_feasible(self, instance):
        rng = np.random.default_rng(0)
        for _ in range(10):
            start = random_feasible_start(instance, rng)
            assert start.capacity_feasible

    def test_greedy_start_beats_random_on_average(self, instance):
        rng = np.random.default_rng(0)
        greedy = greedy_feasible_start(instance).utility
        randoms = [random_feasible_start(instance, rng).utility for _ in range(20)]
        assert greedy >= np.mean(randoms)


class TestSimulatedAnnealing:
    def test_near_optimal_on_small_instance(self):
        instance = random_instance(14, seed=32)
        optimum = branch_and_bound_optimum(instance)
        result = SimulatedAnnealingScheduler(seed=1).solve(instance, 4_000)
        assert result.utility >= 0.95 * optimum.utility

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            AnnealingParams(cooling_rate=1.5)
        with pytest.raises(ValueError):
            AnnealingParams(flip_probability=-0.1)

    def test_improves_over_iterations(self, instance):
        short = SimulatedAnnealingScheduler(seed=1).solve(instance, 50)
        long = SimulatedAnnealingScheduler(seed=1).solve(instance, 4_000)
        assert long.utility >= short.utility


class TestDynamicProgramming:
    def test_throughput_objective_fills_block(self, instance):
        result = DynamicProgrammingScheduler(seed=1).solve(instance)
        assert result.weight >= 0.9 * instance.capacity

    def test_utility_objective_beats_throughput_objective_on_utility(self, instance):
        throughput = DynamicProgrammingScheduler(seed=1, objective="throughput").solve(instance)
        utility = DynamicProgrammingScheduler(seed=1, objective="utility").solve(instance)
        assert utility.utility >= throughput.utility

    def test_utility_objective_near_optimal(self):
        instance = random_instance(14, seed=33)
        optimum = branch_and_bound_optimum(instance)
        result = DynamicProgrammingScheduler(seed=1, objective="utility", table_size=50_000).solve(instance)
        # scaling granularity costs a little; n_min padding may cost more
        assert result.utility >= 0.93 * optimum.utility

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError):
            DynamicProgrammingScheduler(objective="speed")
        with pytest.raises(ValueError):
            DynamicProgrammingScheduler(table_size=5)

    def test_one_shot_iterations(self, instance):
        result = DynamicProgrammingScheduler(seed=1).solve(instance, budget_iterations=500)
        assert result.iterations == 1
        assert len(result.utility_trace) == 500  # flat line for shared axes


class TestWhale:
    def test_population_validation(self):
        with pytest.raises(ValueError):
            WhaleParams(population=1)

    def test_improves_over_iterations(self, instance):
        short = WhaleOptimizationScheduler(seed=1).solve(instance, 5)
        long = WhaleOptimizationScheduler(seed=1).solve(instance, 300)
        assert long.utility >= short.utility


class TestOrderingShape:
    """The paper's qualitative ordering on a mid-size epoch (Figs. 10-11)."""

    def test_se_side_ordering_holds(self):
        from repro.core.se import SEConfig, StochasticExploration

        instance = random_instance(60, seed=34)
        se = StochasticExploration(
            SEConfig(num_threads=5, max_iterations=4_000, convergence_window=1_200, seed=1)
        ).solve(instance)
        sa = SimulatedAnnealingScheduler(seed=1).solve(instance, 4_000)
        dp = DynamicProgrammingScheduler(seed=1).solve(instance)
        woa = WhaleOptimizationScheduler(seed=1).solve(instance, 1_000)
        # SE competitive with SA (within 2%), both above WOA; DP blind to age.
        assert se.best_utility >= 0.98 * sa.utility
        assert se.best_utility >= woa.utility
        assert se.best_utility >= dp.utility
