"""Public-API surface tests: everything in __all__ exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.chain",
    "repro.data",
    "repro.core",
    "repro.baselines",
    "repro.metrics",
    "repro.harness",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_no_accidental_circular_imports():
    """Import every submodule fresh in one process."""
    submodules = [
        "repro.sim.engine", "repro.sim.process", "repro.sim.rng",
        "repro.chain.params", "repro.chain.network", "repro.chain.gossip",
        "repro.chain.node", "repro.chain.pow", "repro.chain.overlay",
        "repro.chain.pbft", "repro.chain.committee", "repro.chain.blocks",
        "repro.chain.randomness", "repro.chain.final", "repro.chain.elastico",
        "repro.chain.measurement", "repro.chain.stats", "repro.chain.mempool",
        "repro.data.bitcoin", "repro.data.loader", "repro.data.latency",
        "repro.data.shards", "repro.data.workload",
        "repro.core.problem", "repro.core.solution", "repro.core.logsumexp",
        "repro.core.markov", "repro.core.spectral", "repro.core.timers",
        "repro.core.se", "repro.core.engine", "repro.core.dynamics",
        "repro.core.failure", "repro.core.exact", "repro.core.bounds",
        "repro.core.convergence", "repro.core.pipeline", "repro.core.ddl",
        "repro.baselines.base", "repro.baselines.annealing",
        "repro.baselines.knapsack_dp", "repro.baselines.whale",
        "repro.baselines.greedy", "repro.baselines.random_search",
        "repro.metrics.valuable_degree", "repro.metrics.summary",
        "repro.metrics.traces", "repro.metrics.fairness",
        "repro.harness.presets", "repro.harness.experiments",
        "repro.harness.report", "repro.harness.sweeps",
        "repro.harness.textplot", "repro.harness.artifacts",
        "repro.harness.cli",
    ]
    for name in submodules:
        importlib.import_module(name)
