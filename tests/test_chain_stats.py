"""Tests for chain-level statistics."""

import pytest

from repro.chain.elastico import ElasticoSimulation
from repro.chain.params import ChainParams
from repro.chain.stats import ChainRunStats, compare_runs, epoch_stats
from repro.core.problem import MVComConfig

PARAMS = ChainParams(num_nodes=120, committee_size=8, seed=31)


@pytest.fixture(scope="module")
def outcome():
    simulation = ElasticoSimulation(PARAMS, mvcom_config=MVComConfig(alpha=1.5, capacity=12_000))
    return simulation.run_epoch()


class TestEpochStats:
    def test_extraction(self, outcome):
        stats = epoch_stats(outcome)
        assert stats is not None
        assert stats.confirmed_txs == outcome.final.permitted_txs
        assert stats.epoch_duration_s > 0
        assert stats.shards_permitted <= stats.shards_submitted

    def test_throughput_definition(self, outcome):
        stats = epoch_stats(outcome)
        assert stats.throughput_tps == pytest.approx(
            stats.confirmed_txs / stats.epoch_duration_s
        )

    def test_mean_age(self, outcome):
        stats = epoch_stats(outcome)
        assert stats.mean_age_s >= 0
        assert stats.mean_age_s == pytest.approx(
            stats.cumulative_age_s / stats.shards_permitted
        )


class TestRunStats:
    def test_accumulates_epochs(self):
        simulation = ElasticoSimulation(PARAMS, mvcom_config=MVComConfig(alpha=1.5, capacity=12_000))
        run = ChainRunStats()
        for _ in range(2):
            run.add(simulation.run_epoch())
        assert len(run.epochs) == 2
        assert run.total_txs == sum(stats.confirmed_txs for stats in run.epochs)
        summary = run.summary()
        assert summary["epochs"] == 2
        assert summary["throughput_tps"] > 0

    def test_empty_run_summary(self):
        run = ChainRunStats()
        assert run.throughput_tps == 0.0
        assert run.mean_age_s == 0.0
        assert run.summary()["epochs"] == 0

    def test_compare_runs_labels(self, outcome):
        run = ChainRunStats()
        run.add(outcome)
        rows = compare_runs([run], ["se"])
        assert rows[0]["policy"] == "se"
        with pytest.raises(ValueError):
            compare_runs([run], ["a", "b"])
