"""Tests for the MV004/MV005 mechanical autofixer (repro.analysis.fixes)."""

import textwrap

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import LintEngine
from repro.analysis.fixes import fix_source, render_fix_diff
from repro.analysis.__main__ import main as lint_main


def fix(source):
    return fix_source(textwrap.dedent(source), path="repro/core/demo.py")


def lint(source, path="repro/core/demo.py"):
    return LintEngine(config=AnalysisConfig()).lint_source(source, path=path)


class TestMV004Fix:
    def test_list_default_becomes_none_plus_guard(self):
        result = fix(
            """
            def build(items=[]):
                items.append(1)
                return items
            """
        )
        assert result.changed
        assert "def build(items=None):" in result.source
        assert "    if items is None:\n        items = []" in result.source
        # the guard precedes the first use
        assert result.source.index("if items is None") < result.source.index(
            "items.append"
        )

    def test_guard_lands_after_docstring(self):
        result = fix(
            '''
            def build(mapping={}):
                """Make a mapping."""
                return mapping
            '''
        )
        lines = result.source.splitlines()
        doc_index = next(i for i, l in enumerate(lines) if '"""' in l)
        assert lines[doc_index + 1].strip() == "if mapping is None:"

    def test_kwonly_and_call_defaults(self):
        result = fix(
            """
            def build(*, registry=dict(), items=set()):
                return registry, items
            """
        )
        assert "registry=None" in result.source and "items=None" in result.source
        assert "registry = dict()" in result.source
        assert "items = set()" in result.source

    def test_fixed_source_lints_clean_of_mv004(self):
        result = fix(
            """
            def build(items=[]):
                return items
            """
        )
        assert not any(d.rule_id == "MV004" for d in lint(result.source))

    def test_single_line_def_reported_unfixable(self):
        result = fix("def build(items=[]): return items\n")
        assert not result.changed
        assert any("single-line" in note for note in result.unfixable)

    def test_immutable_defaults_untouched(self):
        source = textwrap.dedent(
            """
            def build(count=0, name="x", flag=None):
                return count, name, flag
            """
        )
        result = fix_source(source, path="repro/core/demo.py")
        assert result.source == source and not result.changed


class TestMV005Fix:
    def test_bare_except_with_real_body_typed(self):
        result = fix(
            """
            def run():
                try:
                    return 1
                except:
                    print("failed")
                    return None
            """
        )
        assert "except Exception:" in result.source
        assert not any(d.rule_id == "MV005" for d in lint(result.source))

    def test_pass_only_bare_except_skipped(self):
        result = fix(
            """
            def run():
                try:
                    return 1
                except:
                    pass
            """
        )
        assert not result.changed
        assert any("not mechanically fixable" in note for note in result.unfixable)

    def test_typed_except_untouched(self):
        source = textwrap.dedent(
            """
            def run():
                try:
                    return 1
                except ValueError:
                    return None
            """
        )
        assert fix_source(source, path="repro/core/demo.py").source == source


class TestIdempotence:
    MESSY = '''
    def build(items=[], *, mapping={}):
        """Collect."""
        items.append(1)
        return items, mapping


    def run():
        try:
            return build()
        except:
            print("failed")
            return None
    '''

    def test_fix_twice_is_byte_identical(self):
        first = fix(self.MESSY)
        assert first.changed
        second = fix_source(first.source, path="repro/core/demo.py")
        assert not second.changed
        assert second.source == first.source

    def test_fix_output_parses(self):
        import ast

        ast.parse(fix(self.MESSY).source)


class TestFixCli:
    def test_dry_run_prints_diff_and_writes_nothing(self, tmp_path, capsys):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        target = package / "demo.py"
        before = "def build(items=[]):\n    return items\n"
        target.write_text(before)
        code = lint_main(["--fix", "--dry-run", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "-def build(items=[]):" in out
        assert "+def build(items=None):" in out
        assert target.read_text() == before

    def test_fix_writes_and_is_idempotent(self, tmp_path, capsys):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        target = package / "demo.py"
        target.write_text("def build(items=[]):\n    return items\n")
        assert lint_main(["--fix", str(tmp_path)]) == 0
        first = target.read_text()
        assert "items=None" in first
        assert lint_main(["--fix", str(tmp_path)]) == 0
        assert target.read_text() == first
        assert "changed 0 file(s)" in capsys.readouterr().out


def test_render_fix_diff_labels_paths():
    diff = render_fix_diff("repro/core/demo.py", "a\n", "b\n")
    assert diff.startswith("--- a/repro/core/demo.py\n+++ b/repro/core/demo.py\n")
