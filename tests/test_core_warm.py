"""Warm-start contract tests for the incremental SE solver.

The two load-bearing guarantees of the epoch-chaining layer:

* **Zero drift is a no-op**: warm-starting on a value-equal instance is
  byte-identical to *continuing the same solve* — concatenated utility
  traces match an uninterrupted run and every per-thread Mersenne stream
  lands in the same end state (probed via ``getstate()``).
* **Drift adoption repairs, never discards**: under churn the carried
  threads are rebased, resized back to their exact cardinality via
  :func:`repro.core.repair.resize_to_cardinality`, and re-anchored with
  improving swaps; only unrepairable threads re-initialise.  The adopted
  population must stay feasible and reproducible on every engine.
"""

import numpy as np
import pytest

from repro.core.problem import EpochInstance
from repro.core.se import (
    SEConfig,
    SEResult,
    SEWarmState,
    StochasticExploration,
    instances_match,
)
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.sim.rng import RandomStreams

WORKERS = 2


@pytest.fixture
def telemetry_ring():
    ring = RingBufferSink()
    return Telemetry(sinks=[ring]), ring


def base_instance(seed=3, num_committees=40, capacity=40_000):
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=num_committees, capacity=capacity, seed=seed)
    )
    return workload.instance


def drifted_instance(instance, drop=(1, 7, 13, 30), seed=99):
    """A churned sibling: some committees depart, the rest re-value."""
    rng = RandomStreams(seed).get("drift")
    keep = np.ones(instance.num_shards, bool)
    keep[list(drop)] = False
    tx = np.maximum(
        instance.tx_counts[keep] + rng.integers(-50, 200, int(keep.sum())), 0
    )
    latencies = instance.latencies[keep] * rng.uniform(0.8, 1.2, int(keep.sum()))
    ids = tuple(np.asarray(instance.shard_ids)[keep])
    return EpochInstance(tx, latencies, instance.config, shard_ids=ids)


def config(engine="serial", *, gamma=4, max_iterations=400,
           convergence_window=200, seed=11):
    return SEConfig(
        num_threads=gamma,
        max_iterations=max_iterations,
        convergence_window=convergence_window,
        seed=seed,
        engine=engine,
        num_workers=WORKERS,
    )


def thread_rng_states(warm_state):
    """Every per-thread Mersenne end state, keyed by (replica, cardinality)."""
    return {
        (replica.replica_id, thread.cardinality): thread.rng._rnd.getstate()
        for replica in warm_state.replicas
        for thread in replica.threads
    }


# --------------------------------------------------------------------- #
# zero drift: a warm start is the same solve, split in two
# --------------------------------------------------------------------- #
class TestZeroDrift:
    def test_split_solve_is_byte_identical_to_continuous(self):
        instance = base_instance()
        # Big window so neither half converges early: the split point is
        # then purely an artifact of max_iterations.
        continuous = StochasticExploration(
            config(max_iterations=400, convergence_window=10_000)
        ).solve(instance)

        solver = StochasticExploration(
            config(max_iterations=200, convergence_window=10_000)
        )
        first = solver.solve(instance)
        second = solver.solve(instance, warm=first)

        assert np.array_equal(second.best_mask, continuous.best_mask)
        assert second.best_utility == continuous.best_utility
        stitched = np.concatenate([first.utility_trace, second.utility_trace])
        assert np.array_equal(stitched, continuous.utility_trace)

    def test_rng_end_states_match_continuous_run(self):
        instance = base_instance()
        continuous = StochasticExploration(
            config(max_iterations=400, convergence_window=10_000)
        ).solve(instance)
        solver = StochasticExploration(
            config(max_iterations=200, convergence_window=10_000)
        )
        chained = solver.solve(instance, warm=solver.solve(instance))
        assert thread_rng_states(chained.warm_state) == thread_rng_states(
            continuous.warm_state
        )

    def test_zero_drift_adoption_reports_all_retained(self, telemetry_ring):
        telemetry, ring = telemetry_ring
        instance = base_instance()
        solver = StochasticExploration(config(), telemetry=telemetry)
        first = solver.solve(instance)
        solver.solve(instance, warm=first)
        starts = [r for r in ring.records if r.get("name") == "se.warm_start"]
        assert len(starts) == 1
        assert starts[0]["zero_drift"] is True
        assert starts[0]["reseated"] == 0
        assert starts[0]["spawned"] == 0

    def test_instances_match_is_value_equality(self):
        instance = base_instance()
        clone = EpochInstance(
            instance.tx_counts.copy(),
            instance.latencies.copy(),
            instance.config,
            shard_ids=tuple(instance.shard_ids),
        )
        assert instances_match(instance, clone)
        assert not instances_match(instance, drifted_instance(instance))


# --------------------------------------------------------------------- #
# drift adoption: repair the carried population
# --------------------------------------------------------------------- #
class TestDriftAdoption:
    @pytest.mark.parametrize("engine", ["serial", "parallel", "vectorized", "auto"])
    def test_warm_solve_is_feasible_and_reproducible(self, engine):
        instance = base_instance()
        drifted = drifted_instance(instance)
        results = []
        for _ in range(2):
            solver = StochasticExploration(config(engine))
            results.append(solver.solve(drifted, warm=solver.solve(instance)))
        first, second = results
        assert first.best_count >= drifted.n_min
        assert first.best_weight <= drifted.capacity
        assert np.array_equal(first.best_mask, second.best_mask)
        assert first.best_utility == second.best_utility

    def test_serial_parallel_warm_byte_identity(self):
        instance = base_instance()
        drifted = drifted_instance(instance)
        outcomes = []
        for engine in ("serial", "parallel"):
            solver = StochasticExploration(config(engine))
            outcomes.append(solver.solve(drifted, warm=solver.solve(instance)))
        serial, parallel = outcomes
        assert np.array_equal(serial.best_mask, parallel.best_mask)
        assert serial.best_utility == parallel.best_utility
        assert np.array_equal(serial.utility_trace, parallel.utility_trace)
        assert serial.iterations == parallel.iterations

    def test_drift_adoption_repairs_rather_than_reseats(self, telemetry_ring):
        telemetry, ring = telemetry_ring
        instance = base_instance()
        drifted = drifted_instance(instance)
        solver = StochasticExploration(config(), telemetry=telemetry)
        solver.solve(drifted, warm=solver.solve(instance))
        starts = [r for r in ring.records if r.get("name") == "se.warm_start"]
        assert len(starts) == 1
        stats = starts[0]
        assert stats["zero_drift"] is False
        # Dropping 4 of 40 committees breaks most exact-n memberships;
        # the resize repair keeps them carried instead of re-initialised.
        assert stats["retained"] > stats["reseated"]
        assert stats["retained"] > 0

    def test_adopted_population_is_feasible_at_iteration_zero(self):
        instance = base_instance()
        drifted = drifted_instance(instance)
        solver = StochasticExploration(config())
        warm = solver.solve(instance).warm_state
        solver._adopt_replicas(warm, drifted)
        for replica in warm.replicas:
            for thread in replica.threads:
                solution = thread.solution
                if solution is None:
                    continue
                assert solution.count == thread.cardinality
                assert solution.weight <= drifted.capacity

    def test_generation_counts_handoffs(self):
        instance = base_instance()
        solver = StochasticExploration(config())
        first = solver.solve(instance)
        assert first.warm_state.generation == 1
        second = solver.solve(instance, warm=first)
        assert second.warm_state.generation == 2


# --------------------------------------------------------------------- #
# argument validation
# --------------------------------------------------------------------- #
class TestWarmValidation:
    def test_gamma_mismatch_raises(self):
        instance = base_instance()
        warm = StochasticExploration(config(gamma=4)).solve(instance)
        with pytest.raises(ValueError, match="cannot resize Gamma"):
            StochasticExploration(config(gamma=6)).solve(instance, warm=warm)

    def test_bad_warm_type_raises(self):
        instance = base_instance()
        solver = StochasticExploration(config())
        with pytest.raises(TypeError, match="SEResult or SEWarmState"):
            solver.solve(instance, warm="yesterday")

    def test_warm_accepts_result_or_state(self):
        instance = base_instance()
        solver = StochasticExploration(config())
        first = solver.solve(instance)
        assert isinstance(first, SEResult)
        assert isinstance(first.warm_state, SEWarmState)
        second = StochasticExploration(config()).solve(
            instance, warm=first.warm_state
        )
        assert second.best_count >= instance.n_min
