"""Tests for the experiment harness (presets, report, small experiment runs)."""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.harness.experiments import (
    run_fig02_two_phase_latency,
    run_fig08_parallel_threads,
    run_fig09_dynamic_events,
    run_fig10_valuable_degree,
    run_fig11_vary_committees,
    run_fig12_vary_alpha,
    run_fig13_utility_distribution,
    run_fig14_online_joining,
    run_theory_failure,
    run_theory_mixing_time,
)
from repro.harness.presets import PRESETS, FigurePreset, list_presets
from repro.harness.report import (
    render_table,
    sample_trace,
    traces_table,
    traces_to_rows,
    write_csv,
)


class TestPresets:
    def test_every_figure_has_a_preset(self):
        expected = {"fig02", "fig08", "fig09a", "fig09b", "fig10", "fig11",
                    "fig12", "fig13", "fig14", "theory_mixing", "theory_failure"}
        assert expected <= set(list_presets())

    def test_paper_parameters(self):
        assert PRESETS["fig08"].num_committees == 500
        assert PRESETS["fig08"].capacity == 500_000
        assert PRESETS["fig08"].extras["gammas"] == (1, 5, 10, 25)
        assert PRESETS["fig09a"].capacity == 40_000
        assert PRESETS["fig09b"].num_committees == 100
        assert PRESETS["fig10"].gamma == 25
        assert PRESETS["fig11"].extras["sizes"] == (500, 800, 1000)
        assert PRESETS["fig12"].extras["alphas"] == (1.5, 5.0, 10.0)
        # Fig. 14: 17 initial + 23 joins = 40 = 80% of 50.
        assert PRESETS["fig14"].extras["num_initial"] == 17


class TestReport:
    def test_render_table_alignment(self):
        table = render_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_table_handles_missing_keys(self):
        table = render_table([{"a": 1}, {"b": 2}])
        assert "a" in table and "b" in table

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="x")

    def test_sample_trace_downsamples(self):
        rows = sample_trace(list(range(100)), points=5)
        assert len(rows) == 5
        assert rows[0]["iteration"] == 0
        assert rows[-1]["iteration"] == 99

    def test_traces_table_mixed_lengths(self):
        table = traces_table({"long": list(range(50)), "short": [7.0]}, points=4)
        assert "long" in table and "short" in table

    def test_traces_to_rows_long_format(self):
        rows = traces_to_rows({"a": [1.0, 2.0]})
        assert rows == [
            {"iteration": 0, "series": "a", "value": 1.0},
            {"iteration": 1, "series": "a", "value": 2.0},
        ]

    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv("test.csv", [{"x": 1, "y": "a"}], results_dir=str(tmp_path))
        assert os.path.exists(path)
        content = open(path).read()
        assert "x,y" in content and "1,a" in content


def _shrink(preset: FigurePreset, **extra) -> FigurePreset:
    """Tiny version of a preset so experiment smoke tests stay fast."""
    return replace(
        preset,
        num_committees=extra.pop("num_committees", 20),
        capacity=extra.pop("capacity", 16_000),
        gamma=2,
        se_iterations=400,
        baseline_iterations=400,
        convergence_window=400,
        seeds=(1,),
        extras={**preset.extras, **extra},
    )


class TestExperimentsSmoke:
    def test_fig10_orders_algorithms(self):
        # VD separation between SE and DP needs enough shard-size diversity
        # to matter; 120 committees is the smallest scale where Fig. 10's
        # shape is unambiguous.
        preset = _shrink(
            PRESETS["fig10"], num_committees=120, capacity=100_000
        )
        from dataclasses import replace
        preset = replace(preset, gamma=3, se_iterations=1_500,
                         baseline_iterations=1_500, convergence_window=1_500)
        result = run_fig10_valuable_degree(preset)
        names = {row["algorithm"] for row in result["rows"]}
        assert names == {"SE", "SA", "DP", "WOA"}
        by_name = {row["algorithm"]: row["valuable_degree_mean"] for row in result["rows"]}
        assert by_name["SE"] > 2 * by_name["DP"]  # the Fig. 10 headline

    def test_fig12_panels_grow_with_alpha(self):
        preset = _shrink(PRESETS["fig12"], alphas=(1.5, 10.0))
        result = run_fig12_vary_alpha(preset)
        low = result["panels"]["alpha=1.5"]["converged"]["SE"]
        high = result["panels"]["alpha=10.0"]["converged"]["SE"]
        assert high > low  # utilities grow with alpha (Fig. 12 claim)

    def test_fig09_applies_events(self):
        preset_a = _shrink(PRESETS["fig09a"], fail_at=100, recover_at=250)
        preset_b = _shrink(PRESETS["fig09b"], num_initial=8, join_start=50, join_spacing=40)
        result = run_fig09_dynamic_events(preset_a, preset_b)
        assert [kind for _, kind in result["leave_rejoin"]["events"]] == ["leave", "join"]
        assert len(result["consecutive_joins"]["events"]) > 0

    def test_fig02_series_shape(self):
        preset = replace(
            PRESETS["fig02"],
            extras={**PRESETS["fig02"].extras,
                    "network_sizes": (80, 160), "epochs_per_size": 1, "cdf_network_size": 160},
        )
        result = run_fig02_two_phase_latency(preset)
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert row["mean_formation_s"] > row["mean_consensus_s"]
        values, fractions = result["cdf"]["formation"]
        assert fractions[-1] == pytest.approx(1.0)

    def test_fig08_gamma_monotone(self):
        preset = _shrink(PRESETS["fig08"], gammas=(1, 4))
        result = run_fig08_parallel_threads(preset)
        assert set(result["traces"]) == {"Gamma=1", "Gamma=4"}
        assert result["converged"]["Gamma=4"] >= 0.99 * result["converged"]["Gamma=1"]

    def test_fig11_panels_scale_with_size(self):
        preset = replace(
            _shrink(PRESETS["fig11"]),
            extras={"sizes": (20, 40), "capacity_per_committee": 1000},
        )
        result = run_fig11_vary_committees(preset)
        small = result["panels"]["|Ij|=20"]["converged"]["SE"]
        large = result["panels"]["|Ij|=40"]["converged"]["SE"]
        assert large > small  # more committees, bigger block, more utility

    def test_fig13_distribution_stats_consistent(self):
        preset = replace(_shrink(PRESETS["fig13"]), seeds=(1, 2, 3),
                         extras={"alphas": (1.5,)})
        result = run_fig13_utility_distribution(preset)
        stats = result["panels"]["alpha=1.5"]["SE"]
        assert stats["min"] <= stats["median"] <= stats["max"]
        assert len(stats["samples"]) == 3

    def test_fig14_counts_joins(self):
        preset = replace(
            _shrink(PRESETS["fig14"]),
            extras={"alphas": (1.5,), "num_initial": 6, "join_start": 50, "join_spacing": 30},
        )
        result = run_fig14_online_joining(preset)
        panel = result["panels"]["alpha=1.5"]
        assert panel["joins"] == 16 - 6  # N_max window of 20 committees is 16
        assert set(panel["utility"]) == {"SE", "SA", "DP", "WOA"}

    def test_theory_runs_and_bounds_hold(self):
        mixing = run_theory_mixing_time()
        for row in mixing["rows"]:
            assert row["irreducible"]
            assert row["detailed_balance_residual"] < 1e-9
            assert row["lower_bound_s"] <= row["empirical_tmix_s"] <= row["upper_bound_s"]
        failure = run_theory_failure()
        assert all(row["tv_ok"] and row["perturbation_ok"] for row in failure["rows"])
        assert failure["space"]["removed_fraction"] == 0.5
