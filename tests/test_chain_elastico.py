"""Tests for committees, final consensus, the epoch orchestrator, and Fig. 2."""

import numpy as np
import pytest

from repro.chain.committee import Committee, assign_shard_workload, calibrated_verify_mean
from repro.chain.elastico import ElasticoSimulation
from repro.chain.final import take_everything
from repro.chain.measurement import linear_growth_check, measure_two_phase_latency
from repro.chain.node import spawn_nodes
from repro.chain.params import ChainParams
from repro.core.problem import MVComConfig

PARAMS = ChainParams(num_nodes=160, committee_size=8, seed=77)


@pytest.fixture(scope="module")
def epoch_outcome():
    simulation = ElasticoSimulation(PARAMS, mvcom_config=MVComConfig(alpha=1.5, capacity=15_000))
    return simulation.run_epoch()


class TestCommittee:
    def test_quorum_reachability(self):
        nodes = spawn_nodes(7, 0.0, np.random.default_rng(0))
        committee = Committee(committee_id=0, epoch=0, members=nodes)
        assert committee.can_reach_quorum
        for node in nodes[:3]:
            node.honest = False
        assert not committee.can_reach_quorum

    def test_workload_assignment(self):
        nodes = spawn_nodes(8, 0.0, np.random.default_rng(0))
        committees = [Committee(i, 0, nodes) for i in range(3)]
        assign_shard_workload(committees, [10, 20, 30])
        assert [c.shard_tx_count for c in committees] == [10, 20, 30]
        with pytest.raises(ValueError):
            assign_shard_workload(committees, [1])

    def test_verify_mean_calibration_positive(self):
        assert calibrated_verify_mean(PARAMS) > 0

    def test_empty_committee_rejected(self):
        with pytest.raises(ValueError):
            Committee(committee_id=0, epoch=0, members=[])


class TestEpoch:
    def test_five_stages_produce_final_block(self, epoch_outcome):
        assert epoch_outcome.final is not None
        assert epoch_outcome.final.block.total_txs > 0
        assert epoch_outcome.randomness != ""

    def test_shard_blocks_carry_two_phase_latency(self, epoch_outcome):
        for block in epoch_outcome.shard_blocks:
            assert block.two_phase_latency > 0
            assert block.formation_latency > block.consensus_latency  # Fig. 2 shape

    def test_final_respects_capacity(self, epoch_outcome):
        assert epoch_outcome.final.permitted_txs <= 15_000

    def test_nmax_cutoff_applied(self, epoch_outcome):
        arrived = epoch_outcome.final.instance.num_shards
        submitted = len(epoch_outcome.shard_blocks)
        assert arrived == max(1, int(np.floor(0.8 * submitted)))

    def test_chain_extends_across_epochs(self):
        simulation = ElasticoSimulation(PARAMS, mvcom_config=MVComConfig(alpha=1.5, capacity=15_000))
        for _ in range(2):
            simulation.run_epoch()
        assert simulation.chain.height == 2
        assert simulation.chain.verify()

    def test_randomness_differs_across_epochs(self):
        simulation = ElasticoSimulation(PARAMS)
        first = simulation.run_epoch().randomness
        second = simulation.run_epoch().randomness
        assert first != second

    def test_scheduler_violating_capacity_rejected(self):
        def cheater(instance):
            return np.ones(instance.num_shards, dtype=bool)

        simulation = ElasticoSimulation(
            PARAMS, mvcom_config=MVComConfig(alpha=1.5, capacity=10), scheduler=cheater
        )
        with pytest.raises(ValueError):
            simulation.run_epoch()

    def test_take_everything_fills_in_arrival_order(self, epoch_outcome):
        instance = epoch_outcome.final.instance
        mask = take_everything(instance)
        assert instance.weight(mask) <= instance.capacity
        # Adding the fastest unselected shard must exceed the capacity
        # (otherwise take_everything would have taken it).
        unselected = np.flatnonzero(~mask)
        if len(unselected):
            cheapest = unselected[np.argmin(instance.tx_counts[unselected])]
            assert instance.weight(mask) + instance.tx_counts[cheapest] > instance.capacity


class TestFig2Shape:
    def test_formation_dominates_and_grows_linearly(self):
        measurements = measure_two_phase_latency(
            ChainParams(num_nodes=100, committee_size=8, seed=5),
            network_sizes=[100, 250, 400, 700],
            epochs_per_size=1,
        )
        for m in measurements:
            assert m.mean_formation > 3 * m.mean_consensus
        fit = linear_growth_check(measurements)
        assert fit["slope"] > 0
        assert fit["r_squared"] > 0.6

    def test_consensus_flat_in_network_size(self):
        measurements = measure_two_phase_latency(
            ChainParams(num_nodes=100, committee_size=8, seed=5),
            network_sizes=[100, 400],
            epochs_per_size=1,
        )
        small, large = measurements
        assert large.mean_consensus < 2 * small.mean_consensus

    def test_cdf_is_valid_distribution(self):
        measurements = measure_two_phase_latency(
            ChainParams(num_nodes=100, committee_size=8, seed=5), [150], 1
        )
        values, fractions = measurements[0].cdf("formation")
        assert list(values) == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            measurements[0].cdf("nonsense")
