"""Tests for the repro.analysis lint engine (rules MV001-MV009)."""

import textwrap

import pytest

from repro.analysis.config import AnalysisConfig, config_from_section, load_config
from repro.analysis.engine import LintEngine, registered_rules, run_analysis
from repro.harness.cli import main as cli_main

ALL_RULES = AnalysisConfig()  # defaults: every rule on, no ignores


def lint(source, path="repro/core/somefile.py", config=ALL_RULES):
    engine = LintEngine(config=config)
    return engine.lint_source(textwrap.dedent(source), path=path)


def rule_hits(diagnostics, rule_id):
    return [(d.line, d.rule_id) for d in diagnostics if d.rule_id == rule_id]


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
def test_registry_ships_the_core_rules():
    assert set(registered_rules()) >= {
        "MV001", "MV002", "MV003", "MV004", "MV005", "MV006", "MV007", "MV008",
        "MV009",
    }


# ---------------------------------------------------------------------- #
# MV001 raw RNG
# ---------------------------------------------------------------------- #
class TestMV001:
    def test_default_rng_flagged(self):
        bad = """
        import numpy as np

        def draw():
            return np.random.default_rng(42).random()
        """
        hits = rule_hits(lint(bad), "MV001")
        assert hits == [(5, "MV001")]

    def test_np_random_seed_flagged(self):
        bad = """
        import numpy as np
        np.random.seed(0)
        """
        assert rule_hits(lint(bad), "MV001") == [(3, "MV001")]

    def test_stdlib_random_module_flagged(self):
        bad = """
        import random

        def draw():
            random.seed(1)
            return random.random()
        """
        assert rule_hits(lint(bad), "MV001") == [(5, "MV001"), (6, "MV001")]

    def test_from_random_import_flagged(self):
        bad = """
        from random import shuffle
        """
        assert rule_hits(lint(bad), "MV001") == [(2, "MV001")]

    def test_random_Random_construction_flagged(self):
        bad = """
        import random
        rng = random.Random(7)
        """
        assert rule_hits(lint(bad), "MV001") == [(3, "MV001")]

    def test_rng_module_itself_exempt(self):
        allowed = """
        import random
        import numpy as np

        def spawn(seed):
            return np.random.default_rng(seed), random.Random(seed)
        """
        assert lint(allowed, path="src/repro/sim/rng.py") == []

    def test_named_stream_usage_clean(self):
        good = """
        from repro.sim.rng import spawn_rng

        def draw(seed):
            return spawn_rng(seed, "pow").random()
        """
        assert rule_hits(lint(good), "MV001") == []

    def test_generator_annotation_not_flagged(self):
        good = """
        import numpy as np

        def use(rng: np.random.Generator) -> float:
            return rng.random()
        """
        assert rule_hits(lint(good), "MV001") == []


# ---------------------------------------------------------------------- #
# MV002 wall clock
# ---------------------------------------------------------------------- #
class TestMV002:
    def test_time_time_flagged_in_core(self):
        bad = """
        import time

        def stamp():
            return time.time()
        """
        assert rule_hits(lint(bad, path="src/repro/core/x.py"), "MV002") == [(5, "MV002")]

    def test_from_time_import_flagged(self):
        bad = """
        from time import monotonic

        def stamp():
            return monotonic()
        """
        assert rule_hits(lint(bad, path="src/repro/sim/x.py"), "MV002") == [(5, "MV002")]

    def test_datetime_now_flagged(self):
        bad = """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """
        assert rule_hits(lint(bad, path="src/repro/chain/x.py"), "MV002") == [(5, "MV002")]

    def test_harness_is_out_of_scope(self):
        timed = """
        import time

        def stamp():
            return time.time()
        """
        assert rule_hits(lint(timed, path="src/repro/harness/x.py"), "MV002") == []

    def test_virtual_clock_clean(self):
        good = """
        def advance(clock):
            return clock.now() + 1.0
        """
        assert rule_hits(lint(good, path="src/repro/sim/x.py"), "MV002") == []


# ---------------------------------------------------------------------- #
# MV003 rng parameter typing
# ---------------------------------------------------------------------- #
class TestMV003:
    def test_unannotated_rng_flagged(self):
        bad = """
        def pick(instance, rng):
            return rng.integers(10)
        """
        assert rule_hits(lint(bad), "MV003") == [(2, "MV003")]

    def test_wrongly_annotated_rng_flagged(self):
        bad = """
        def pick(instance, rng: int):
            return rng
        """
        assert rule_hits(lint(bad), "MV003") == [(2, "MV003")]

    def test_generator_annotation_clean(self):
        good = """
        import numpy as np

        def pick(instance, rng: np.random.Generator):
            return rng.integers(10)
        """
        assert rule_hits(lint(good), "MV003") == []

    def test_string_annotation_accepted(self):
        good = """
        def pick(instance, rng: "np.random.Generator"):
            return rng.integers(10)
        """
        assert rule_hits(lint(good), "MV003") == []

    def test_rng_param_plus_global_rng_flagged(self):
        bad = """
        import numpy as np

        def pick(instance, rng: np.random.Generator):
            return rng.integers(10) + np.random.default_rng().integers(10)
        """
        hits = rule_hits(lint(bad), "MV003")
        assert hits == [(5, "MV003")]


# ---------------------------------------------------------------------- #
# MV004 mutable defaults
# ---------------------------------------------------------------------- #
class TestMV004:
    def test_list_default_flagged(self):
        bad = """
        def collect(items=[]):
            return items
        """
        assert rule_hits(lint(bad), "MV004") == [(2, "MV004")]

    def test_dict_and_set_call_defaults_flagged(self):
        bad = """
        def collect(a={}, *, b=set()):
            return a, b
        """
        assert len(rule_hits(lint(bad), "MV004")) == 2

    def test_none_default_clean(self):
        good = """
        def collect(items=None):
            return items or []
        """
        assert rule_hits(lint(good), "MV004") == []


# ---------------------------------------------------------------------- #
# MV005 silent except
# ---------------------------------------------------------------------- #
class TestMV005:
    def test_bare_except_flagged(self):
        bad = """
        def risky():
            try:
                return 1
            except:
                return 0
        """
        assert rule_hits(lint(bad), "MV005") == [(5, "MV005")]

    def test_except_exception_pass_flagged(self):
        bad = """
        def risky():
            try:
                return 1
            except Exception:
                pass
        """
        assert rule_hits(lint(bad), "MV005") == [(5, "MV005")]

    def test_handled_exception_clean(self):
        good = """
        def risky(log):
            try:
                return 1
            except ValueError:
                return 0
            except Exception as error:
                log(error)
                raise
        """
        assert rule_hits(lint(good), "MV005") == []


# ---------------------------------------------------------------------- #
# MV006 paper-contract docstrings
# ---------------------------------------------------------------------- #
class TestMV006:
    def test_missing_docstring_flagged(self):
        bad = """
        from repro.core.problem import EpochInstance

        def schedule(instance: EpochInstance) -> float:
            return 0.0
        """
        assert rule_hits(lint(bad, path="src/repro/core/x.py"), "MV006") == [(4, "MV006")]

    def test_docstring_without_paper_tokens_flagged(self):
        bad = '''
        from repro.core.solution import Solution

        def polish(solution: Solution) -> Solution:
            """Make it better."""
            return solution
        '''
        assert rule_hits(lint(bad, path="src/repro/core/x.py"), "MV006") == [(4, "MV006")]

    def test_constraint_reference_clean(self):
        good = '''
        from repro.core.solution import Solution

        def polish(solution: Solution) -> Solution:
            """Improve utility while keeping const. (3) N_min and capacity."""
            return solution
        '''
        assert rule_hits(lint(good, path="src/repro/core/x.py"), "MV006") == []

    def test_private_functions_out_of_scope(self):
        private = """
        from repro.core.solution import Solution

        def _scratch(solution: Solution) -> Solution:
            return solution
        """
        assert rule_hits(lint(private, path="src/repro/core/x.py"), "MV006") == []

    def test_non_core_paths_out_of_scope(self):
        elsewhere = """
        from repro.core.solution import Solution

        def helper(solution: Solution) -> Solution:
            return solution
        """
        assert rule_hits(lint(elsewhere, path="src/repro/baselines/x.py"), "MV006") == []


# ---------------------------------------------------------------------- #
# MV007 injected telemetry only
# ---------------------------------------------------------------------- #
class TestMV007:
    def test_hub_construction_in_replay_code_flagged(self):
        bad = """
        from repro.obs.telemetry import Telemetry

        def solve():
            return Telemetry()
        """
        assert rule_hits(lint(bad, path="src/repro/core/se.py"), "MV007") == [(5, "MV007")]

    def test_sink_construction_flagged_even_aliased(self):
        bad = """
        from repro.obs.sinks import JsonlSink as Sink, RingBufferSink

        def solve():
            a = Sink("trace.jsonl")
            b = RingBufferSink(16)
        """
        assert rule_hits(lint(bad, path="src/repro/sim/engine.py"), "MV007") == [
            (5, "MV007"),
            (6, "MV007"),
        ]

    def test_module_attribute_construction_flagged(self):
        bad = """
        import repro.obs.telemetry

        def solve():
            return repro.obs.telemetry.Telemetry()
        """
        assert rule_hits(lint(bad, path="src/repro/chain/pbft.py"), "MV007") == [(5, "MV007")]

    def test_null_telemetry_default_is_clean(self):
        good = """
        from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry

        def solve(telemetry: NullTelemetry = NULL_TELEMETRY):
            if telemetry.enabled:
                telemetry.event("x")
            return NullTelemetry()
        """
        assert rule_hits(lint(good, path="src/repro/core/se.py"), "MV007") == []

    def test_harness_may_build_hubs(self):
        harness = """
        from repro.obs.sinks import JsonlSink
        from repro.obs.telemetry import Telemetry

        def build():
            return Telemetry(sinks=[JsonlSink("t.jsonl")])
        """
        assert rule_hits(lint(harness, path="src/repro/harness/tracing.py"), "MV007") == []


# ---------------------------------------------------------------------- #
# MV008 picklable executor submissions
# ---------------------------------------------------------------------- #
class TestMV008:
    def test_lambda_submission_flagged(self):
        bad = """
        from concurrent.futures import ProcessPoolExecutor

        def run(pool: ProcessPoolExecutor):
            return pool.submit(lambda x: x + 1, 2)
        """
        assert rule_hits(lint(bad, path="src/repro/core/engine.py"), "MV008") == [
            (5, "MV008"),
        ]

    def test_closure_submission_flagged(self):
        bad = """
        from concurrent.futures import ProcessPoolExecutor

        def run(pool: ProcessPoolExecutor, items):
            def step(item):
                return item * 2
            return list(pool.map(step, items))
        """
        assert rule_hits(lint(bad, path="src/repro/core/engine.py"), "MV008") == [
            (7, "MV008"),
        ]

    def test_module_level_function_is_clean(self):
        good = """
        from concurrent.futures import ProcessPoolExecutor

        def step(item):
            return item * 2

        def run(pool: ProcessPoolExecutor, items):
            futures = [pool.submit(step, item) for item in items]
            return [future.result() for future in futures]
        """
        assert rule_hits(lint(good, path="src/repro/core/engine.py"), "MV008") == []

    def test_submit_without_executor_import_ignored(self):
        # '.submit'/'.map' on unrelated objects (no pool imports in the
        # module) stays out of scope — e.g. a custom scheduler API.
        good = """
        def run(queue, items):
            return queue.submit(lambda: 1)
        """
        assert rule_hits(lint(good, path="src/repro/core/engine.py"), "MV008") == []

    def test_packages_outside_core_and_harness_ignored(self):
        elsewhere = """
        from concurrent.futures import ProcessPoolExecutor

        def run(pool: ProcessPoolExecutor):
            return pool.submit(lambda x: x, 1)
        """
        assert rule_hits(lint(elsewhere, path="src/repro/obs/sinks.py"), "MV008") == []


# ---------------------------------------------------------------------- #
# MV009 builtin hash() is PYTHONHASHSEED-salted
# ---------------------------------------------------------------------- #
class TestMV009:
    def test_builtin_hash_flagged_in_chain(self):
        bad = """
        def addr(node_id):
            return hash(f"node-{node_id}") % 10_000
        """
        assert rule_hits(lint(bad, path="src/repro/chain/pbft.py"), "MV009") == [
            (3, "MV009"),
        ]

    def test_builtin_hash_flagged_in_sim(self):
        bad = """
        def bucket(key):
            return hash(key)
        """
        assert rule_hits(lint(bad, path="src/repro/sim/engine.py"), "MV009") == [
            (3, "MV009"),
        ]

    def test_hashlib_digest_is_clean(self):
        good = """
        import hashlib

        def addr(node_id):
            digest = hashlib.sha256(str(node_id).encode()).digest()
            return int.from_bytes(digest[:8], "little")
        """
        assert rule_hits(lint(good, path="src/repro/chain/pow.py"), "MV009") == []

    def test_shadowed_hash_is_clean(self):
        good = """
        def hash(value):
            return 7

        def addr(node_id):
            return hash(node_id)
        """
        assert rule_hits(lint(good, path="src/repro/chain/pbft.py"), "MV009") == []

    def test_packages_outside_chain_and_sim_ignored(self):
        elsewhere = """
        def key(obj):
            return hash(obj)
        """
        assert rule_hits(lint(elsewhere, path="src/repro/core/se.py"), "MV009") == []


# ---------------------------------------------------------------------- #
# configuration
# ---------------------------------------------------------------------- #
BAD_MV004 = """
def collect(items=[]):
    return items
"""


class TestConfig:
    def test_disable_silences_a_rule(self):
        config = config_from_section({"disable": ["MV004"]})
        assert lint(BAD_MV004, config=config) == []

    def test_enable_allowlist(self):
        config = config_from_section({"enable": ["MV001"]})
        assert lint(BAD_MV004, config=config) == []
        config = config_from_section({"enable": ["MV004"]})
        assert len(lint(BAD_MV004, config=config)) == 1

    def test_path_ignore_skips_file(self):
        config = config_from_section({"ignore": ["repro/core/legacy/*"]})
        assert lint(BAD_MV004, path="repro/core/legacy/x.py", config=config) == []
        assert len(lint(BAD_MV004, path="repro/core/fresh/x.py", config=config)) == 1

    def test_per_rule_ignore(self):
        config = config_from_section(
            {"per-rule-ignore": {"MV004": ["repro/core/somefile.py"]}}
        )
        assert lint(BAD_MV004, config=config) == []
        config = config_from_section(
            {"per-rule-ignore": {"MV001": ["repro/core/somefile.py"]}}
        )
        assert len(lint(BAD_MV004, config=config)) == 1

    def test_pyproject_round_trip(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "\n".join(
                [
                    "[tool.repro.analysis]",
                    'disable = ["MV006"]',
                    'ignore = ["vendored/*"]',
                    "",
                    "[tool.repro.analysis.per-rule-ignore]",
                    'MV002 = ["repro/chain/measurement.py"]',
                ]
            )
        )
        config = load_config(pyproject_path=str(pyproject))
        assert not config.rule_enabled("MV006")
        assert config.rule_enabled("MV001")
        assert config.path_ignored("vendored/x.py")
        assert config.path_ignored("repro/chain/measurement.py", "MV002")
        assert not config.path_ignored("repro/chain/measurement.py", "MV001")

    def test_repo_pyproject_loads(self):
        config = load_config()
        assert config.source is not None  # found the repo's pyproject.toml

    def test_baseline_key_resolves_relative_to_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.repro.analysis]\nbaseline = "lint-baseline.json"\n'
        )
        config = load_config(pyproject_path=str(pyproject))
        assert config.baseline == "lint-baseline.json"
        assert config.baseline_path() == str(tmp_path / "lint-baseline.json")

    def test_toml_subset_fallback_parser(self):
        # The 3.9/3.10 path (no tomllib); must decode the config shapes we use.
        from repro.analysis.config import _parse_toml_subset

        parsed = _parse_toml_subset(
            "\n".join(
                [
                    "# comment",
                    "[tool.repro.analysis]",
                    'disable = ["MV006", "MV004"]  # trailing comment',
                    "ignore = [",
                    '    "vendored/*",',
                    '    "generated/*",',
                    "]",
                    "threshold = 3",
                    "strict = true",
                    "",
                    "[tool.repro.analysis.per-rule-ignore]",
                    'MV002 = ["repro/chain/measurement.py"]',
                ]
            )
        )
        section = parsed["tool"]["repro"]["analysis"]
        assert section["disable"] == ["MV006", "MV004"]
        assert section["ignore"] == ["vendored/*", "generated/*"]
        assert section["threshold"] == 3
        assert section["strict"] is True
        assert section["per-rule-ignore"]["MV002"] == ["repro/chain/measurement.py"]


# ---------------------------------------------------------------------- #
# whole-tree + CLI
# ---------------------------------------------------------------------- #
class TestTreeAndCli:
    def test_repo_source_tree_is_clean(self):
        diagnostics = run_analysis(["src"])
        assert diagnostics == []

    def test_mvcom_lint_runs_clean_on_repo(self, capsys):
        assert cli_main(["lint", "src/"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_module_entry_point_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng(3)\n")
        from repro.analysis.__main__ import main as module_main

        # point at an empty config so the repo config cannot ignore it
        empty = tmp_path / "pyproject.toml"
        empty.write_text("")
        assert module_main([str(bad), "--config", str(empty)]) == 1
        out = capsys.readouterr().out
        assert "MV001" in out and "dirty.py:2" in out

    def test_module_entry_point_rejects_missing_config(self, tmp_path, capsys):
        from repro.analysis.__main__ import main as module_main

        assert module_main(["src", "--config", str(tmp_path / "missing.toml")]) == 2
        assert "--config file not found" in capsys.readouterr().err

    def test_module_entry_point_rejects_missing_path(self, capsys):
        from repro.analysis.__main__ import main as module_main

        assert module_main(["no/such/dir"]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_syntax_error_reported_not_raised(self):
        diagnostics = LintEngine(config=ALL_RULES).lint_source("def broken(:\n", path="x.py")
        assert diagnostics and diagnostics[0].rule_id == "MV000"


# ---------------------------------------------------------------------- #
# audit regressions: scope confinement and partial unwrapping
# ---------------------------------------------------------------------- #
class TestMV003Audit:
    def test_star_and_doublestar_rng_flagged_as_packing(self):
        bad = """
        def fanout(*rng):
            return rng


        def gather(**rng):
            return rng
        """
        findings = [d for d in lint(bad) if d.rule_id == "MV003"]
        assert [d.line for d in findings] == [2, 6]
        assert all("packs arguments" in d.message for d in findings)

    def test_nested_global_rng_call_blamed_once_on_inner_scope(self):
        # Both outer and inner take ``rng``; the np.random call lives in
        # inner.  The old whole-tree walk reported it for BOTH functions.
        bad = """
        import numpy as np


        def outer(rng: np.random.Generator):
            def inner(rng: np.random.Generator):
                return np.random.random()

            return inner
        """
        findings = [
            d for d in lint(bad) if d.rule_id == "MV003" and "also calls" in d.message
        ]
        assert len(findings) == 1
        assert "inner()" in findings[0].message


class TestMV008Audit:
    def test_partial_wrapped_closure_flagged(self):
        bad = """
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial


        def run():
            def task(x):
                return x

            with ProcessPoolExecutor() as pool:
                return pool.submit(partial(task, 1))
        """
        findings = [d for d in lint(bad) if d.rule_id == "MV008"]
        assert len(findings) == 1
        assert "via functools.partial" in findings[0].message

    def test_module_level_name_collision_is_not_a_false_positive(self):
        # ``other`` defines a local ``task``; that must not poison the
        # module-level ``task`` that ``run`` legitimately submits.
        good = """
        from concurrent.futures import ProcessPoolExecutor


        def task(x):
            return x


        def run():
            with ProcessPoolExecutor() as pool:
                return pool.submit(task, 1)


        def other():
            def task(y):
                return y

            return task
        """
        assert rule_hits(lint(good), "MV008") == []


class TestMV009Audit:
    def test_function_local_shadow_does_not_silence_module_wide(self):
        # ``compute`` rebinds hash locally; ``key`` still calls the builtin.
        # The old whole-tree binding collection silenced the entire module.
        bad = """
        def compute(obj, custom):
            hash = custom
            return hash(obj)


        def key(obj):
            return hash(obj)
        """
        hits = rule_hits(lint(bad, path="repro/chain/pbft.py"), "MV009")
        assert hits == [(8, "MV009")]

    def test_module_level_rebinding_applies_everywhere(self):
        good = """
        from repro.sim.util import stable_digest as hash


        def key(obj):
            return hash(obj)
        """
        assert rule_hits(lint(good, path="repro/chain/pbft.py"), "MV009") == []


# ---------------------------------------------------------------------- #
# pragmas on per-file rules
# ---------------------------------------------------------------------- #
class TestPragmas:
    def test_same_line_pragma_suppresses_named_rule(self):
        source = "def build(items=[]):  # repro: ignore[MV004]\n    return items\n"
        assert lint(source) == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = "def build(items=[]):  # repro: ignore[MV005]\n    return items\n"
        assert rule_hits(lint(source), "MV004") == [(1, "MV004")]

    def test_comment_only_pragma_line_covers_next_line(self):
        source = (
            "# repro: ignore[MV004, MV005]\n"
            "def build(items=[]):\n"
            "    return items\n"
        )
        assert lint(source) == []


# ---------------------------------------------------------------------- #
# tomllib-fallback parser edge cases (3.9/3.10 path)
# ---------------------------------------------------------------------- #
class TestTomlSubsetEdgeCases:
    def _section(self, text):
        from repro.analysis.config import _parse_toml_subset

        parsed = _parse_toml_subset(textwrap.dedent(text))
        return parsed.get("tool", {}).get("repro", {}).get("analysis", {})

    def test_per_rule_ignore_globs_round_trip(self):
        section = self._section(
            """
            [tool.repro.analysis.per-rule-ignore]
            MV004 = ["repro/core/legacy/*", "vendored/*"]
            """
        )
        config = config_from_section(section)
        assert config.path_ignored("repro/core/legacy/x.py", "MV004")
        assert not config.path_ignored("repro/core/legacy/x.py", "MV001")
        assert not config.path_ignored("repro/core/fresh/x.py", "MV004")

    def test_duplicate_keys_last_wins(self):
        # tomllib rejects duplicates outright; the lenient fallback takes
        # the final assignment so a hand-edited file still lints.
        section = self._section(
            """
            [tool.repro.analysis]
            disable = ["MV001"]
            disable = ["MV006"]
            """
        )
        assert section["disable"] == ["MV006"]

    def test_reopened_table_headers_merge(self):
        section = self._section(
            """
            [tool.repro.analysis]
            disable = ["MV006"]

            [tool.other]
            x = 1

            [tool.repro.analysis]
            ignore = ["vendored/*"]
            """
        )
        assert section["disable"] == ["MV006"]
        assert section["ignore"] == ["vendored/*"]

    def test_malformed_scalar_table_clash_is_not_fatal(self):
        # ``disable`` is a list; reopening it as a table must not raise and
        # must not clobber the decoded list.
        section = self._section(
            """
            [tool.repro.analysis]
            disable = ["MV006"]

            [tool.repro.analysis.disable.extra]
            x = 1
            """
        )
        assert section["disable"] == ["MV006"]

    def test_garbage_lines_skipped(self):
        section = self._section(
            """
            [tool.repro.analysis]
            this line is not toml at all )(
            disable = ["MV006"]
            """
        )
        assert section["disable"] == ["MV006"]
