"""Perfetto/OpenMetrics exporters: mapping, structure, byte-determinism."""

import hashlib
import io
import json
import os
import subprocess
import sys

import pytest

from repro.obs.export import (
    openmetrics_text,
    trace_event,
    write_openmetrics,
    write_perfetto,
)
from repro.obs.metrics import MetricsAggregator

# A hand-written trace exercising every record shape with enough distinct
# names/tags that a hash-order dependence anywhere in the exporters would
# scramble the output.
FIXTURE_RECORDS = (
    [{"seq": 1, "t": 0.0, "type": "event", "name": "se.bootstrap",
      "num_shards": 16, "capacity": 20000}]
    + [{"seq": 2 + i, "t": float(i), "type": "event", "name": "se.round",
        "best_utility": 100.0 + i, "current_utility": 90.0 + i, "transitions": i % 3}
       for i in range(8)]
    + [{"seq": 10 + i, "t": 10.0 + i, "type": "hist", "name": "chain.mempool.age_s",
        "value": 1.5 * (i + 1), "epoch": i % 2} for i in range(6)]
    + [{"seq": 16 + i, "t": 20.0 + i, "type": "counter", "name": "se.reset_broadcasts",
        "inc": 1, "total": i + 1} for i in range(4)]
    + [{"seq": 20, "t": 24.0, "type": "gauge", "name": "sim.pending", "value": 7.0},
       {"seq": 21, "t": 30.0, "type": "span", "name": "chain.pbft.round",
        "t0": 25.0, "t1": 30.0, "dt": 5.0, "depth": 1, "tag": "epoch0-committee3"},
       {"seq": 22, "t": 31.0, "type": "span", "name": "harness.se_solve",
        "t0": 0.0, "t1": 31.0, "dt": 31.0, "depth": 0, "wall_dt": 0.25},
       {"seq": 23, "t": 32.0, "type": "event", "name": "harness.done",
        "utility": 107.0, "converged": True}]
)


def _write_fixture(path):
    with open(path, "w", encoding="utf-8") as handle:
        for record in FIXTURE_RECORDS:
            handle.write(json.dumps(record) + "\n")
    return path


# ---------------------------------------------------------------------- #
# record -> trace_event mapping
# ---------------------------------------------------------------------- #
class TestTraceEvent:
    def test_span_becomes_complete_event(self):
        event = trace_event({"type": "span", "name": "s", "t0": 1.0, "t1": 3.0,
                             "dt": 2.0, "depth": 2, "tag": "x"})
        assert event["ph"] == "X"
        assert event["ts"] == 1.0e6 and event["dur"] == 2.0e6
        assert event["tid"] == 2
        assert event["args"] == {"tag": "x"}  # envelope keys stripped

    def test_counter_and_gauge_become_counter_samples(self):
        counter = trace_event({"type": "counter", "name": "c", "t": 2.0,
                               "inc": 1, "total": 5})
        assert counter["ph"] == "C" and counter["args"] == {"c": 5}
        gauge = trace_event({"type": "gauge", "name": "g", "t": 1.0, "value": 7.5})
        assert gauge["ph"] == "C" and gauge["args"] == {"g": 7.5}

    def test_event_and_hist_become_instants(self):
        instant = trace_event({"type": "event", "name": "e", "t": 1.0, "k": 3})
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["args"] == {"k": 3}
        hist = trace_event({"type": "hist", "name": "h", "t": 1.0, "value": 0.5})
        assert hist["args"] == {"value": 0.5}

    def test_unknown_type_maps_to_none(self):
        assert trace_event({"type": "mystery", "name": "?"}) is None


# ---------------------------------------------------------------------- #
# perfetto writer
# ---------------------------------------------------------------------- #
class TestPerfetto:
    def test_output_is_valid_trace_event_json(self):
        buffer = io.StringIO()
        written = write_perfetto(FIXTURE_RECORDS, buffer)
        assert written == len(FIXTURE_RECORDS)
        document = json.loads(buffer.getvalue())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == written
        assert {event["ph"] for event in events} == {"X", "C", "i"}
        span = next(e for e in events if e["name"] == "chain.pbft.round")
        assert span["dur"] == 5.0e6

    def test_same_input_twice_is_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            write_perfetto(FIXTURE_RECORDS, str(path))
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_empty_trace_still_valid(self):
        buffer = io.StringIO()
        assert write_perfetto([], buffer) == 0
        assert json.loads(buffer.getvalue())["traceEvents"] == []


# ---------------------------------------------------------------------- #
# openmetrics exposition
# ---------------------------------------------------------------------- #
class TestOpenMetrics:
    @pytest.fixture(scope="class")
    def text(self):
        aggregator = MetricsAggregator().consume(iter(FIXTURE_RECORDS))
        return openmetrics_text(aggregator)

    def test_families_types_and_terminator(self, text):
        assert "# TYPE mvcom_chain_mempool_age_s_value summary" in text
        assert "# TYPE mvcom_se_reset_broadcasts_total counter" in text
        assert "# TYPE mvcom_sim_pending_gauge gauge" in text
        assert text.endswith("# EOF\n")
        assert f"mvcom_trace_records {len(FIXTURE_RECORDS)}" in text

    def test_summary_quantiles_and_tag_labels(self, text):
        assert 'mvcom_chain_mempool_age_s_value{quantile="0.99"}' in text
        assert 'mvcom_chain_mempool_age_s_value{epoch="0",quantile="0.5"}' in text
        assert 'mvcom_chain_pbft_round_span_dt{tag="epoch0-committee3",quantile="0.5"}' in text
        assert "mvcom_chain_mempool_age_s_value_count 6" in text

    def test_counter_totals_render_bare_integers(self, text):
        assert "mvcom_se_reset_broadcasts_total 4" in text  # four inc=1 records
        assert "mvcom_se_round_records 8" in text

    def test_write_openmetrics_to_path_and_handle(self, tmp_path):
        aggregator = MetricsAggregator().consume(iter(FIXTURE_RECORDS))
        path = tmp_path / "metrics.prom"
        returned = write_openmetrics(aggregator, str(path))
        assert path.read_text() == returned
        buffer = io.StringIO()
        write_openmetrics(aggregator, buffer)
        assert buffer.getvalue() == returned


# ---------------------------------------------------------------------- #
# byte-determinism across PYTHONHASHSEED (acceptance criterion) -- the
# exporters run in fresh interpreters so any hash-order dependence in
# dict/set iteration would produce differing bytes.
# ---------------------------------------------------------------------- #
class TestHashSeedDeterminism:
    @pytest.mark.parametrize("format_name", ["perfetto", "openmetrics"])
    def test_exports_identical_across_hash_seeds(self, tmp_path, format_name):
        trace = _write_fixture(tmp_path / "trace.jsonl")
        digests = set()
        for seed in ("0", "1", "424242"):
            out = tmp_path / f"out-{seed}"
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.abspath("src"), env.get("PYTHONPATH")) if p
            )
            completed = subprocess.run(
                [sys.executable, "-m", "repro.harness.cli", "trace", "export",
                 str(trace), "--format", format_name, "--out", str(out)],
                capture_output=True,
                env=env,
            )
            assert completed.returncode == 0, completed.stderr.decode()
            digests.add(hashlib.sha256(out.read_bytes()).hexdigest())
        assert len(digests) == 1

    def test_aggregate_snapshot_identical_across_hash_seeds(self, tmp_path):
        trace = _write_fixture(tmp_path / "trace.jsonl")
        digests = set()
        for seed in ("0", "77"):
            out = tmp_path / f"agg-{seed}.json"
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.abspath("src"), env.get("PYTHONPATH")) if p
            )
            completed = subprocess.run(
                [sys.executable, "-m", "repro.harness.cli", "trace", "metrics",
                 str(trace), "--out", str(out)],
                capture_output=True,
                env=env,
            )
            assert completed.returncode == 0, completed.stderr.decode()
            digests.add(hashlib.sha256(out.read_bytes()).hexdigest())
        assert len(digests) == 1
