"""``mvcom trace metrics/export/diff``: the CLI regression-gate surface.

The golden fixtures under ``tests/fixtures/`` are hand-written traces
(stable bytes, committed) so the diff gate's exit codes are pinned:
identical traces must exit 0 with zero deltas, the perturbed twin must
exit non-zero.
"""

import json
import os

import pytest

from repro.harness.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
GOLDEN = os.path.join(FIXTURES, "golden_trace.jsonl")
PERTURBED = os.path.join(FIXTURES, "golden_trace_perturbed.jsonl")


# ---------------------------------------------------------------------- #
# trace metrics
# ---------------------------------------------------------------------- #
def test_trace_metrics_reports_series_table(capsys):
    assert main(["trace", "metrics", GOLDEN]) == 0
    out = capsys.readouterr().out
    assert "trace metrics: 26 records" in out
    assert "Aggregated metric series" in out
    assert "chain.mempool.age_s" in out
    assert "se.round.best_utility" in out


def test_trace_metrics_writes_aggregate_snapshot(tmp_path, capsys):
    out_path = tmp_path / "agg.json"
    assert main(["trace", "metrics", GOLDEN, "--out", str(out_path)]) == 0
    snapshot = json.loads(out_path.read_text())
    assert snapshot["format"] == "mvcom-trace-aggregate-v1"
    assert snapshot["records"] == 26
    assert "event|se.round" in snapshot["series"]
    assert f"[aggregate snapshot written to {out_path}]" in capsys.readouterr().out


def test_trace_metrics_slo_flag_loads_repo_specs(capsys):
    # The golden trace stays within every committed example SLO.
    assert main(["trace", "metrics", GOLDEN, "--slo"]) == 0
    out = capsys.readouterr().out
    assert "SLO specs loaded:" in out
    assert "SLOs: all passing" in out


# ---------------------------------------------------------------------- #
# trace export
# ---------------------------------------------------------------------- #
def test_trace_export_perfetto_defaults_output_path(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    trace.write_bytes(open(GOLDEN, "rb").read())
    assert main(["trace", "export", str(trace), "--format", "perfetto"]) == 0
    out_path = str(trace) + ".perfetto.json"
    assert os.path.exists(out_path)
    document = json.loads(open(out_path).read())
    assert len(document["traceEvents"]) == 26
    assert "[26 trace events written" in capsys.readouterr().out


def test_trace_export_openmetrics(tmp_path, capsys):
    out_path = tmp_path / "m.prom"
    assert main(["trace", "export", GOLDEN, "--format", "openmetrics",
                 "--out", str(out_path)]) == 0
    text = out_path.read_text()
    assert text.endswith("# EOF\n")
    assert "mvcom_trace_records 26" in text
    assert "series exposed" in capsys.readouterr().out


def test_trace_export_requires_format():
    with pytest.raises(SystemExit):
        main(["trace", "export", GOLDEN])


# ---------------------------------------------------------------------- #
# trace diff: the regression gate's exit codes are load-bearing for CI
# ---------------------------------------------------------------------- #
def test_diff_identical_traces_exits_zero(capsys):
    assert main(["trace", "diff", GOLDEN, GOLDEN]) == 0
    out = capsys.readouterr().out
    assert "0 changed" in out
    assert "zero deltas: runs aggregate identically" in out


def test_diff_perturbed_trace_exits_nonzero(capsys):
    assert main(["trace", "diff", GOLDEN, PERTURBED]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION:" in out
    assert "Largest per-metric deltas" in out
    # The planted regressions surface by name.
    assert "chain.pbft.round" in out or "se.round.best_utility" in out


def test_diff_threshold_gates_small_deltas(capsys):
    # The planted deltas are all under 30%, so a loose gate passes...
    assert main(["trace", "diff", GOLDEN, PERTURBED, "--fail-above", "30"]) == 0
    assert "above the 30% threshold" in capsys.readouterr().out
    # ...and a 1% gate still fails.
    assert main(["trace", "diff", GOLDEN, PERTURBED, "--fail-above", "1"]) == 1
    capsys.readouterr()


def test_diff_accepts_aggregate_snapshots(tmp_path, capsys):
    aggregate = tmp_path / "golden.json"
    main(["trace", "metrics", GOLDEN, "--out", str(aggregate)])
    capsys.readouterr()
    # Snapshot-vs-raw-trace comparison: same aggregation, zero deltas.
    assert main(["trace", "diff", str(aggregate), GOLDEN]) == 0
    assert "zero deltas" in capsys.readouterr().out


def test_trace_verb_usage_errors():
    with pytest.raises(SystemExit):
        main(["trace", "diff", GOLDEN])  # missing candidate
    with pytest.raises(SystemExit):
        main(["trace", "metrics"])  # missing path
