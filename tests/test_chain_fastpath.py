"""Parity tests for the closed-form chain fastpath (repro.chain.fastpath).

The DES in repro.chain.pbft/network is the reference executable spec; the
fastpath must be

* **byte-identical** where no approximation exists: formation (stages
  1-2), pre-draw fallbacks (Byzantine primary, lossy network), and the
  DES itself after the RNG-buffer / address-scheme changes;
* **distributionally indistinguishable** where the PBFT kernel block-draws
  its randomness: per-committee-size two-sample KS at alpha=0.01;
* **PYTHONHASHSEED-independent** end to end (lint rule MV009's contract),
  checked in a subprocess.
"""

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.chain.elastico import ElasticoSimulation
from repro.chain.fastpath import (
    formation_kernel,
    pbft_round_closed_form,
    run_pbft,
    run_pbft_round_fast,
)
from repro.chain.measurement import linear_growth_check, measure_two_phase_latency
from repro.chain.network import Network
from repro.chain.node import spawn_nodes
from repro.chain.params import ChainParams, NetworkParams
from repro.chain.pbft import run_pbft_round
from repro.metrics.ks import ks_critical_value, ks_statistic
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.sim.engine import SimulationEngine
from repro.sim.rng import spawn_rng

VERIFY_MEAN_S = 22.0


def des_commit_times(size, seeds, byzantine_fraction=0.0):
    times = []
    for seed in seeds:
        members = spawn_nodes(
            count=size, byzantine_fraction=byzantine_fraction, rng=spawn_rng(seed, "members")
        )
        outcome = run_pbft_round(
            members=members,
            rng=spawn_rng(seed, "round"),
            network_params=NetworkParams(),
            verify_mean_s=VERIFY_MEAN_S,
        )
        if outcome.committed:
            times.append(outcome.latency)
    return times


def fastpath_commit_times(size, seeds, byzantine_fraction=0.0):
    times = []
    for seed in seeds:
        members = spawn_nodes(
            count=size, byzantine_fraction=byzantine_fraction, rng=spawn_rng(seed, "members")
        )
        outcome = run_pbft_round_fast(
            members=members,
            rng=spawn_rng(seed, "round"),
            network_params=NetworkParams(),
            verify_mean_s=VERIFY_MEAN_S,
        )
        if outcome.committed:
            times.append(outcome.latency)
    return times


class TestKernelDistribution:
    @pytest.mark.parametrize(
        "size,trials",
        [(4, 250), (8, 150), (16, 80)],
    )
    def test_ks_non_rejection_per_size(self, size, trials):
        """Fastpath commit times are distributionally indistinguishable
        from the DES at alpha=0.01, per committee size.  Disjoint seed
        ranges keep the two samples independent."""
        des = des_commit_times(size, range(trials))
        fast = fastpath_commit_times(size, range(10_000, 10_000 + trials))
        assert len(des) == trials and len(fast) == trials
        d_stat = ks_statistic(des, fast)
        assert d_stat < ks_critical_value(len(des), len(fast), alpha=0.01)

    def test_ks_with_byzantine_members(self):
        """Non-primary Byzantine members (silent replicas) still pass KS:
        the kernel masks their votes exactly like the DES ignores them."""
        des = des_commit_times(8, range(120), byzantine_fraction=0.2)
        fast = fastpath_commit_times(8, range(20_000, 20_120), byzantine_fraction=0.2)
        d_stat = ks_statistic(des, fast)
        assert d_stat < ks_critical_value(len(des), len(fast), alpha=0.01)

    def test_stage_times_ordered(self):
        members = spawn_nodes(count=8, byzantine_fraction=0.0, rng=spawn_rng(3, "members"))
        outcome = pbft_round_closed_form(
            members, spawn_rng(3, "round"), NetworkParams(), VERIFY_MEAN_S
        )
        assert outcome is not None and outcome.committed
        stages = outcome.stage_times
        assert 0.0 == stages["pre-prepare-sent"] <= stages["prepare-quorum"] <= stages["commit-quorum"]
        assert outcome.latency == stages["commit-quorum"]


class TestFallbacks:
    def test_byzantine_primary_falls_back_byte_identical(self):
        """The Byzantine-primary check consumes no randomness, so the
        fallback replays the DES from the identical stream position."""
        seed = 7
        members = spawn_nodes(count=8, byzantine_fraction=0.4, rng=spawn_rng(seed, "members"))
        members[0].honest = False  # force a Byzantine view-0 primary
        reference = run_pbft_round(
            members=members,
            rng=spawn_rng(seed, "round"),
            network_params=NetworkParams(),
            verify_mean_s=VERIFY_MEAN_S,
        )
        fast = run_pbft_round_fast(
            members=members,
            rng=spawn_rng(seed, "round"),
            network_params=NetworkParams(),
            verify_mean_s=VERIFY_MEAN_S,
        )
        assert fast.committed == reference.committed
        assert fast.commit_time == reference.commit_time
        assert fast.stage_times == reference.stage_times

    def test_lossy_network_falls_back_byte_identical(self):
        seed = 11
        net = NetworkParams(loss_probability=0.05)
        members = spawn_nodes(count=8, byzantine_fraction=0.0, rng=spawn_rng(seed, "members"))
        reference = run_pbft_round(
            members=members, rng=spawn_rng(seed, "round"), network_params=net,
            verify_mean_s=VERIFY_MEAN_S,
        )
        fast = run_pbft_round_fast(
            members=members, rng=spawn_rng(seed, "round"), network_params=net,
            verify_mean_s=VERIFY_MEAN_S,
        )
        assert fast.committed == reference.committed
        assert fast.commit_time == reference.commit_time
        assert fast.stage_times == reference.stage_times

    def test_timeout_fallback_emits_telemetry_reason(self):
        """Heavy jitter with a tiny verify mean pushes the closed-form
        commit past the view-change timeout; the fastpath must emit the
        fallback event and delegate to the DES (seed pinned to a case
        found by search)."""
        net = NetworkParams(jitter_sigma=3.5)
        members = spawn_nodes(count=4, byzantine_fraction=0.0, rng=spawn_rng(1, "m"))
        assert pbft_round_closed_form(members, spawn_rng(1, "r"), net, 0.05) is None
        ring = RingBufferSink(1024)
        telemetry = Telemetry(sinks=[ring])
        run_pbft_round_fast(
            members=members, rng=spawn_rng(1, "r"), network_params=net,
            verify_mean_s=0.05, round_tag="timeout-case", telemetry=telemetry,
        )
        fallbacks = [r for r in ring.records if r.get("name") == "chain.fastpath.fallback"]
        assert fallbacks and fallbacks[0]["reason"] == "view-change-timeout"
        assert fallbacks[0]["tag"] == "timeout-case"

    def test_explicit_timeout_invalidates_closed_form(self):
        members = spawn_nodes(count=8, byzantine_fraction=0.0, rng=spawn_rng(5, "members"))
        assert (
            pbft_round_closed_form(
                members, spawn_rng(5, "round"), NetworkParams(), VERIFY_MEAN_S,
                view_change_timeout_s=1e-6,
            )
            is None
        )

    def test_too_small_committee_rejected(self):
        members = spawn_nodes(count=3, byzantine_fraction=0.0, rng=spawn_rng(0, "members"))
        with pytest.raises(ValueError):
            pbft_round_closed_form(members, spawn_rng(0, "round"), NetworkParams(), VERIFY_MEAN_S)

    def test_run_pbft_dispatch(self):
        members = spawn_nodes(count=4, byzantine_fraction=0.0, rng=spawn_rng(2, "members"))
        des = run_pbft(
            "des", members=members, rng=spawn_rng(2, "round"),
            network_params=NetworkParams(), verify_mean_s=VERIFY_MEAN_S,
        )
        reference = run_pbft_round(
            members=members, rng=spawn_rng(2, "round"),
            network_params=NetworkParams(), verify_mean_s=VERIFY_MEAN_S,
        )
        assert des.commit_time == reference.commit_time


class TestBatchedRounds:
    """Stage 3 on the fastpath engine runs one (K, c, c) kernel call per
    epoch (run_intra_consensus_batch) plus DES replays for the ineligible
    committees."""

    def test_lossy_epoch_byte_identical_to_des(self):
        """With a lossy network the kernel draws nothing, every committee
        replays under the DES in order, and the whole epoch -- consensus
        latencies included -- must equal the pure DES epoch exactly."""
        params = ChainParams(
            num_nodes=240,
            committee_size=8,
            seed=3,
            network=NetworkParams(loss_probability=0.05),
        )
        des = ElasticoSimulation(params, chain_engine="des").run_epoch()
        fast = ElasticoSimulation(params, chain_engine="fastpath").run_epoch()
        assert des.formation_latencies == fast.formation_latencies
        assert des.consensus_latencies == fast.consensus_latencies
        assert des.randomness == fast.randomness

    def test_batch_and_serial_commit_the_same_committees(self):
        """The batch must stamp blocks on exactly the committees the
        serial per-round loop would (values differ: independent draws)."""
        from repro.chain.committee import run_intra_consensus_batch

        params = ChainParams(num_nodes=480, committee_size=8, seed=11, chain_engine="fastpath")
        sim_a = ElasticoSimulation(params)
        sim_b = ElasticoSimulation(params)
        rng_a = sim_a.streams.fork("epoch-0").get("epoch")
        rng_b = sim_b.streams.fork("epoch-0").get("epoch")
        committees_a = sim_a.form_committees(rng_a)
        committees_b = sim_b.form_committees(rng_b)
        serial = [c.run_intra_consensus(params, rng_a) for c in committees_a]
        serial_blocks = [block for block in serial if block is not None]
        batch_blocks = run_intra_consensus_batch(committees_b, params, rng_b)
        assert [b.committee_id for b in batch_blocks] == [b.committee_id for b in serial_blocks]
        for a, b in zip(serial_blocks, batch_blocks):
            assert a.formation_latency == b.formation_latency
            assert b.consensus_latency > 0.0

    def test_batched_consensus_ks_vs_des_measurement(self):
        """End-to-end Fig. 2 consensus samples from the batched fastpath
        vs the DES at one size: KS must not reject at alpha=0.01."""
        base = ChainParams(num_nodes=100, committee_size=8, seed=7)
        samples = {}
        for engine in ("des", "fastpath"):
            (m,) = measure_two_phase_latency(
                base, [400], epochs_per_size=3, chain_engine=engine
            )
            samples[engine] = m.consensus_latencies
        d_stat = ks_statistic(samples["des"], samples["fastpath"])
        assert d_stat < ks_critical_value(
            len(samples["des"]), len(samples["fastpath"]), alpha=0.01
        )


class TestFormationByteIdentity:
    def test_formation_kernel_matches_reference(self):
        """Stages 1-2 have no event interleaving: the kernel must match
        the reference path float-for-float, same RNG stream."""
        params = ChainParams(num_nodes=240, committee_size=8, seed=5)
        des = ElasticoSimulation(params, chain_engine="des")
        fast = ElasticoSimulation(params, chain_engine="fastpath")
        committees_des = des.form_committees(des.streams.fork("epoch-0").get("epoch"))
        committees_fast = fast.form_committees(fast.streams.fork("epoch-0").get("epoch"))
        assert [c.committee_id for c in committees_des] == [c.committee_id for c in committees_fast]
        for a, b in zip(committees_des, committees_fast):
            assert a.formation_latency == b.formation_latency
            assert [n.node_id for n in a.members] == [n.node_id for n in b.members]

    def test_epoch_formation_latencies_identical(self):
        params = ChainParams(num_nodes=240, committee_size=8, seed=9)
        des = ElasticoSimulation(params, chain_engine="des").run_epoch()
        fast = ElasticoSimulation(params, chain_engine="fastpath").run_epoch()
        assert des.formation_latencies == fast.formation_latencies

    def test_formation_kernel_validates_inputs(self):
        nodes = spawn_nodes(count=20, byzantine_fraction=0.0, rng=spawn_rng(0, "n"))
        with pytest.raises(ValueError):
            formation_kernel(nodes, 0, 4, 600.0, "genesis", 0.5, spawn_rng(0, "r"))
        with pytest.raises(ValueError):
            formation_kernel(nodes, 2, 4, -1.0, "genesis", 0.5, spawn_rng(0, "r"))
        with pytest.raises(ValueError):
            formation_kernel(nodes, 2, 4, 600.0, "genesis", 0.0, spawn_rng(0, "r"))


class TestNetworkDeterminism:
    def test_buffered_and_unbuffered_broadcast_identical(self):
        """The prefilled delay buffer must preserve draw order exactly:
        a buffered broadcast delivers at the same virtual times as the
        scalar-draw reference."""

        def deliveries(buffered):
            engine = SimulationEngine()
            network = Network(engine, NetworkParams(), spawn_rng(13, "net"), buffered=buffered)
            seen = []
            for node_id in range(6):
                network.register(
                    node_id,
                    lambda msg, _nid=node_id: seen.append((engine.now, _nid, msg.kind)),
                )
            network.broadcast(0, range(6), "prepare", payload=0)
            network.broadcast(1, range(6), "commit", payload=1)
            engine.run()
            return seen

        assert deliveries(buffered=True) == deliveries(buffered=False)

    def test_claim_address_sequential(self):
        engine = SimulationEngine()
        network = Network(engine, NetworkParams(), spawn_rng(0, "net"))
        assert [network.claim_address() for _ in range(4)] == [0, 1, 2, 3]

    def test_des_round_reproducible_within_process(self):
        members = spawn_nodes(count=8, byzantine_fraction=0.1, rng=spawn_rng(21, "members"))
        first = run_pbft_round(
            members=members, rng=spawn_rng(21, "round"),
            network_params=NetworkParams(), verify_mean_s=VERIFY_MEAN_S,
        )
        second = run_pbft_round(
            members=members, rng=spawn_rng(21, "round"),
            network_params=NetworkParams(), verify_mean_s=VERIFY_MEAN_S,
        )
        assert first.commit_time == second.commit_time
        assert first.stage_times == second.stage_times


_HASHSEED_PROBE = textwrap.dedent(
    """
    import json
    from repro.chain.elastico import ElasticoSimulation
    from repro.chain.node import spawn_nodes
    from repro.chain.params import ChainParams, NetworkParams
    from repro.chain.pbft import run_pbft_round
    from repro.sim.rng import spawn_rng

    members = spawn_nodes(count=8, byzantine_fraction=0.1, rng=spawn_rng(3, "members"))
    outcome = run_pbft_round(
        members=members, rng=spawn_rng(3, "round"),
        network_params=NetworkParams(), verify_mean_s=22.0,
    )
    epoch = ElasticoSimulation(ChainParams(num_nodes=160, committee_size=8, seed=3)).run_epoch()
    print(json.dumps({
        "commit": outcome.commit_time,
        "stages": outcome.stage_times,
        "formation": sorted(epoch.formation_latencies.items()),
        "consensus": sorted(epoch.consensus_latencies.items()),
    }))
    """
)


class TestHashSeedIndependence:
    def test_des_identical_across_hash_seeds(self):
        """The DES must produce bit-identical latencies under different
        PYTHONHASHSEED values (the old builtin-hash address scheme did
        not; lint rule MV009 keeps it that way)."""
        outputs = []
        for hash_seed in ("1", "271828"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_PROBE],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert json.loads(outputs[0])["commit"] > 0


class TestMeasurementFastpath:
    def test_linear_growth_on_fastpath(self):
        """Fig. 2a's claim (near-linear formation growth) holds on the
        fastpath engine too -- formation is byte-identical to the DES, so
        the fit comes out the same shape."""
        params = ChainParams(num_nodes=100, committee_size=8, seed=5)
        measurements = measure_two_phase_latency(
            params, (100, 250, 400, 700), epochs_per_size=1, chain_engine="fastpath"
        )
        fit = linear_growth_check(measurements)
        assert fit["slope"] > 0
        assert fit["r_squared"] > 0.6  # same claim/threshold as the DES test

    def test_formation_matches_des_measurement(self):
        params = ChainParams(num_nodes=100, committee_size=8, seed=1)
        des = measure_two_phase_latency(params, (100, 200), epochs_per_size=1, chain_engine="des")
        fast = measure_two_phase_latency(
            params, (100, 200), epochs_per_size=1, chain_engine="fastpath"
        )
        for a, b in zip(des, fast):
            assert a.formation_latencies == b.formation_latencies

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ChainParams(chain_engine="warp")
