"""Property-based tests on the SE algorithm's contract."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import EpochInstance, MVComConfig
from repro.core.se import SEConfig, StochasticExploration, should_bootstrap


@st.composite
def feasible_instances(draw):
    """Random instances guaranteed to admit at least one selection."""
    n = draw(st.integers(min_value=4, max_value=18))
    tx_counts = draw(st.lists(st.integers(min_value=50, max_value=2_000),
                              min_size=n, max_size=n))
    latencies = draw(st.lists(st.floats(min_value=0, max_value=1_500,
                                        allow_nan=False), min_size=n, max_size=n))
    alpha = draw(st.sampled_from([1.5, 5.0, 10.0]))
    # Capacity between the largest single shard and the total.
    total = sum(tx_counts)
    capacity = draw(st.integers(min_value=max(tx_counts), max_value=max(total, max(tx_counts) + 1)))
    config = MVComConfig(alpha=alpha, capacity=capacity)
    return EpochInstance(tx_counts, latencies, config)


@given(feasible_instances(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_se_always_returns_feasible_solutions(instance, seed):
    """Whatever the instance and seed, SE's answer satisfies (3)-(4) and its
    reported aggregates match its mask."""
    result = StochasticExploration(
        SEConfig(num_threads=2, max_iterations=250, convergence_window=120, seed=seed)
    ).solve(instance)
    assert result.best_weight <= instance.capacity
    assert result.best_count >= instance.n_min
    assert instance.weight(result.best_mask) == result.best_weight
    assert abs(instance.utility(result.best_mask) - result.best_utility) < 1e-6 * max(
        1.0, abs(result.best_utility)
    )
    trace = result.utility_trace
    assert (np.diff(trace) >= -1e-9).all()  # best-so-far is monotone


@given(feasible_instances())
@settings(max_examples=40, deadline=None)
def test_bootstrap_condition_matches_definition(instance):
    expected = (
        instance.num_shards >= instance.n_min
        and int(instance.tx_counts.sum()) > instance.capacity
    )
    assert should_bootstrap(instance) == expected


@given(feasible_instances())
@settings(max_examples=25, deadline=None)
def test_se_beats_or_matches_its_own_initialisation(instance):
    result = StochasticExploration(
        SEConfig(num_threads=2, max_iterations=300, convergence_window=150, seed=1)
    ).solve(instance)
    assert result.best_utility >= result.utility_trace[0] - 1e-9
