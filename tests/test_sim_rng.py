"""Tests for named random streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomStreams, derive_seed, spawn_fast_rng, spawn_rng


def test_same_seed_same_stream():
    a = spawn_rng(7, "pow")
    b = spawn_rng(7, "pow")
    assert np.allclose(a.random(100), b.random(100))


def test_different_names_differ():
    a = spawn_rng(7, "pow")
    b = spawn_rng(7, "pbft")
    assert not np.allclose(a.random(100), b.random(100))


def test_different_seeds_differ():
    a = spawn_rng(7, "pow")
    b = spawn_rng(8, "pow")
    assert not np.allclose(a.random(100), b.random(100))


def test_derive_seed_stable_and_64bit():
    seed = derive_seed(42, "stream")
    assert seed == derive_seed(42, "stream")
    assert 0 <= seed < 2**64


def test_spawn_fast_rng_deterministic_and_isolated():
    a = spawn_fast_rng(7, "se-thread")
    b = spawn_fast_rng(7, "se-thread")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]
    other = spawn_fast_rng(7, "other-thread")
    assert a.random() != other.random()


def test_spawn_fast_rng_matches_numpy_stream_seed():
    # Both flavours derive the same child seed for the same (root, name).
    assert spawn_fast_rng(5, "x").getrandbits(0) == 0  # smoke: it is a Random
    assert derive_seed(5, "x") == derive_seed(5, "x")


# ---------------------------------------------------------------------- #
# derive_seed properties (hypothesis)
# ---------------------------------------------------------------------- #
_SEEDS = st.integers(min_value=0, max_value=2**64 - 1)
_NAMES = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=40
)


@settings(max_examples=200, deadline=None)
@given(pairs=st.lists(st.tuples(_SEEDS, _NAMES), min_size=2, max_size=64, unique=True))
def test_derive_seed_distinct_pairs_rarely_collide(pairs):
    # SHA-256 truncated to 64 bits: collisions across a few dozen distinct
    # (root_seed, name) pairs are negligible (~n^2 / 2^65); any collision
    # hypothesis finds here would be an implementation bug (e.g. ignoring
    # part of the key), not bad luck.
    seeds = {derive_seed(root, name) for root, name in pairs}
    assert len(seeds) == len(pairs)


@settings(max_examples=200, deadline=None)
@given(root=_SEEDS, name=_NAMES)
def test_derive_seed_is_pure_and_in_range(root, name):
    first = derive_seed(root, name)
    assert first == derive_seed(root, name)
    assert 0 <= first < 2**64


@settings(max_examples=100, deadline=None)
@given(root=_SEEDS, name=_NAMES)
def test_derive_seed_sensitive_to_both_components(root, name):
    assert derive_seed(root, name) != derive_seed(root, name + "\x00")
    assert derive_seed(root, name) != derive_seed((root + 1) % 2**64, name)


def test_derive_seed_golden_values_stable_across_processes():
    # Frozen outputs of the SHA-256 derivation: any change here would shift
    # every named stream and silently invalidate all recorded figures.
    assert derive_seed(0, "pow") == 17309236853511741701
    assert derive_seed(42, "stream") == 16648157695521472047
    assert derive_seed(123456789, "replica-0-init") == 17135260820722920934
    assert derive_seed(2**63, "Ĉ") == 6762627598470032393


def test_registry_caches_streams():
    streams = RandomStreams(seed=3)
    assert streams.get("x") is streams.get("x")


def test_registry_isolation_between_names():
    streams = RandomStreams(seed=3)
    first = streams.get("a").random(10)
    # Drawing from stream "b" must not perturb stream "a"'s continuation.
    streams.get("b").random(1000)
    fresh = RandomStreams(seed=3)
    fresh_first = fresh.get("a").random(10)
    assert np.allclose(first, fresh_first)


def test_fork_creates_independent_registry():
    parent = RandomStreams(seed=3)
    child = parent.fork("epoch-0")
    assert child.seed != parent.seed
    assert not np.allclose(parent.get("x").random(50), child.get("x").random(50))


def test_fork_is_deterministic():
    a = RandomStreams(seed=3).fork("epoch-0")
    b = RandomStreams(seed=3).fork("epoch-0")
    assert a.seed == b.seed


def test_reset_restarts_sequences():
    streams = RandomStreams(seed=9)
    first = streams.get("s").random(5)
    streams.reset()
    again = streams.get("s").random(5)
    assert np.allclose(first, again)
