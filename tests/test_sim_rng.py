"""Tests for named random streams."""

import numpy as np

from repro.sim.rng import RandomStreams, derive_seed, spawn_rng


def test_same_seed_same_stream():
    a = spawn_rng(7, "pow")
    b = spawn_rng(7, "pow")
    assert np.allclose(a.random(100), b.random(100))


def test_different_names_differ():
    a = spawn_rng(7, "pow")
    b = spawn_rng(7, "pbft")
    assert not np.allclose(a.random(100), b.random(100))


def test_different_seeds_differ():
    a = spawn_rng(7, "pow")
    b = spawn_rng(8, "pow")
    assert not np.allclose(a.random(100), b.random(100))


def test_derive_seed_stable_and_64bit():
    seed = derive_seed(42, "stream")
    assert seed == derive_seed(42, "stream")
    assert 0 <= seed < 2**64


def test_registry_caches_streams():
    streams = RandomStreams(seed=3)
    assert streams.get("x") is streams.get("x")


def test_registry_isolation_between_names():
    streams = RandomStreams(seed=3)
    first = streams.get("a").random(10)
    # Drawing from stream "b" must not perturb stream "a"'s continuation.
    streams.get("b").random(1000)
    fresh = RandomStreams(seed=3)
    fresh_first = fresh.get("a").random(10)
    assert np.allclose(first, fresh_first)


def test_fork_creates_independent_registry():
    parent = RandomStreams(seed=3)
    child = parent.fork("epoch-0")
    assert child.seed != parent.seed
    assert not np.allclose(parent.get("x").random(50), child.get("x").random(50))


def test_fork_is_deterministic():
    a = RandomStreams(seed=3).fork("epoch-0")
    b = RandomStreams(seed=3).fork("epoch-0")
    assert a.seed == b.seed


def test_reset_restarts_sequences():
    streams = RandomStreams(seed=9)
    first = streams.get("s").random(5)
    streams.reset()
    again = streams.get("s").random(5)
    assert np.allclose(first, again)
