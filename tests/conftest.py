"""Shared fixtures: small deterministic instances and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import EpochInstance, MVComConfig
from repro.data.workload import WorkloadConfig, generate_epoch_workload


@pytest.fixture
def tiny_config() -> MVComConfig:
    """Capacity small enough that scheduling is non-trivial for 6 shards."""
    return MVComConfig(alpha=1.5, capacity=5_000, n_min_fraction=0.3)


@pytest.fixture
def tiny_instance(tiny_config) -> EpochInstance:
    """Six shards with hand-picked sizes/latencies; n_min = 2."""
    return EpochInstance(
        tx_counts=[1_000, 2_000, 1_500, 800, 2_500, 1_200],
        latencies=[600.0, 700.0, 650.0, 900.0, 500.0, 820.0],
        config=tiny_config,
    )


@pytest.fixture
def small_workload():
    """A 30-committee trace-driven workload (24 arrive under N_max=80%)."""
    return generate_epoch_workload(
        WorkloadConfig(num_committees=30, capacity=25_000, alpha=1.5, seed=1234)
    )


@pytest.fixture
def small_instance(small_workload) -> EpochInstance:
    return small_workload.instance


def random_instance(
    num_shards: int,
    seed: int,
    alpha: float = 1.5,
    capacity: int | None = None,
) -> EpochInstance:
    """Helper used by many test modules (importable from conftest)."""
    rng = np.random.default_rng(seed)
    tx_counts = rng.integers(200, 3_000, size=num_shards)
    # Banded latencies, like the post-N_max arrival window of real epochs
    # (no extreme exponential tail inflating every age).
    latencies = rng.gamma(4.0, 150.0, size=num_shards)
    if capacity is None:
        capacity = int(tx_counts.sum() * 0.6)
    config = MVComConfig(alpha=alpha, capacity=capacity)
    return EpochInstance(tx_counts=tx_counts, latencies=latencies, config=config)
