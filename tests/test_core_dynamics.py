"""Tests for the dynamic event schedule."""

import pytest

from repro.core.dynamics import (
    CommitteeEvent,
    DynamicSchedule,
    EventKind,
    consecutive_join_schedule,
    fail_and_recover_schedule,
)


class TestEvents:
    def test_join_requires_features(self):
        with pytest.raises(ValueError):
            CommitteeEvent(iteration=1, kind=EventKind.JOIN, shard_id=1)
        with pytest.raises(ValueError):
            CommitteeEvent(iteration=1, kind=EventKind.JOIN, shard_id=1, tx_count=-5, latency=1.0)

    def test_leave_needs_no_features(self):
        event = CommitteeEvent(iteration=1, kind=EventKind.LEAVE, shard_id=1)
        assert event.tx_count is None

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            CommitteeEvent(iteration=-1, kind=EventKind.LEAVE, shard_id=1)


class TestSchedule:
    def _schedule(self):
        return DynamicSchedule(events=[
            CommitteeEvent(iteration=30, kind=EventKind.LEAVE, shard_id=2),
            CommitteeEvent(iteration=10, kind=EventKind.LEAVE, shard_id=1),
            CommitteeEvent(iteration=20, kind=EventKind.JOIN, shard_id=3, tx_count=5, latency=1.0),
        ])

    def test_events_sorted_by_iteration(self):
        schedule = self._schedule()
        assert [e.iteration for e in schedule] == [10, 20, 30]

    def test_due_pops_in_order(self):
        schedule = self._schedule()
        assert [e.shard_id for e in schedule.due(15)] == [1]
        assert [e.shard_id for e in schedule.due(25)] == [3]
        assert not schedule.exhausted
        assert [e.shard_id for e in schedule.due(100)] == [2]
        assert schedule.exhausted

    def test_due_returns_empty_before_first(self):
        schedule = self._schedule()
        assert schedule.due(5) == []
        assert schedule.next_iteration == 10

    def test_reset_replays(self):
        schedule = self._schedule()
        schedule.due(100)
        schedule.reset()
        assert len(schedule.due(100)) == 3

    def test_multiple_events_same_iteration(self):
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=5, kind=EventKind.LEAVE, shard_id=1),
            CommitteeEvent(iteration=5, kind=EventKind.LEAVE, shard_id=2),
        ])
        assert len(schedule.due(5)) == 2


class TestBuilders:
    def test_fail_and_recover(self):
        schedule = fail_and_recover_schedule(
            shard_id=4, tx_count=100, latency=10.0, fail_at=50, recover_at=120
        )
        kinds = [e.kind for e in schedule]
        assert kinds == [EventKind.LEAVE, EventKind.JOIN]
        assert schedule.events[1].tx_count == 100

    def test_recover_before_fail_rejected(self):
        with pytest.raises(ValueError):
            fail_and_recover_schedule(1, 1, 1.0, fail_at=100, recover_at=100)

    def test_consecutive_joins_spacing(self):
        schedule = consecutive_join_schedule(
            arrivals=[(1, 10, 1.0), (2, 20, 2.0), (3, 30, 3.0)],
            start_iteration=100,
            spacing=50,
        )
        assert [e.iteration for e in schedule] == [100, 150, 200]
        assert all(e.kind is EventKind.JOIN for e in schedule)

    def test_zero_spacing_rejected(self):
        with pytest.raises(ValueError):
            consecutive_join_schedule([(1, 10, 1.0)], start_iteration=0, spacing=0)
