"""Tests for the two-phase latency model."""

import numpy as np
import pytest

from repro.data.latency import (
    PAPER_CONSENSUS_MEAN_S,
    PAPER_FORMATION_MEAN_S,
    TwoPhaseLatencyModel,
    TwoPhaseSample,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestCalibration:
    def test_formation_mean_matches_paper(self, rng):
        model = TwoPhaseLatencyModel()
        samples = [model.sample_formation(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(PAPER_FORMATION_MEAN_S, rel=0.08)

    def test_consensus_mean_matches_paper(self, rng):
        model = TwoPhaseLatencyModel()
        samples = [model.sample_consensus(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(PAPER_CONSENSUS_MEAN_S, rel=0.08)

    def test_formation_is_heavy_tailed_exponential(self, rng):
        model = TwoPhaseLatencyModel()
        samples = np.array([model.sample_formation(rng) for _ in range(4000)])
        # Exponential: std == mean.
        assert np.std(samples) == pytest.approx(np.mean(samples), rel=0.15)

    def test_consensus_is_banded_not_exponential(self, rng):
        model = TwoPhaseLatencyModel()
        samples = np.array([model.sample_consensus(rng) for _ in range(4000)])
        # Gamma sum: much narrower than an exponential of the same mean.
        assert np.std(samples) < 0.6 * np.mean(samples)

    def test_formation_dominates_consensus(self, rng):
        """Fig. 2's headline: formation consumes the large portion."""
        model = TwoPhaseLatencyModel()
        samples = model.sample_many(rng, 500)
        mean_formation = np.mean([s.formation for s in samples])
        mean_consensus = np.mean([s.consensus for s in samples])
        assert mean_formation > 5 * mean_consensus


class TestApi:
    def test_sample_total_is_sum(self, rng):
        sample = TwoPhaseLatencyModel().sample(rng)
        assert sample.total == pytest.approx(sample.formation + sample.consensus)

    def test_sample_many_count(self, rng):
        assert len(TwoPhaseLatencyModel().sample_many(rng, 17)) == 17

    def test_sample_many_zero(self, rng):
        assert TwoPhaseLatencyModel().sample_many(rng, 0) == []

    def test_sample_many_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            TwoPhaseLatencyModel().sample_many(rng, -1)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            TwoPhaseSample(formation=-1.0, consensus=2.0)

    def test_invalid_model_params_rejected(self):
        with pytest.raises(ValueError):
            TwoPhaseLatencyModel(formation_mean=0)
        with pytest.raises(ValueError):
            TwoPhaseLatencyModel(consensus_mean=-5)
        with pytest.raises(ValueError):
            TwoPhaseLatencyModel(consensus_shape=0)

    def test_custom_means_scale(self, rng):
        model = TwoPhaseLatencyModel(formation_mean=100.0, consensus_mean=10.0)
        samples = model.sample_many(rng, 2000)
        assert np.mean([s.formation for s in samples]) == pytest.approx(100.0, rel=0.1)
        assert np.mean([s.consensus for s in samples]) == pytest.approx(10.0, rel=0.1)
