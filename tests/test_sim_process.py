"""Tests for generator-based processes."""

import pytest

from repro.sim.engine import Event, SimulationEngine, SimulationError
from repro.sim.process import Process, Timeout, WaitEvent, all_of, any_of


def test_process_runs_to_completion():
    engine = SimulationEngine()
    steps = []

    def worker():
        steps.append(("start", engine.now))
        yield Timeout(2.0)
        steps.append(("middle", engine.now))
        yield Timeout(3.0)
        steps.append(("end", engine.now))

    Process(engine, worker(), name="worker")
    engine.run()
    assert steps == [("start", 0.0), ("middle", 2.0), ("end", 5.0)]


def test_process_return_value_lands_on_done():
    engine = SimulationEngine()

    def worker():
        yield Timeout(1.0)
        return 99

    process = Process(engine, worker())
    engine.run()
    assert process.finished
    assert process.result == 99


def test_process_waits_for_event_payload():
    engine = SimulationEngine()
    gate = Event(name="gate")
    seen = []

    def waiter():
        payload = yield WaitEvent(gate)
        seen.append((payload, engine.now))

    Process(engine, waiter())
    engine.schedule(4.0, lambda: gate.fire(payload="go"))
    engine.run()
    assert seen == [("go", 4.0)]


def test_process_waits_for_subprocess():
    engine = SimulationEngine()
    order = []

    def child():
        yield Timeout(2.0)
        order.append("child-done")
        return "child-result"

    def parent():
        result = yield Process(engine, child(), name="child")
        order.append(("parent-saw", result))

    Process(engine, parent(), name="parent")
    engine.run()
    assert order == ["child-done", ("parent-saw", "child-result")]


def test_process_bad_yield_raises():
    engine = SimulationEngine()

    def worker():
        yield 42  # not a valid awaitable

    Process(engine, worker())
    with pytest.raises(SimulationError):
        engine.run()


def test_process_exception_surfaces_on_handle():
    engine = SimulationEngine()

    def worker():
        yield Timeout(1.0)
        raise ValueError("boom")

    process = Process(engine, worker())
    with pytest.raises(ValueError):
        engine.run()
    assert isinstance(process.failed, ValueError)


def test_process_can_yield_raw_event():
    engine = SimulationEngine()
    gate = Event()
    seen = []

    def worker():
        value = yield gate
        seen.append(value)

    Process(engine, worker())
    engine.schedule(1.0, lambda: gate.fire(payload=7))
    engine.run()
    assert seen == [7]


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        engine = SimulationEngine()
        events = [Event(name=f"e{i}") for i in range(3)]
        gate = all_of(engine, events)
        results = []
        gate.subscribe(lambda e: results.append((engine.now, e.payload)))
        for delay, event in zip([3.0, 1.0, 2.0], events):
            engine.schedule(delay, lambda ev=event, d=delay: ev.fire(payload=d))
        engine.run()
        assert results == [(3.0, [3.0, 1.0, 2.0])]

    def test_all_of_empty_fires_immediately(self):
        engine = SimulationEngine()
        gate = all_of(engine, [])
        engine.run()
        assert gate.fired

    def test_all_of_with_prefired_event(self):
        engine = SimulationEngine()
        done = Event()
        done.fire(payload="x")
        pending = Event()
        gate = all_of(engine, [done, pending])
        engine.schedule(1.0, lambda: pending.fire(payload="y"))
        engine.run()
        assert gate.fired
        assert gate.payload == ["x", "y"]

    def test_any_of_fires_on_first(self):
        engine = SimulationEngine()
        events = [Event(), Event()]
        gate = any_of(engine, events)
        results = []
        gate.subscribe(lambda e: results.append((engine.now, e.payload)))
        engine.schedule(2.0, lambda: events[0].fire(payload="slow"))
        engine.schedule(1.0, lambda: events[1].fire(payload="fast"))
        engine.run()
        assert results == [(1.0, "fast")]

    def test_any_of_with_prefired_event(self):
        engine = SimulationEngine()
        done = Event()
        done.fire(payload="already")
        gate = any_of(engine, [done, Event()])
        engine.run()
        assert gate.fired
        assert gate.payload == "already"
