"""End-to-end validation of the paper's theoretical claims on real workloads.

These tests tie the theory modules to trace-driven instances rather than
synthetic arrays: the Gibbs stationary distribution really is what the
designed chain converges to, Remark 1's loss bound holds on enumerated
epoch subproblems, and the NP-hardness reduction's knapsack structure is
present (a knapsack instance embeds exactly).
"""

import numpy as np
import pytest

from repro.core.exact import brute_force_optimum
from repro.core.logsumexp import approximation_loss_bound, expected_utility
from repro.core.markov import build_chain, empirical_mixing_time, enumerate_states, state_utility
from repro.core.problem import EpochInstance, MVComConfig
from repro.data.workload import WorkloadConfig, generate_epoch_workload

BETA = 0.001


@pytest.fixture(scope="module")
def trace_instance():
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=12, capacity=10_000, seed=55)
    )
    return workload.instance


class TestGibbsConvergenceOnTraceInstance:
    def test_long_run_occupancy_matches_gibbs(self, trace_instance):
        """Simulate the uniformised chain; time-average occupancy -> p*."""
        chain = build_chain(trace_instance, 3, beta=BETA)
        rate = float(np.max(-np.diag(chain.generator)))
        transition = np.eye(chain.num_states) + chain.generator / rate
        occupancy = np.zeros(chain.num_states)
        state = 0
        rng = np.random.default_rng(0)
        steps = 60_000
        for _ in range(steps):
            state = rng.choice(chain.num_states, p=transition[state])
            occupancy[state] += 1
        occupancy /= steps
        gibbs = chain.stationary()
        assert 0.5 * np.abs(occupancy - gibbs).sum() < 0.05

    def test_mixing_time_finite_on_trace_instance(self, trace_instance):
        chain = build_chain(trace_instance, 3, beta=BETA)
        assert empirical_mixing_time(chain, 0.1) > 0


class TestRemark1OnEpochSubproblem:
    def test_loss_bound_holds_per_cardinality(self, trace_instance):
        for cardinality in (2, 3, 4):
            states = enumerate_states(trace_instance, cardinality)
            if not states:
                continue
            utilities = [state_utility(trace_instance, s) for s in states]
            gap = max(utilities) - expected_utility(BETA, utilities)
            assert gap <= approximation_loss_bound(BETA, len(utilities)) + 1e-9


class TestNpHardnessReduction:
    def test_knapsack_embeds_in_mvcom(self):
        """Section III-C: BKP maps to a 1-epoch MVCom with N_min = 0.

        Build a knapsack (values p_k, weights w_k), embed it by choosing
        latencies so that alpha*s_k - (t - l_k) = p_k, and check the MVCom
        optimum equals the knapsack optimum.
        """
        weights = np.array([12, 7, 11, 8, 9])
        values = np.array([24.0, 13.0, 23.0, 15.0, 16.0])
        capacity = 26
        # Pick alpha with alpha*w_k >= p_k so every embedded latency sits
        # below the DDL t (the reduction's reconstruction, Section III-C).
        alpha = 3.0
        t = 100.0
        latencies = t - (alpha * weights - values)
        assert (latencies <= t).all()
        config = MVComConfig(alpha=alpha, capacity=capacity, n_min_fraction=0.0)
        instance = EpochInstance(weights, latencies, config, ddl=t)

        # Brute-force the raw knapsack.
        best = 0.0
        for mask in range(1 << 5):
            picked = [k for k in range(5) if mask >> k & 1]
            if weights[picked].sum() <= capacity:
                best = max(best, float(values[picked].sum()))

        mvcom = brute_force_optimum(instance)
        # The embedded values differ by the (t - l_k) shift construction:
        # alpha*s_k - (t - l_k) = p_k exactly, so optima coincide.
        assert mvcom.utility == pytest.approx(best)
