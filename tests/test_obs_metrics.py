"""Quantile sketch accuracy, aggregator keying, and the trace-diff engine."""

import json
import math

import numpy as np
import pytest

from repro.harness.tracing import traced_solve
from repro.obs.metrics import (
    AGGREGATE_FORMAT,
    DEFAULT_DIFF_EXCLUDE,
    LogHistogram,
    MetricsAggregator,
    diff_snapshots,
    load_aggregate,
    series_key,
)
from repro.obs.telemetry import Telemetry


# ---------------------------------------------------------------------- #
# LogHistogram: bounded relative error, merge associativity, round-trip
# ---------------------------------------------------------------------- #
class TestLogHistogram:
    RA = 0.01

    @pytest.mark.parametrize(
        "sample",
        [
            np.random.default_rng(0).lognormal(mean=1.0, sigma=1.2, size=5000),
            np.random.default_rng(1).uniform(0.001, 50.0, size=4000),
            np.random.default_rng(2).exponential(scale=3.0, size=3000),
        ],
        ids=["lognormal", "uniform", "exponential"],
    )
    def test_quantiles_track_numpy_within_relative_accuracy(self, sample):
        sketch = LogHistogram(relative_accuracy=self.RA)
        for value in sample:
            sketch.add(float(value))
        for q in (0.50, 0.90, 0.99):
            exact = float(np.percentile(sample, 100 * q))
            estimate = sketch.quantile(q)
            # Bin midpoints guarantee |est - exact| <= ra * exact for the
            # value the rank lands on; 2.5x covers rank-interpolation slack
            # (numpy interpolates between order statistics, the sketch
            # returns a bin representative).
            assert abs(estimate - exact) <= 2.5 * self.RA * exact, (
                f"q={q}: sketch {estimate} vs numpy {exact}"
            )

    def test_zero_and_negative_values_stay_sign_exact(self):
        sketch = LogHistogram()
        for value in (-4.0, -2.0, 0.0, 0.0, 1.0, 3.0):
            sketch.add(value)
        assert sketch.quantile(0.0) == -4.0  # exact at the minimum
        assert sketch.quantile(0.5) == 0.0  # zero bucket is exact
        assert sketch.quantile(1.0) <= sketch.maximum
        assert sketch.minimum == -4.0 and sketch.maximum == 3.0
        assert sketch.zero_count == 2

    def test_merge_is_associative_on_bins_and_quantiles(self):
        rng = np.random.default_rng(7)
        chunks = [rng.lognormal(size=500) for _ in range(3)]

        def build(values):
            sketch = LogHistogram()
            for value in values:
                sketch.add(float(value))
            return sketch

        left = build(chunks[0])
        left.merge(build(chunks[1]))
        left.merge(build(chunks[2]))  # (a + b) + c

        tail = build(chunks[1])
        tail.merge(build(chunks[2]))
        right = build(chunks[0])
        right.merge(tail)  # a + (b + c)

        # Bin counts are integers, so the merged *structure* is exactly
        # order-independent; only the float totals carry summation order.
        left_state, right_state = left.to_dict(), right.to_dict()
        assert left_state["bins"] == right_state["bins"]
        assert left_state["neg_bins"] == right_state["neg_bins"]
        assert left_state["count"] == right_state["count"]
        for q in (0.5, 0.9, 0.99):
            assert left.quantile(q) == right.quantile(q)
        assert left.total == pytest.approx(right.total, rel=1e-12)

    def test_merge_matches_single_sketch(self):
        values = list(np.random.default_rng(3).exponential(size=800))
        whole = LogHistogram()
        for value in values:
            whole.add(value)
        half_a, half_b = LogHistogram(), LogHistogram()
        for value in values[:400]:
            half_a.add(value)
        for value in values[400:]:
            half_b.add(value)
        half_a.merge(half_b)
        assert half_a.to_dict()["bins"] == whole.to_dict()["bins"]
        assert half_a.quantile(0.99) == whole.quantile(0.99)

    def test_round_trip_preserves_quantiles(self):
        sketch = LogHistogram()
        for value in (0.5, 1.5, 2.5, -1.0, 0.0):
            sketch.add(value)
        clone = LogHistogram.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_guards(self):
        with pytest.raises(ValueError):
            LogHistogram(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            LogHistogram().quantile(0.5)  # empty
        with pytest.raises(ValueError):
            sketch = LogHistogram()
            sketch.add(1.0)
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            LogHistogram(relative_accuracy=0.01).merge(LogHistogram(relative_accuracy=0.02))


# ---------------------------------------------------------------------- #
# MetricsAggregator: keying, tags, rates, windows, snapshots
# ---------------------------------------------------------------------- #
def _hist(name, value, t, **fields):
    record = {"t": t, "type": "hist", "name": name, "value": value}
    record.update(fields)
    return record


class TestMetricsAggregator:
    def test_tagged_series_also_fold_into_untagged_parent(self):
        aggregator = MetricsAggregator()
        aggregator.consume(
            [
                _hist("chain.mempool.age_s", 1.0, 0, epoch=0),
                _hist("chain.mempool.age_s", 3.0, 1, epoch=1),
            ]
        )
        parent = aggregator.series("hist", "chain.mempool.age_s")
        assert parent.count == 2
        assert aggregator.series("hist", "chain.mempool.age_s", "epoch=0").count == 1
        assert aggregator.series("hist", "chain.mempool.age_s", "epoch=1").count == 1

    def test_span_records_feed_dt_sketch_and_lazy_wall_series(self):
        aggregator = MetricsAggregator()
        aggregator.emit(
            {"t": 5.0, "type": "span", "name": "chain.pbft.round",
             "t0": 0.0, "t1": 5.0, "dt": 5.0, "tag": "epoch0-committee1"}
        )
        span = aggregator.series("span", "chain.pbft.round", "tag=epoch0-committee1")
        assert span.sketch.count == 1
        assert span.stats()["p50"] == pytest.approx(5.0, rel=0.02)
        # No wall_dt anywhere in the stream -> no span.wall series at all.
        assert aggregator.series("span.wall", "chain.pbft.round") is None
        aggregator.emit(
            {"t": 6.0, "type": "span", "name": "chain.pbft.round",
             "t0": 5.0, "t1": 6.0, "dt": 1.0, "wall_dt": 0.002,
             "tag": "epoch0-committee1"}
        )
        wall = aggregator.series("span.wall", "chain.pbft.round")
        assert wall is not None and wall.count == 1

    def test_counter_rate_uses_increment_total_over_t(self):
        aggregator = MetricsAggregator()
        for t in range(11):  # 11 increments of 2 across t = 0..10
            aggregator.emit({"t": t, "type": "counter", "name": "se.reset_broadcasts",
                             "inc": 2, "total": 2 * (t + 1)})
        series = aggregator.series("counter", "se.reset_broadcasts")
        assert series.total == 22.0
        assert series.rate == pytest.approx(2.2)  # 22 increments / 10 t-units
        assert series.stats()["total"] == 22.0

    def test_gauge_keeps_last_value_and_window_mean(self):
        aggregator = MetricsAggregator(window=2)
        for t, value in enumerate((1.0, 2.0, 9.0)):
            aggregator.emit({"t": t, "type": "gauge", "name": "g", "value": value})
        stats = aggregator.series("gauge", "g").stats()
        assert stats["last"] == 9.0
        assert stats["window_mean"] == pytest.approx((2.0 + 9.0) / 2)

    def test_event_fields_become_field_series(self):
        aggregator = MetricsAggregator()
        aggregator.consume(
            [
                {"t": 0, "type": "event", "name": "se.round",
                 "best_utility": 10.0, "current_utility": 8.0, "transitions": 3},
                {"t": 1, "type": "event", "name": "se.round",
                 "best_utility": 12.0, "current_utility": 11.0, "transitions": 1},
            ]
        )
        assert aggregator.series("event", "se.round").count == 2
        best = aggregator.series("field", "se.round.best_utility")
        assert best.count == 2
        assert best.sketch.total == pytest.approx(22.0)
        # Non-numeric / bool field values never reach a sketch.
        aggregator.emit({"t": 2, "type": "event", "name": "se.round",
                         "best_utility": True})
        assert best.count == 2

    def test_snapshot_is_sorted_and_byte_stable(self, tmp_path):
        aggregator = MetricsAggregator()
        aggregator.consume([_hist("b", 1.0, 0), _hist("a", 2.0, 1, epoch=3)])
        snapshot = aggregator.snapshot()
        assert snapshot["format"] == AGGREGATE_FORMAT
        assert list(snapshot["series"]) == sorted(snapshot["series"])
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        aggregator.write_snapshot(path_a)
        aggregator.write_snapshot(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_sink_protocol_on_a_live_hub(self):
        aggregator = MetricsAggregator()
        hub = Telemetry(sinks=[aggregator])
        hub.observe("x", 1.5)
        hub.count("c")
        hub.close()
        assert aggregator.records == 2
        assert aggregator.series("hist", "x").count == 1
        assert aggregator.series("counter", "c").total == 1.0

    def test_series_key_and_find_series(self):
        assert series_key("hist", "x") == "hist|x"
        assert series_key("hist", "x", "epoch=1") == "hist|x|epoch=1"
        aggregator = MetricsAggregator()
        aggregator.consume([_hist("x", 1.0, 0, epoch=1), _hist("x", 2.0, 1, epoch=2)])
        found = aggregator.find_series("x")
        assert [series.tag for series in found] == ["", "epoch=1", "epoch=2"]
        assert [series.tag for series in aggregator.find_series("x", "epoch=2")] == ["epoch=2"]


# ---------------------------------------------------------------------- #
# acceptance: aggregated p50/p99 of a traced 100-committee solve match a
# numpy recomputation from the raw records within the sketch error bound
# ---------------------------------------------------------------------- #
class TestTracedSolveAcceptance:
    @pytest.fixture(scope="class")
    def run_and_aggregate(self):
        run = traced_solve(
            num_committees=100, gamma=10, seed=0,
            max_iterations=400, convergence_window=200,
        )
        aggregator = MetricsAggregator().consume(iter(run.records))
        return run, aggregator

    def test_field_series_quantiles_match_numpy(self, run_and_aggregate):
        run, aggregator = run_and_aggregate
        raw = np.array(
            [r["best_utility"] for r in run.records if r.get("name") == "se.round"]
        )
        assert len(raw) == run.result.iterations
        series = aggregator.series("field", "se.round.best_utility")
        assert series.count == len(raw)
        ra = aggregator.relative_accuracy
        for q, stat in ((0.50, "p50"), (0.99, "p99")):
            exact = float(np.percentile(raw, 100 * q))
            assert abs(series.stats()[stat] - exact) <= 2.5 * ra * abs(exact)

    def test_span_series_cover_every_layer(self, run_and_aggregate):
        _, aggregator = run_and_aggregate
        spans = {series.name for series in aggregator.find_series("chain.pbft.round")}
        assert "chain.pbft.round" in spans
        assert aggregator.series("span", "harness.se_solve").count == 1
        assert aggregator.series("event", "se.transition").count > 0


# ---------------------------------------------------------------------- #
# diff engine
# ---------------------------------------------------------------------- #
def _snapshot(records):
    return MetricsAggregator().consume(records).snapshot()


class TestDiffSnapshots:
    BASE = [_hist("m", 1.0, 0), _hist("m", 2.0, 1)]

    def test_identical_snapshots_have_zero_deltas(self):
        rows, breaches = diff_snapshots(_snapshot(self.BASE), _snapshot(self.BASE))
        assert rows and not breaches
        assert all(row["delta_pct"] == 0.0 for row in rows)

    def test_value_shift_breaches_zero_threshold_not_loose_one(self):
        candidate = [_hist("m", 1.0, 0), _hist("m", 2.02, 1)]
        _, strict = diff_snapshots(_snapshot(self.BASE), _snapshot(candidate))
        assert strict
        _, loose = diff_snapshots(
            _snapshot(self.BASE), _snapshot(candidate), threshold=5.0
        )
        assert not loose

    def test_missing_series_is_always_a_breach(self):
        candidate = self.BASE + [_hist("extra", 1.0, 2)]
        _, breaches = diff_snapshots(
            _snapshot(self.BASE), _snapshot(candidate), threshold=100.0
        )
        assert any(
            row["stat"] == "presence" and row["delta_pct"] == math.inf
            for row in breaches
        )

    def test_wall_and_resource_series_are_excluded_by_default(self):
        noisy = self.BASE + [
            {"t": 2, "type": "span", "name": "s", "t0": 0, "t1": 2, "dt": 2.0,
             "wall_dt": 0.5},
            {"t": 3, "type": "gauge", "name": "obs.resources.peak_rss_kib",
             "value": 4096.0},
            {"t": 4, "type": "event", "name": "profile.hotspots"},
        ]
        perturbed = self.BASE + [
            {"t": 2, "type": "span", "name": "s", "t0": 0, "t1": 2, "dt": 2.0,
             "wall_dt": 0.9},
            {"t": 3, "type": "gauge", "name": "obs.resources.peak_rss_kib",
             "value": 9999.0},
            {"t": 4, "type": "event", "name": "profile.hotspots"},
        ]
        rows, breaches = diff_snapshots(_snapshot(noisy), _snapshot(perturbed))
        assert not breaches  # machine-dependent series skipped
        assert not any(row["series"].startswith("span.wall") for row in rows)
        _, wall_breaches = diff_snapshots(
            _snapshot(noisy), _snapshot(perturbed), include_wall=True
        )
        assert any(row["series"].startswith("span.wall") for row in wall_breaches)
        assert DEFAULT_DIFF_EXCLUDE == ("obs.resources", "profile.")


class TestLoadAggregate:
    def test_jsonl_and_snapshot_paths_agree(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        with open(trace, "w") as handle:
            for record in self_records():
                handle.write(json.dumps(record) + "\n")
        aggregator = MetricsAggregator.from_jsonl(trace)
        snapshot_path = tmp_path / "agg.json"
        aggregator.write_snapshot(snapshot_path)
        assert load_aggregate(snapshot_path) == load_aggregate(trace)

    def test_non_aggregate_json_falls_back_to_jsonl_parse(self, tmp_path):
        # A JSONL trace with a .json suffix still streams correctly.
        path = tmp_path / "trace.json"
        with open(path, "w") as handle:
            for record in self_records():
                handle.write(json.dumps(record) + "\n")
        assert load_aggregate(path)["records"] == len(self_records())


def self_records():
    return [_hist("m", 1.0, 0), _hist("m", 2.0, 1),
            {"t": 2, "type": "counter", "name": "c", "inc": 1, "total": 1}]
