"""Cross-module integration tests: trace -> workload -> schedulers -> chain."""

import numpy as np
import pytest

from repro import (
    SEConfig,
    StochasticExploration,
    WorkloadConfig,
    generate_epoch_workload,
    summarize_schedule,
)
from repro.baselines import SimulatedAnnealingScheduler
from repro.chain import ChainParams, ElasticoSimulation
from repro.chain.final import take_everything
from repro.core import MVComConfig
from repro.core.exact import branch_and_bound_optimum
from repro.core.problem import build_instance, carry_over_latency
from repro.data.workload import arrived_shards


class TestEndToEndScheduling:
    def test_se_beats_unscheduled_elastico(self):
        """The paper's premise: scheduling beats taking shards in arrival order."""
        wins = 0
        for seed in (1, 2, 3):
            workload = generate_epoch_workload(
                WorkloadConfig(num_committees=60, capacity=55_000, seed=seed)
            )
            instance = workload.instance
            se = StochasticExploration(
                SEConfig(num_threads=5, max_iterations=3_000, convergence_window=800, seed=seed)
            ).solve(instance)
            naive = instance.utility(take_everything(instance))
            if se.best_utility > naive:
                wins += 1
        assert wins == 3

    def test_se_certified_against_exact_on_workload(self):
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=20, capacity=18_000, seed=4)
        )
        instance = workload.instance
        optimum = branch_and_bound_optimum(instance)
        se = StochasticExploration(
            SEConfig(num_threads=8, max_iterations=4_000, convergence_window=1_200, seed=2)
        ).solve(instance)
        assert se.best_utility >= 0.98 * optimum.utility

    def test_summary_consistent_across_algorithms(self):
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=30, capacity=25_000, seed=5)
        )
        instance = workload.instance
        sa = SimulatedAnnealingScheduler(seed=1).solve(instance, 1_000)
        summary = summarize_schedule(instance, sa.mask, "SA")
        assert summary.utility == pytest.approx(sa.utility)
        assert summary.throughput_txs == sa.weight


class TestChainWithSeScheduler:
    def test_full_protocol_with_se_final_committee(self):
        def scheduler(instance):
            result = StochasticExploration(
                SEConfig(num_threads=3, max_iterations=800, convergence_window=300, seed=6)
            ).solve(instance)
            return result.best_mask

        simulation = ElasticoSimulation(
            ChainParams(num_nodes=160, committee_size=8, seed=11),
            mvcom_config=MVComConfig(alpha=1.5, capacity=12_000),
            scheduler=scheduler,
        )
        outcome = simulation.run_epoch()
        assert outcome.final is not None
        assert outcome.final.permitted_txs <= 12_000
        assert simulation.chain.verify()

    def test_shard_blocks_feed_core_problem_directly(self):
        simulation = ElasticoSimulation(ChainParams(num_nodes=160, committee_size=8, seed=12))
        outcome = simulation.run_epoch()
        instance = build_instance(outcome.shard_blocks, MVComConfig(alpha=1.5, capacity=10_000))
        assert instance.num_shards == len(outcome.shard_blocks)
        assert instance.ddl == pytest.approx(
            max(block.two_phase_latency for block in outcome.shard_blocks)
        )


class TestMultiEpochCarryOver:
    def test_refused_committees_get_faster_next_epoch(self):
        """Fig. 3's cross-epoch rule lowers refused committees' latencies."""
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=40, capacity=30_000, seed=6)
        )
        window = arrived_shards(workload.shards, 0.8)
        refused = [s for s in workload.shards if s not in window]
        assert refused  # the 20% stragglers
        ddl = workload.instance.ddl
        for shard in refused:
            carried = carry_over_latency(shard.latency, ddl)
            assert carried < shard.latency
            assert carried >= 1.0
