"""Tests for chain parameters, nodes, and the network model."""

import numpy as np
import pytest

from repro.chain.network import Network
from repro.chain.node import Node, spawn_nodes
from repro.chain.params import ChainParams, NetworkParams
from repro.sim.engine import SimulationEngine


class TestParams:
    def test_defaults_valid(self):
        params = ChainParams()
        assert params.num_committees == params.num_nodes // params.committee_size
        assert params.max_byzantine_per_committee == (params.committee_size - 1) // 3

    @pytest.mark.parametrize("kwargs", [
        {"num_nodes": 3, "committee_size": 8},
        {"committee_size": 3},
        {"byzantine_fraction": 0.34},
        {"byzantine_fraction": -0.1},
        {"pow_mean_solve_s": 0},
        {"identity_registration_rate": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChainParams(**kwargs)

    def test_network_params_validation(self):
        with pytest.raises(ValueError):
            NetworkParams(base_delay=0)
        with pytest.raises(ValueError):
            NetworkParams(jitter_sigma=-1)
        with pytest.raises(ValueError):
            NetworkParams(bandwidth_msgs_per_s=0)


class TestNodes:
    def test_spawn_count_and_byzantine_fraction(self):
        rng = np.random.default_rng(0)
        nodes = spawn_nodes(100, byzantine_fraction=0.2, rng=rng)
        assert len(nodes) == 100
        assert sum(1 for n in nodes if not n.honest) == 20

    def test_heterogeneous_hash_power(self):
        rng = np.random.default_rng(0)
        nodes = spawn_nodes(200, byzantine_fraction=0.0, rng=rng)
        powers = [n.hash_power for n in nodes]
        assert np.std(powers) > 0.1
        assert np.mean(powers) == pytest.approx(1.0, rel=0.15)

    def test_invalid_node_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id=0, hash_power=0.0)
        with pytest.raises(ValueError):
            Node(node_id=0, hash_power=1.0, verify_speed=0.0)

    def test_spawn_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            spawn_nodes(0, 0.1, rng)
        with pytest.raises(ValueError):
            spawn_nodes(10, 1.0, rng)


class TestNetwork:
    def _network(self):
        engine = SimulationEngine()
        network = Network(engine, NetworkParams(base_delay=1.0, jitter_sigma=0.1),
                          np.random.default_rng(0))
        return engine, network

    def test_message_delivered_to_handler(self):
        engine, network = self._network()
        received = []
        network.register(1, lambda m: received.append(m))
        network.register(2, lambda m: None)
        network.send(2, 1, "ping", payload="hello")
        engine.run()
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert received[0].kind == "ping"

    def test_delivery_takes_positive_time(self):
        engine, network = self._network()
        times = []
        network.register(1, lambda m: times.append(engine.now))
        network.register(2, lambda m: None)
        network.send(2, 1, "ping")
        engine.run()
        assert times[0] > 0.0

    def test_unknown_recipient_rejected(self):
        _, network = self._network()
        network.register(1, lambda m: None)
        with pytest.raises(KeyError):
            network.send(1, 99, "ping")

    def test_duplicate_registration_rejected(self):
        _, network = self._network()
        network.register(1, lambda m: None)
        with pytest.raises(ValueError):
            network.register(1, lambda m: None)

    def test_broadcast_excludes_sender(self):
        engine, network = self._network()
        received = {i: [] for i in range(4)}
        for i in range(4):
            network.register(i, lambda m, i=i: received[i].append(m))
        network.broadcast(0, range(4), "vote")
        engine.run()
        assert len(received[0]) == 0
        assert all(len(received[i]) == 1 for i in (1, 2, 3))

    def test_sender_nic_serialises_bursts(self):
        """A large fan-out from one sender must take longer than a single send."""
        engine, network = self._network()
        times = []
        for i in range(101):
            network.register(i, lambda m: times.append(engine.now))
        network.broadcast(0, range(1, 101), "blast")
        engine.run()
        # 100 messages at 500 msg/s serialise over >= 0.2 s before jitter.
        assert max(times) - min(times) > 0.1

    def test_message_counter(self):
        engine, network = self._network()
        network.register(1, lambda m: None)
        network.register(2, lambda m: None)
        network.send(1, 2, "a")
        network.send(2, 1, "b")
        assert network.messages_sent == 2
