"""Tests for the generic sweep utilities."""

import pytest

from repro.core.se import SEConfig
from repro.data.workload import WorkloadConfig
from repro.harness.sweeps import best_row, grid_sweep, parameter_grid


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = parameter_grid({"a": [1, 2], "b": ["x", "y"]})
        assert len(grid) == 4
        assert {"a": 2, "b": "y"} in grid

    def test_empty_axes_single_point(self):
        assert parameter_grid({}) == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            parameter_grid({"a": []})

    def test_order_stable(self):
        grid = parameter_grid({"a": [1, 2], "b": [10, 20]})
        assert grid[0] == {"a": 1, "b": 10}
        assert grid[1] == {"a": 1, "b": 20}


class TestGridSweep:
    BASE_WORKLOAD = WorkloadConfig(num_committees=20, capacity=16_000, seed=2)
    BASE_SE = SEConfig(num_threads=2, max_iterations=400, convergence_window=200, seed=1)

    def test_rows_per_combination(self):
        rows = grid_sweep(
            self.BASE_WORKLOAD,
            workload_axes={"alpha": [1.5, 5.0]},
            se_axes={"num_threads": [1, 3]},
            base_se=self.BASE_SE,
        )
        assert len(rows) == 4
        assert all("utility" in row and "alpha" in row and "num_threads" in row for row in rows)

    def test_alpha_sweep_monotone(self):
        rows = grid_sweep(
            self.BASE_WORKLOAD,
            workload_axes={"alpha": [1.5, 10.0]},
            base_se=self.BASE_SE,
        )
        assert rows[1]["utility"] > rows[0]["utility"]

    def test_extra_metrics_merged(self):
        rows = grid_sweep(
            self.BASE_WORKLOAD,
            base_se=self.BASE_SE,
            extra_metrics=lambda instance, result: {"n_shards": instance.num_shards},
        )
        assert rows[0]["n_shards"] == 16

    def test_best_row(self):
        rows = [{"utility": 1.0}, {"utility": 5.0}, {"utility": 3.0}]
        assert best_row(rows)["utility"] == 5.0
        with pytest.raises(ValueError):
            best_row([])
