"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationEngine, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("b"))
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.schedule(3.0, lambda: seen.append("c"))
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(1.5, lambda: times.append(engine.now))
        engine.schedule(4.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.5, 4.0]

    def test_ties_fire_in_schedule_order(self):
        engine = SimulationEngine()
        seen = []
        for tag in range(5):
            engine.schedule(1.0, lambda t=tag: seen.append(t))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule(-0.1, lambda: None)

    def test_zero_delay_allowed(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(0.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.0]

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine(start_time=10.0)
        times = []
        engine.schedule_at(12.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [12.0]

    def test_nested_scheduling_from_callback(self):
        engine = SimulationEngine()
        seen = []

        def first():
            seen.append(("first", engine.now))
            engine.schedule(1.0, lambda: seen.append(("second", engine.now)))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == [("first", 1.0), ("second", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        seen = []
        handle = engine.schedule(1.0, lambda: seen.append("x"))
        engine.cancel(handle)
        engine.run()
        assert seen == []

    def test_cancel_unknown_handle_is_noop(self):
        engine = SimulationEngine()
        engine.cancel(12345)
        engine.run()

    def test_cancel_one_of_many(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append("keep1"))
        handle = engine.schedule(2.0, lambda: seen.append("drop"))
        engine.schedule(3.0, lambda: seen.append("keep2"))
        engine.cancel(handle)
        engine.run()
        assert seen == ["keep1", "keep2"]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(5.0, lambda: seen.append(5))
        engine.run(until=3.0)
        assert seen == [1]
        assert engine.now == 3.0
        engine.run()
        assert seen == [1, 5]

    def test_max_events_bounds_execution(self):
        engine = SimulationEngine()
        seen = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: seen.append(i))
        engine.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_step_executes_single_event(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.schedule(2.0, lambda: seen.append("b"))
        assert engine.step() is True
        assert seen == ["a"]

    def test_processed_counter(self):
        engine = SimulationEngine()
        for i in range(4):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.processed == 4

    def test_advance_to_moves_idle_clock(self):
        engine = SimulationEngine()
        engine.advance_to(100.0)
        assert engine.now == 100.0

    def test_advance_to_cannot_go_backwards(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.advance_to(5.0)

    def test_advance_to_cannot_skip_pending(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.advance_to(2.0)


class TestEvent:
    def test_fire_delivers_payload(self):
        event = Event(name="e")
        payloads = []
        event.subscribe(lambda e: payloads.append(e.payload))
        event.fire(payload=42)
        assert payloads == [42]

    def test_double_fire_rejected(self):
        event = Event()
        event.fire()
        with pytest.raises(SimulationError):
            event.fire()

    def test_late_subscriber_runs_immediately(self):
        event = Event()
        event.fire(payload="done")
        seen = []
        event.subscribe(lambda e: seen.append(e.payload))
        assert seen == ["done"]

    def test_multiple_subscribers_all_run(self):
        event = Event()
        seen = []
        for i in range(3):
            event.subscribe(lambda e, i=i: seen.append(i))
        event.fire()
        assert sorted(seen) == [0, 1, 2]
