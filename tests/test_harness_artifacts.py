"""Tests for experiment artifacts."""

import json

import numpy as np
import pytest

from repro.harness.artifacts import build_manifest, read_artifact, write_artifact
from repro.harness.presets import PRESETS


class TestManifest:
    def test_contains_provenance(self):
        manifest = build_manifest()
        assert manifest["repro_version"] == "1.0.0"
        assert "python" in manifest and "numpy" in manifest
        assert manifest["written_at_unix"] > 0

    def test_preset_embedded(self):
        manifest = build_manifest(PRESETS["fig08"])
        assert manifest["preset"]["num_committees"] == 500
        assert tuple(manifest["preset"]["extras"]["gammas"]) == (1, 5, 10, 25)

    def test_extra_fields_merged(self):
        manifest = build_manifest(note="hello")
        assert manifest["note"] == "hello"

    def test_injectable_clock_stamps_deterministically(self):
        manifest = build_manifest(clock=lambda: 1_700_000_000.9)
        assert manifest["written_at_unix"] == 1_700_000_000

    def test_default_clock_is_wall_clock(self):
        import time

        before = int(time.time())
        manifest = build_manifest()
        assert before <= manifest["written_at_unix"] <= int(time.time())


class TestRoundTrip:
    def test_write_and_read(self, tmp_path):
        result = {"rows": [{"x": 1}], "trace": np.array([1.0, 2.0])}
        path = write_artifact("unit", result, results_dir=str(tmp_path))
        loaded = read_artifact(path)
        assert loaded["experiment"] == "unit"
        assert loaded["result"]["rows"] == [{"x": 1}]
        assert loaded["result"]["trace"] == [1.0, 2.0]

    def test_numpy_scalars_serialised(self, tmp_path):
        result = {"i": np.int64(5), "f": np.float64(2.5), "b": np.bool_(True)}
        path = write_artifact("np", result, results_dir=str(tmp_path))
        loaded = read_artifact(path)["result"]
        assert loaded == {"i": 5, "f": 2.5, "b": True}

    def test_non_artifact_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            read_artifact(str(path))

    def test_human_readable_json(self, tmp_path):
        path = write_artifact("pretty", {"a": 1}, results_dir=str(tmp_path))
        text = open(path).read()
        assert text.count("\n") > 3  # indented

    def test_fixed_clock_makes_artifacts_byte_stable(self, tmp_path):
        clock = lambda: 1_700_000_000.0  # noqa: E731
        result = {"rows": [{"x": 1}], "trace": np.array([1.0, 2.0])}
        path_a = write_artifact("stable", result, results_dir=str(tmp_path / "a"), clock=clock)
        path_b = write_artifact("stable", result, results_dir=str(tmp_path / "b"), clock=clock)
        assert open(path_a, "rb").read() == open(path_b, "rb").read()
