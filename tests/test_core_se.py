"""Tests for the Stochastic-Exploration algorithm (static epochs)."""

import numpy as np
import pytest

from repro.core.exact import branch_and_bound_optimum
from repro.core.problem import EpochInstance, MVComConfig
from repro.core.se import InfeasibleEpochError, SEConfig, StochasticExploration

from tests.conftest import random_instance


def solve(instance, **kwargs):
    defaults = dict(num_threads=5, max_iterations=2_000, convergence_window=600, seed=1)
    defaults.update(kwargs)
    return StochasticExploration(SEConfig(**defaults)).solve(instance)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"beta": 0}, {"num_threads": 0}, {"max_iterations": 0},
        {"pair_tries": 0}, {"init_tries": 0}, {"max_solution_threads": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SEConfig(**kwargs)

    def test_paper_defaults(self):
        config = SEConfig()
        assert config.beta == 2.0
        assert config.tau == 0.0


class TestFeasibility:
    def test_result_respects_capacity(self, small_instance):
        result = solve(small_instance)
        assert result.best_weight <= small_instance.capacity

    def test_result_respects_n_min(self, small_instance):
        result = solve(small_instance)
        assert result.best_count >= small_instance.n_min

    def test_mask_matches_aggregates(self, small_instance):
        result = solve(small_instance)
        assert small_instance.weight(result.best_mask) == result.best_weight
        assert small_instance.utility(result.best_mask) == pytest.approx(result.best_utility)

    def test_infeasible_epoch_raises(self):
        config = MVComConfig(alpha=1.5, capacity=5)
        instance = EpochInstance([100, 200], [1.0, 2.0], config)
        with pytest.raises(InfeasibleEpochError):
            solve(instance)


class TestQuality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_near_optimal_on_small_instances(self, seed):
        instance = random_instance(14, seed=seed)
        optimum = branch_and_bound_optimum(instance)
        result = solve(instance, num_threads=10, max_iterations=4_000, convergence_window=1_500)
        assert result.best_utility >= 0.97 * optimum.utility

    def test_never_worse_than_initial(self, small_instance):
        result = solve(small_instance)
        assert result.best_utility >= result.utility_trace[0]

    def test_trace_is_monotone_nondecreasing(self, small_instance):
        result = solve(small_instance)
        diffs = np.diff(result.utility_trace)
        assert (diffs >= -1e-9).all()

    def test_full_solution_considered_when_capacity_allows(self):
        """Alg. 1 line 25: f_{|I_j|} must win when everything fits and pays."""
        config = MVComConfig(alpha=10.0, capacity=10**9)
        instance = EpochInstance([1000] * 6, [10.0 * i for i in range(6)], config)
        result = solve(instance)
        assert result.best_count == 6


class TestGammaAndThreads:
    def test_one_thread_per_cardinality(self, small_instance):
        se = StochasticExploration(SEConfig(max_solution_threads=None))
        cardinalities = se.thread_cardinalities(small_instance)
        n_hi = small_instance.max_feasible_cardinality
        n_lo = min(small_instance.n_min, n_hi)
        assert cardinalities == list(range(max(1, n_lo), n_hi + 1))

    def test_subsampling_keeps_endpoints(self, small_instance):
        se = StochasticExploration(SEConfig(max_solution_threads=4))
        cardinalities = se.thread_cardinalities(small_instance)
        full = StochasticExploration(SEConfig(max_solution_threads=None)).thread_cardinalities(
            small_instance
        )
        assert len(cardinalities) <= 4
        assert cardinalities[0] == full[0]
        assert cardinalities[-1] == full[-1]

    def test_num_replicas_recorded(self, small_instance):
        result = solve(small_instance, num_threads=3)
        assert result.num_replicas == 3

    def test_more_replicas_never_hurt_much(self, small_instance):
        """Fig. 8's direction: Gamma=8 should match or beat Gamma=1."""
        low = solve(small_instance, num_threads=1, max_iterations=1_500, convergence_window=1_500)
        high = solve(small_instance, num_threads=8, max_iterations=1_500, convergence_window=1_500)
        assert high.best_utility >= 0.995 * low.best_utility


class TestDeterminism:
    def test_same_seed_reproduces(self, small_instance):
        a = solve(small_instance, seed=11)
        b = solve(small_instance, seed=11)
        assert a.best_utility == b.best_utility
        assert np.array_equal(a.best_mask, b.best_mask)
        assert np.array_equal(a.utility_trace, b.utility_trace)

    def test_different_seeds_explore_differently(self, small_instance):
        a = solve(small_instance, seed=11, max_iterations=300, convergence_window=300)
        b = solve(small_instance, seed=12, max_iterations=300, convergence_window=300)
        assert not np.array_equal(a.utility_trace, b.utility_trace)


class TestTraces:
    def test_trace_lengths_agree(self, small_instance):
        result = solve(small_instance)
        assert len(result.utility_trace) == len(result.current_trace)
        assert len(result.utility_trace) == len(result.virtual_time_trace)

    def test_virtual_time_is_monotone(self, small_instance):
        result = solve(small_instance)
        diffs = np.diff(result.virtual_time_trace)
        assert (diffs >= -1e-12).all()

    def test_current_never_exceeds_best(self, small_instance):
        result = solve(small_instance)
        assert (result.current_trace <= result.utility_trace + 1e-9).all()

    def test_converged_flag_set_on_plateau(self, small_instance):
        result = solve(small_instance, max_iterations=5_000, convergence_window=300)
        assert result.converged
        assert result.iterations < 5_000
