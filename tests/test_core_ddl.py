"""Tests for DDL policies."""

import numpy as np
import pytest

from repro.core.ddl import BudgetedAge, DdlDecision, FixedTimeout, PercentileArrival

LATENCIES = [100.0, 300.0, 200.0, 900.0, 500.0]
TX_COUNTS = [1_000, 800, 1_200, 2_000, 600]


class TestDecision:
    def test_validation(self):
        with pytest.raises(ValueError):
            DdlDecision(arrived_indices=(), ddl=1.0)
        with pytest.raises(ValueError):
            DdlDecision(arrived_indices=(0,), ddl=-1.0)


class TestPercentileArrival:
    def test_default_is_nmax(self):
        assert PercentileArrival().fraction == 0.8

    def test_admits_fastest_fraction(self):
        decision = PercentileArrival(fraction=0.6).decide(LATENCIES, TX_COUNTS)
        assert len(decision.arrived_indices) == 3
        assert set(decision.arrived_indices) == {0, 2, 1}  # latencies 100, 200, 300
        assert decision.ddl == 300.0

    def test_full_fraction_admits_all(self):
        decision = PercentileArrival(fraction=1.0).decide(LATENCIES, TX_COUNTS)
        assert len(decision.arrived_indices) == 5
        assert decision.ddl == 900.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PercentileArrival(fraction=0.0)
        with pytest.raises(ValueError):
            PercentileArrival().decide([], [])
        with pytest.raises(ValueError):
            PercentileArrival().decide([1.0], [1, 2])


class TestFixedTimeout:
    def test_admits_by_deadline(self):
        decision = FixedTimeout(timeout_s=350.0).decide(LATENCIES, TX_COUNTS)
        assert set(decision.arrived_indices) == {0, 1, 2}
        assert decision.ddl == 350.0

    def test_waits_for_at_least_one(self):
        decision = FixedTimeout(timeout_s=10.0).decide(LATENCIES, TX_COUNTS)
        assert decision.arrived_indices == (0,)
        assert decision.ddl == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedTimeout(timeout_s=0.0)


class TestBudgetedAge:
    def test_stops_before_expensive_straggler(self):
        # Waiting for index 3 (l=900) from 500 costs 400s x 4 waiting
        # committees = 1600 > alpha * 2000 = 3000? No: 1600 < 3000 -> admit.
        # With alpha = 0.5: gain 1000 < 1600 -> stop before it.
        decision = BudgetedAge(alpha=0.5).decide(LATENCIES, TX_COUNTS)
        assert 3 not in decision.arrived_indices
        generous = BudgetedAge(alpha=5.0).decide(LATENCIES, TX_COUNTS)
        assert 3 in generous.arrived_indices

    def test_larger_alpha_admits_weakly_more(self):
        small = BudgetedAge(alpha=0.2).decide(LATENCIES, TX_COUNTS)
        large = BudgetedAge(alpha=10.0).decide(LATENCIES, TX_COUNTS)
        assert set(small.arrived_indices) <= set(large.arrived_indices)

    def test_single_committee_input(self):
        decision = BudgetedAge().decide([42.0], [10])
        assert decision.arrived_indices == (0,)
        assert decision.ddl == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetedAge(alpha=0.0)


class TestPoliciesOnWorkload:
    def test_policies_give_different_windows(self):
        rng = np.random.default_rng(0)
        latencies = rng.gamma(4.0, 150.0, size=60).tolist()
        tx_counts = rng.integers(500, 2_500, size=60).tolist()
        nmax = PercentileArrival(0.8).decide(latencies, tx_counts)
        budget = BudgetedAge(alpha=1.5).decide(latencies, tx_counts)
        timeout = FixedTimeout(timeout_s=float(np.median(latencies))).decide(latencies, tx_counts)
        sizes = {len(nmax.arrived_indices), len(budget.arrived_indices), len(timeout.arrived_indices)}
        assert len(sizes) >= 2  # genuinely different behaviour
        for decision in (nmax, budget, timeout):
            # Arrivals are always the fastest prefix of the sorted order.
            arrived_latencies = [latencies[i] for i in decision.arrived_indices]
            assert max(arrived_latencies) <= decision.ddl + 1e-9
