"""Tests for the incremental Solution representation."""

import numpy as np
import pytest

from repro.core.solution import Solution


class TestConstruction:
    def test_empty_by_default(self, tiny_instance):
        solution = Solution(tiny_instance)
        assert solution.count == 0
        assert solution.weight == 0
        assert solution.utility == 0.0

    def test_from_mask(self, tiny_instance):
        mask = np.array([True, False, True, False, False, False])
        solution = Solution(tiny_instance, mask)
        assert solution.count == 2
        assert solution.weight == 2_500
        assert solution.utility == pytest.approx(tiny_instance.values[[0, 2]].sum())

    def test_from_indices(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [1, 4])
        assert solution.selected_positions().tolist() == [1, 4]
        assert solution.weight == 4_500

    def test_mask_roundtrip(self, tiny_instance):
        mask = np.array([True, False, True, False, True, False])
        assert np.array_equal(Solution(tiny_instance, mask).mask, mask)

    def test_wrong_mask_length_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            Solution(tiny_instance, np.zeros(4, dtype=bool))

    def test_input_mask_not_aliased(self, tiny_instance):
        mask = np.zeros(6, dtype=bool)
        solution = Solution(tiny_instance, mask)
        mask[0] = True
        assert solution.count == 0


class TestMoves:
    def test_flip_in_updates_aggregates(self, tiny_instance):
        solution = Solution(tiny_instance)
        solution.flip(1)
        assert solution.count == 1
        assert solution.weight == 2_000
        assert solution.utility == pytest.approx(float(tiny_instance.values[1]))

    def test_flip_out_reverses(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [1])
        solution.flip(1)
        assert solution.count == 0
        assert solution.utility == pytest.approx(0.0)

    def test_swap_preserves_cardinality(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [0, 1])
        solution.swap(1, 4)
        assert solution.count == 2
        assert sorted(solution.selected_positions().tolist()) == [0, 4]

    def test_swap_requires_valid_pair(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [0])
        with pytest.raises(ValueError):
            solution.swap(1, 2)  # 1 not selected
        with pytest.raises(ValueError):
            solution.swap(0, 0)  # 0 already selected

    def test_swap_delta_predicts_change(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [0, 1])
        predicted = solution.swap_delta(1, 5)
        before = solution.utility
        solution.swap(1, 5)
        assert solution.utility - before == pytest.approx(predicted)

    def test_swap_weight_predicts_change(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [0, 1])
        predicted = solution.swap_weight(1, 5)
        solution.swap(1, 5)
        assert solution.weight == predicted


class TestFeasibility:
    def test_capacity_feasible_boundary(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [1, 2, 0])  # 4500
        assert solution.capacity_feasible
        solution.flip(3)  # +800 -> 5300 > 5000
        assert not solution.capacity_feasible

    def test_feasible_requires_n_min(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [3])
        assert solution.capacity_feasible and not solution.feasible
        solution.flip(0)
        assert solution.feasible


class TestViewsAndIdentity:
    def test_selected_ids_follow_shard_ids(self, tiny_instance):
        instance = tiny_instance.without(0)  # ids (1,2,3,4,5)
        solution = Solution.from_indices(instance, [0, 2])
        assert solution.selected_ids() == (1, 3)

    def test_unselected_positions_complement(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [0, 5])
        assert solution.unselected_positions().tolist() == [1, 2, 3, 4]

    def test_copy_is_independent(self, tiny_instance):
        original = Solution.from_indices(tiny_instance, [0])
        clone = original.copy()
        clone.flip(1)
        assert original.count == 1 and clone.count == 2

    def test_equality_and_key(self, tiny_instance):
        a = Solution.from_indices(tiny_instance, [0, 2])
        b = Solution.from_indices(tiny_instance, [2, 0])
        assert a == b
        assert a.key() == b.key() == (1 << 0) + (1 << 2)

    def test_recompute_matches_incremental(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [0, 1])
        solution.swap(0, 3)
        solution.flip(5)
        utility, weight, count = solution.utility, solution.weight, solution.count
        solution.recompute()
        assert solution.utility == pytest.approx(utility)
        assert solution.weight == weight
        assert solution.count == count


class TestRebase:
    def test_rebase_preserves_surviving_ids(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [1, 3])
        smaller = tiny_instance.without(0)
        rebased = solution.rebase(smaller)
        assert rebased.selected_ids() == (1, 3)

    def test_rebase_drops_vanished_ids(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [0, 1])
        smaller = tiny_instance.without(0)
        rebased = solution.rebase(smaller)
        assert rebased.selected_ids() == (1,)
        assert rebased.count == 1

    def test_rebase_onto_grown_instance(self, tiny_instance):
        solution = Solution.from_indices(tiny_instance, [1])
        bigger = tiny_instance.with_shard(10, tx_count=100, latency=950.0)
        rebased = solution.rebase(bigger)
        assert rebased.selected_ids() == (1,)
        # values shifted with the new DDL; utility recomputed accordingly
        assert rebased.utility == pytest.approx(float(bigger.values[1]))
