"""Edge-case and robustness tests for the SE algorithm."""

import numpy as np
import pytest

from repro.core.problem import EpochInstance, MVComConfig
from repro.core.se import SEConfig, StochasticExploration

from tests.conftest import random_instance


def solve(instance, **kwargs):
    defaults = dict(num_threads=2, max_iterations=600, convergence_window=300, seed=4)
    defaults.update(kwargs)
    return StochasticExploration(SEConfig(**defaults)).solve(instance)


class TestDegenerateInstances:
    def test_two_shards(self):
        config = MVComConfig(alpha=1.5, capacity=150, n_min_fraction=0.0)
        instance = EpochInstance([100, 120], [10.0, 20.0], config)
        result = solve(instance)
        assert result.best_count >= 1
        assert result.best_weight <= 150

    def test_all_identical_shards(self):
        config = MVComConfig(alpha=1.5, capacity=3_000)
        instance = EpochInstance([1_000] * 6, [50.0] * 6, config)
        result = solve(instance)
        assert result.best_count == 3  # exactly what fits
        assert result.best_weight == 3_000

    def test_single_feasible_cardinality(self):
        """Capacity admits exactly one shard: every thread sits at n = 1."""
        config = MVComConfig(alpha=1.5, capacity=1_100, n_min_fraction=0.0)
        instance = EpochInstance([1_000, 1_050, 1_090], [5.0, 6.0, 7.0], config)
        result = solve(instance)
        assert result.best_count == 1
        assert set(result.thread_cardinalities) == {1}

    def test_everything_fits(self):
        """Sum under capacity: the full solution f_{|I_j|} must be found."""
        config = MVComConfig(alpha=10.0, capacity=10**8)
        instance = EpochInstance([10, 20, 30], [1.0, 2.0, 3.0], config)
        result = solve(instance)
        assert result.best_count == 3

    def test_full_solution_can_be_disabled(self):
        config = MVComConfig(alpha=10.0, capacity=10**8, n_min_fraction=0.0)
        instance = EpochInstance([10, 20, 30], [1.0, 2.0, 3.0], config)
        result = solve(instance, include_full_solution=False, max_iterations=2_000,
                       convergence_window=800)
        # Threads only span [n_min..n_cap] = [1..3]; n=3 IS reachable by a
        # thread here, so the best is still everything -- the flag only
        # removes the shortcut, not the capability.
        assert result.best_count == 3


class TestConfigurationExtremes:
    def test_single_solution_thread(self):
        instance = random_instance(15, seed=41)
        result = solve(instance, max_solution_threads=1)
        assert len(result.thread_cardinalities) == 1
        assert result.best_weight <= instance.capacity

    def test_tiny_beta_still_feasible(self):
        """Near-uniform exploration must still emit a feasible answer."""
        instance = random_instance(15, seed=42)
        result = solve(instance, beta=1e-9)
        assert result.best_weight <= instance.capacity
        assert result.best_count >= instance.n_min

    def test_huge_beta_is_greedy_and_stable(self):
        instance = random_instance(15, seed=43)
        result = solve(instance, beta=1e6, max_iterations=1_500, convergence_window=500)
        assert result.best_weight <= instance.capacity

    def test_nonzero_tau_changes_time_not_quality(self):
        instance = random_instance(15, seed=44)
        base = solve(instance, tau=0.0, max_iterations=1_500, convergence_window=1_500)
        shifted = solve(instance, tau=3.0, max_iterations=1_500, convergence_window=1_500)
        # tau uniformly rescales every timer: the race winners -- and hence
        # the whole trajectory -- are identical; only virtual time stretches.
        assert shifted.best_utility == pytest.approx(base.best_utility)
        assert shifted.virtual_time_trace[-1] > base.virtual_time_trace[-1]

    def test_pair_tries_one_still_progresses(self):
        instance = random_instance(15, seed=45)
        result = solve(instance, pair_tries=1, max_iterations=2_000, convergence_window=800)
        assert result.best_utility > result.utility_trace[0] - 1e-9


class TestResultIntegrity:
    def test_mask_length_tracks_final_instance(self):
        instance = random_instance(12, seed=46)
        result = solve(instance)
        assert len(result.best_mask) == result.final_instance.num_shards

    def test_valuable_degree_inputs_wired(self):
        instance = random_instance(12, seed=46)
        result = solve(instance)
        mask, final_instance = result.valuable_degree_inputs
        assert final_instance is result.final_instance
        assert np.array_equal(mask, result.best_mask)
