"""Declarative SLO specs: TOML loading, online evaluation, hub feedback."""

import pytest

from repro.obs.metrics import MetricsAggregator
from repro.obs.slo import (
    SloSpec,
    SloSpecError,
    SloTracker,
    load_slo_specs,
    specs_from_section,
)
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry


# ---------------------------------------------------------------------- #
# spec construction + TOML loading
# ---------------------------------------------------------------------- #
class TestSpecLoading:
    def test_specs_from_section_sorted_and_typed(self):
        section = {
            "zeta": {"metric": "se.reset_broadcasts", "max_rate": 5},
            "age": {"metric": "chain.mempool.age_s", "max_p99": 30.0, "tag": "3"},
        }
        specs = specs_from_section(section)
        assert [spec.name for spec in specs] == ["age", "zeta"]
        assert specs[0].kind == "max_p99" and specs[0].threshold == 30.0
        assert specs[0].tag == "3"
        assert specs[1].kind == "max_rate" and specs[1].threshold == 5.0

    @pytest.mark.parametrize(
        "table",
        [
            {"metric": "m"},  # no kind
            {"metric": "m", "max_p99": 1, "max_rate": 1},  # two kinds
            {"max_p99": 1},  # no metric
            "not-a-table",
        ],
    )
    def test_malformed_tables_raise(self, table):
        with pytest.raises(SloSpecError):
            specs_from_section({"bad": table})

    def test_monotone_budget_requires_field(self):
        with pytest.raises(SloSpecError):
            SloSpec(name="x", metric="se.round", kind="monotone_budget", threshold=1)
        spec = SloSpec(name="x", metric="se.round", kind="monotone_budget",
                       threshold=1, field="best_utility")
        assert spec.field == "best_utility"

    def test_unknown_kind_raises(self):
        with pytest.raises(SloSpecError):
            SloSpec(name="x", metric="m", kind="min_p99", threshold=1)

    def test_load_from_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.obs.slo.mempool-age]\n"
            'metric = "chain.mempool.age_s"\n'
            "max_p99 = 30.0\n"
            "[tool.repro.obs.slo.best-utility-monotone]\n"
            'metric = "se.round"\n'
            'field = "best_utility"\n'
            "monotone_budget = 0\n"
        )
        specs = load_slo_specs(pyproject_path=str(pyproject))
        assert [spec.name for spec in specs] == [
            "best-utility-monotone", "mempool-age"
        ]
        assert specs[1].threshold == 30.0

    def test_load_without_section_is_empty(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.other]\nx = 1\n")
        assert load_slo_specs(pyproject_path=str(pyproject)) == []

    def test_repo_pyproject_specs_parse(self):
        # The committed example specs must always load cleanly.
        specs = load_slo_specs()
        assert specs, "repo pyproject should ship example SLO specs"
        assert all(spec.kind in ("max_p99", "max_rate", "monotone_budget")
                   for spec in specs)


# ---------------------------------------------------------------------- #
# online evaluation
# ---------------------------------------------------------------------- #
def _hist(name, value, t, **fields):
    record = {"t": t, "type": "hist", "name": name, "value": value}
    record.update(fields)
    return record


def _tracked(specs, records, check_interval=256):
    aggregator = MetricsAggregator()
    tracker = SloTracker(specs, aggregator, check_interval=check_interval)
    for record in records:
        aggregator.emit(record)
        tracker.emit(record)
    return tracker.check()


class TestSloEvaluation:
    def test_max_p99_breaches_and_passes(self):
        spec = SloSpec(name="age", metric="chain.mempool.age_s",
                       kind="max_p99", threshold=10.0)
        low = [_hist("chain.mempool.age_s", 1.0 + i * 0.01, i) for i in range(50)]
        assert _tracked([spec], low) == []
        # A >1% heavy tail moves the (lower-rank) p99 above the threshold.
        high = low + [_hist("chain.mempool.age_s", 100.0, 99 + i) for i in range(3)]
        violations = _tracked([spec], high)
        assert len(violations) == 1
        assert violations[0]["slo"] == "age"
        assert violations[0]["observed"] > 10.0

    def test_max_p99_tag_scoping(self):
        # Tagged spec watches only epoch=1; the breach lives in epoch=0.
        records = (
            [_hist("chain.mempool.age_s", 100.0, i, epoch=0) for i in range(10)]
            + [_hist("chain.mempool.age_s", 1.0, 10 + i, epoch=1) for i in range(10)]
        )
        scoped = SloSpec(name="a", metric="chain.mempool.age_s",
                         kind="max_p99", threshold=10.0, tag="1")
        assert _tracked([scoped], records) == []
        unscoped = SloSpec(name="a", metric="chain.mempool.age_s",
                           kind="max_p99", threshold=10.0)
        violations = _tracked([unscoped], records)
        assert violations and "tag" not in violations[0]  # cross-tag aggregate

    def test_max_rate_on_counter(self):
        spec = SloSpec(name="churn", metric="c", kind="max_rate", threshold=1.5)
        slow = [{"t": 2 * i, "type": "counter", "name": "c", "inc": 1}
                for i in range(20)]  # 0.5/t-unit
        assert _tracked([spec], slow) == []
        fast = [{"t": i * 0.5, "type": "counter", "name": "c", "inc": 1}
                for i in range(20)]  # 2/t-unit
        violations = _tracked([spec], fast)
        assert violations and violations[0]["kind"] == "max_rate"

    def test_monotone_budget_tolerates_exactly_budget_drops(self):
        spec = SloSpec(name="mono", metric="se.round", kind="monotone_budget",
                       threshold=1, field="best_utility")
        one_drop = [
            {"t": t, "type": "event", "name": "se.round", "best_utility": u}
            for t, u in enumerate((1.0, 2.0, 1.5, 3.0))  # one decrease
        ]
        assert _tracked([spec], one_drop) == []
        two_drops = one_drop + [
            {"t": 4, "type": "event", "name": "se.round", "best_utility": 2.0}
        ]
        violations = _tracked([spec], two_drops)
        assert violations and "decreased" in violations[0]["detail"]
        assert violations[0]["observed"] == 2.0  # the drop count

    def test_each_spec_breaches_at_most_once(self):
        spec = SloSpec(name="mono", metric="e", kind="monotone_budget",
                       threshold=0, field="v")
        records = [{"t": t, "type": "event", "name": "e", "v": v}
                   for t, v in enumerate((3.0, 2.0, 1.0, 0.5))]
        assert len(_tracked([spec], records)) == 1

    def test_periodic_evaluation_fires_without_final_check(self):
        spec = SloSpec(name="age", metric="m", kind="max_p99", threshold=1.0)
        aggregator = MetricsAggregator()
        tracker = SloTracker([spec], aggregator, check_interval=4)
        for i in range(8):
            record = _hist("m", 100.0, i)
            aggregator.emit(record)
            tracker.emit(record)
        assert tracker.violations  # breached at a periodic checkpoint

    def test_check_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SloTracker([], MetricsAggregator(), check_interval=0)


# ---------------------------------------------------------------------- #
# hub integration: violations land back in the recorded stream
# ---------------------------------------------------------------------- #
def test_violation_emitted_into_hub_stream():
    spec = SloSpec(name="age", metric="m", kind="max_p99", threshold=1.0)
    ring = RingBufferSink()
    aggregator = MetricsAggregator()
    tracker = SloTracker([spec], aggregator, check_interval=2)
    # Attach order matters: aggregator before tracker, so each record is
    # aggregated before the tracker evaluates; the hub reference closes
    # the loop so violations re-enter the recorded stream.
    hub = Telemetry(sinks=[ring, aggregator, tracker])
    tracker.telemetry = hub
    for _ in range(4):
        hub.observe("m", 50.0)
    hub.close()
    violations = [r for r in ring.records if r["name"] == "slo.violation"]
    assert len(violations) == 1
    assert violations[0]["slo"] == "age"
    assert violations[0]["metric"] == "m"
    # The echo of our own violation through the hub did not recurse.
    assert tracker.violations[0]["observed"] > 1.0
