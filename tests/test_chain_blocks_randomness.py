"""Tests for blocks, the root chain, and epoch randomness."""

import pytest

from repro.chain.blocks import (
    GENESIS_HASH,
    FinalBlock,
    RootChain,
    ShardBlock,
    compute_final_hash,
)
from repro.chain.randomness import (
    GENESIS_RANDOMNESS,
    combine_shares,
    member_share,
    refresh_randomness,
)

import numpy as np


class TestShardBlock:
    def test_two_phase_latency_is_sum(self):
        block = ShardBlock(committee_id=1, epoch=0, tx_count=10,
                           formation_latency=600.0, consensus_latency=50.0)
        assert block.two_phase_latency == pytest.approx(650.0)
        assert block.latency == block.two_phase_latency  # core-protocol alias
        assert block.shard_id == 1

    def test_hash_autofilled_and_stable(self):
        a = ShardBlock(1, 0, 10, 1.0, 2.0)
        b = ShardBlock(1, 0, 10, 5.0, 6.0)  # latencies not in the hash
        assert a.block_hash == b.block_hash
        c = ShardBlock(1, 0, 11, 1.0, 2.0)
        assert a.block_hash != c.block_hash

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ShardBlock(1, 0, -1, 1.0, 2.0)
        with pytest.raises(ValueError):
            ShardBlock(1, 0, 1, -1.0, 2.0)


class TestRootChain:
    def _block(self, chain, txs=100, shards=("a", "b")):
        return FinalBlock(
            epoch=chain.height,
            parent_hash=chain.head_hash,
            permitted_shards=tuple(sorted(shards)),
            total_txs=txs,
            ddl=100.0,
            randomness="r",
        )

    def test_append_and_verify(self):
        chain = RootChain()
        assert chain.head_hash == GENESIS_HASH
        for _ in range(3):
            chain.append(self._block(chain))
        assert chain.height == 3
        assert chain.verify()
        assert chain.total_txs == 300

    def test_wrong_parent_rejected(self):
        chain = RootChain()
        chain.append(self._block(chain))
        orphan = FinalBlock(epoch=1, parent_hash=GENESIS_HASH,
                            permitted_shards=("a",), total_txs=1, ddl=1.0, randomness="r")
        with pytest.raises(ValueError):
            chain.append(orphan)

    def test_wrong_epoch_rejected(self):
        chain = RootChain()
        block = FinalBlock(epoch=5, parent_hash=chain.head_hash,
                           permitted_shards=("a",), total_txs=1, ddl=1.0, randomness="r")
        with pytest.raises(ValueError):
            chain.append(block)

    def test_tampered_hash_rejected_at_construction(self):
        with pytest.raises(ValueError):
            FinalBlock(epoch=0, parent_hash=GENESIS_HASH, permitted_shards=("a",),
                       total_txs=1, ddl=1.0, randomness="r", block_hash="0" * 64)

    def test_verify_detects_tampering(self):
        chain = RootChain()
        chain.append(self._block(chain))
        chain.append(self._block(chain))
        # Bypass append-time checks by splicing a forged middle block.
        forged = FinalBlock(epoch=0, parent_hash=GENESIS_HASH,
                            permitted_shards=("evil",), total_txs=999, ddl=1.0, randomness="r")
        chain.blocks[0] = forged
        assert not chain.verify()

    def test_hash_binds_contents(self):
        h1 = compute_final_hash(0, "p", ("a",), 10, "r")
        h2 = compute_final_hash(0, "p", ("a",), 11, "r")
        assert h1 != h2


class TestRandomness:
    def test_combine_order_independent(self):
        shares = ["s1", "s2", "s3"]
        assert combine_shares(shares) == combine_shares(list(reversed(shares)))

    def test_combine_sensitive_to_any_share(self):
        assert combine_shares(["a", "b"]) != combine_shares(["a", "c"])

    def test_empty_shares_rejected(self):
        with pytest.raises(ValueError):
            combine_shares([])

    def test_member_share_random_per_member(self):
        rng = np.random.default_rng(0)
        assert member_share(0, 1, rng) != member_share(0, 2, rng)

    def test_refresh_changes_every_epoch(self):
        rng = np.random.default_rng(0)
        first = refresh_randomness(0, [1, 2, 3], rng)
        second = refresh_randomness(1, [1, 2, 3], rng)
        assert first != second != GENESIS_RANDOMNESS
        assert len(first) == 64
