"""Tests for epoch workload generation."""

import numpy as np
import pytest

from repro.core.dynamics import EventKind
from repro.data.workload import (
    WorkloadConfig,
    arrived_shards,
    generate_epoch_workload,
    generate_online_workload,
    multi_epoch_workloads,
)


class TestStaticWorkload:
    def test_arrival_cutoff_is_nmax_fraction(self):
        workload = generate_epoch_workload(WorkloadConfig(num_committees=50, capacity=40_000, seed=1))
        assert workload.instance.num_shards == 40  # 80% of 50
        assert len(workload.shards) == 50

    def test_instance_ddl_is_slowest_arrival(self):
        workload = generate_epoch_workload(WorkloadConfig(num_committees=50, capacity=40_000, seed=1))
        assert workload.instance.ddl == pytest.approx(workload.instance.latencies.max())

    def test_stragglers_excluded(self):
        workload = generate_epoch_workload(WorkloadConfig(num_committees=50, capacity=40_000, seed=1))
        excluded = sorted(s.latency for s in workload.shards)[40:]
        assert min(excluded) >= workload.instance.ddl

    def test_bootstrap_condition_holds(self):
        """Alg. 1 line 1: total submitted TXs exceed the capacity."""
        for seed in (1, 2, 3):
            workload = generate_epoch_workload(
                WorkloadConfig(num_committees=100, capacity=100_000, seed=seed)
            )
            assert workload.instance.tx_counts.sum() > workload.instance.capacity

    def test_n_min_feasible_without_relaxation(self):
        for seed in (1, 2, 3):
            workload = generate_epoch_workload(
                WorkloadConfig(num_committees=100, capacity=100_000, seed=seed)
            )
            assert not workload.instance.n_min_relaxed

    def test_deterministic_per_seed(self):
        a = generate_epoch_workload(WorkloadConfig(num_committees=40, capacity=40_000, seed=7))
        b = generate_epoch_workload(WorkloadConfig(num_committees=40, capacity=40_000, seed=7))
        assert np.array_equal(a.instance.tx_counts, b.instance.tx_counts)
        assert np.array_equal(a.instance.latencies, b.instance.latencies)

    def test_seeds_differ(self):
        a = generate_epoch_workload(WorkloadConfig(num_committees=40, capacity=40_000, seed=7))
        b = generate_epoch_workload(WorkloadConfig(num_committees=40, capacity=40_000, seed=8))
        assert not np.array_equal(a.instance.tx_counts, b.instance.tx_counts)

    def test_mean_shard_size_calibration(self):
        """blocks_per_committee=1.3 should give ~1.3 * 1088 TXs per shard."""
        workload = generate_epoch_workload(WorkloadConfig(num_committees=200, capacity=200_000, seed=5))
        mean = np.mean([s.tx_count for s in workload.shards])
        assert 1100 <= mean <= 1750

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_committees=0)
        with pytest.raises(ValueError):
            WorkloadConfig(blocks_per_committee=0)


class TestArrivedShards:
    def test_sorted_by_latency(self):
        workload = generate_epoch_workload(WorkloadConfig(num_committees=30, capacity=30_000, seed=2))
        arrived = arrived_shards(workload.shards, 0.8)
        latencies = [s.latency for s in arrived]
        assert latencies == sorted(latencies)

    def test_full_fraction_keeps_all(self):
        workload = generate_epoch_workload(WorkloadConfig(num_committees=30, capacity=30_000, seed=2))
        assert len(arrived_shards(workload.shards, 1.0)) == 30

    def test_invalid_fraction_rejected(self):
        workload = generate_epoch_workload(WorkloadConfig(num_committees=30, capacity=30_000, seed=2))
        with pytest.raises(ValueError):
            arrived_shards(workload.shards, 0.0)
        with pytest.raises(ValueError):
            arrived_shards(workload.shards, 1.2)


class TestOnlineWorkload:
    def test_initial_plus_joins_equals_window(self):
        workload = generate_online_workload(
            WorkloadConfig(num_committees=50, capacity=40_000, seed=3),
            num_initial=17, join_start=100, join_spacing=50,
        )
        assert workload.instance.num_shards == 17
        assert len(workload.schedule) == 40 - 17 == 23  # the paper's 23 joins

    def test_joins_in_latency_order(self):
        workload = generate_online_workload(
            WorkloadConfig(num_committees=50, capacity=40_000, seed=3),
            num_initial=17, join_start=100, join_spacing=50,
        )
        latencies = [e.latency for e in workload.schedule]
        assert latencies == sorted(latencies)
        assert all(e.kind is EventKind.JOIN for e in workload.schedule)

    def test_initial_committees_are_fastest(self):
        workload = generate_online_workload(
            WorkloadConfig(num_committees=50, capacity=40_000, seed=3),
            num_initial=17, join_start=100, join_spacing=50,
        )
        slowest_initial = workload.instance.latencies.max()
        first_join = workload.schedule.events[0].latency
        assert first_join >= slowest_initial

    def test_num_initial_beyond_window_rejected(self):
        with pytest.raises(ValueError):
            generate_online_workload(
                WorkloadConfig(num_committees=50, capacity=40_000, seed=3),
                num_initial=45, join_start=100, join_spacing=50,
            )

    def test_num_initial_zero_rejected(self):
        with pytest.raises(ValueError):
            generate_online_workload(
                WorkloadConfig(num_committees=50, capacity=40_000, seed=3),
                num_initial=0, join_start=100, join_spacing=50,
            )


class TestMultiEpoch:
    def test_epochs_differ(self):
        workloads = multi_epoch_workloads(
            WorkloadConfig(num_committees=30, capacity=30_000, seed=4), num_epochs=3
        )
        assert len(workloads) == 3
        assert not np.array_equal(workloads[0].instance.tx_counts, workloads[1].instance.tx_counts)

    def test_epochs_deterministic(self):
        a = multi_epoch_workloads(WorkloadConfig(num_committees=30, capacity=30_000, seed=4), 2)
        b = multi_epoch_workloads(WorkloadConfig(num_committees=30, capacity=30_000, seed=4), 2)
        for wa, wb in zip(a, b):
            assert np.array_equal(wa.instance.tx_counts, wb.instance.tx_counts)

    def test_zero_epochs_rejected(self):
        with pytest.raises(ValueError):
            multi_epoch_workloads(WorkloadConfig(num_committees=30, capacity=30_000, seed=4), 0)
