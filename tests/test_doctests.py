"""Run the doctests embedded in module/class docstrings."""

import doctest

import pytest

import repro.harness.sweeps
import repro.sim.engine
import repro.sim.rng

DOCTEST_MODULES = [
    repro.sim.engine,
    repro.sim.rng,
    repro.harness.sweeps,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
