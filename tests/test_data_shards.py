"""Tests for shard workload construction."""

import numpy as np
import pytest

from repro.data.bitcoin import BitcoinTraceConfig, generate_bitcoin_trace
from repro.data.shards import ShardRecord, build_shards, partition_blocks


@pytest.fixture(scope="module")
def blocks():
    return generate_bitcoin_trace(BitcoinTraceConfig(num_blocks=120, total_txs=130_000, seed=3))


class TestPartition:
    def test_every_block_assigned_once(self, blocks):
        rng = np.random.default_rng(1)
        groups = partition_blocks(blocks, 10, rng)
        flat = [b.block_id for group in groups for b in group]
        assert sorted(flat) == [b.block_id for b in blocks]

    def test_group_count(self, blocks):
        rng = np.random.default_rng(1)
        assert len(partition_blocks(blocks, 7, rng)) == 7

    def test_balanced_within_one_block(self, blocks):
        rng = np.random.default_rng(1)
        groups = partition_blocks(blocks, 9, rng)
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_more_groups_than_blocks_leaves_empties(self, blocks):
        rng = np.random.default_rng(1)
        groups = partition_blocks(blocks[:5], 8, rng)
        assert sum(len(g) for g in groups) == 5
        assert sum(1 for g in groups if not g) == 3

    def test_shuffle_differs_by_rng(self, blocks):
        a = partition_blocks(blocks, 10, np.random.default_rng(1))
        b = partition_blocks(blocks, 10, np.random.default_rng(2))
        assert [x.block_id for x in a[0]] != [x.block_id for x in b[0]]

    def test_zero_groups_rejected(self, blocks):
        with pytest.raises(ValueError):
            partition_blocks(blocks, 0, np.random.default_rng(1))


class TestBuildShards:
    def test_tx_counts_accumulate_blocks(self, blocks):
        rng = np.random.default_rng(5)
        shards = build_shards(blocks, 12, rng)
        total = sum(shard.tx_count for shard in shards)
        assert total == sum(b.txs for b in blocks)

    def test_shard_ids_sequential(self, blocks):
        shards = build_shards(blocks, 12, np.random.default_rng(5))
        assert [s.shard_id for s in shards] == list(range(12))

    def test_latency_decomposition(self, blocks):
        shards = build_shards(blocks, 12, np.random.default_rng(5))
        for shard in shards:
            assert shard.latency == pytest.approx(
                shard.formation_latency + shard.consensus_latency
            )

    def test_block_ids_recorded(self, blocks):
        shards = build_shards(blocks, 12, np.random.default_rng(5))
        flat = [bid for shard in shards for bid in shard.block_ids]
        assert sorted(flat) == [b.block_id for b in blocks]

    def test_deterministic_for_same_rng_seed(self, blocks):
        a = build_shards(blocks, 12, np.random.default_rng(5))
        b = build_shards(blocks, 12, np.random.default_rng(5))
        assert a == b

    def test_invalid_record_rejected(self):
        with pytest.raises(ValueError):
            ShardRecord(shard_id=0, tx_count=-1, latency=1.0,
                        formation_latency=1.0, consensus_latency=0.0, block_ids=())
        with pytest.raises(ValueError):
            ShardRecord(shard_id=0, tx_count=1, latency=-1.0,
                        formation_latency=1.0, consensus_latency=0.0, block_ids=())
