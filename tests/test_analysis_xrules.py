"""Tests for the cross-module MV1xx rules (repro.analysis.rules_graph)."""

import textwrap

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import LintEngine
from repro.analysis.graph import build_graph_from_sources
from repro.analysis.streamkeys import (
    pattern_from_expr,
    patterns_can_unify,
)
import ast

ALL_RULES = AnalysisConfig()


def xlint(files, config=ALL_RULES):
    """Lint a {path: source} fixture set with per-file AND project rules."""
    engine = LintEngine(config=config)
    return engine.lint_sources(
        {path: textwrap.dedent(source) for path, source in files.items()}
    )


def rule_hits(diagnostics, rule_id):
    return [d for d in diagnostics if d.rule_id == rule_id]


def pattern(expr_source):
    return pattern_from_expr(ast.parse(expr_source, mode="eval").body)


# ---------------------------------------------------------------------- #
# key-pattern unification
# ---------------------------------------------------------------------- #
class TestPatternUnification:
    def test_identical_literals_unify(self):
        assert patterns_can_unify(pattern("'leave-reinit'"), pattern("'leave-reinit'"))

    def test_distinct_literals_do_not(self):
        assert not patterns_can_unify(pattern("'pow'"), pattern("'pbft'"))

    def test_template_matches_literal_instance(self):
        assert patterns_can_unify(
            pattern("f'replica-{rid}-init'"), pattern("'replica-7-init'")
        )

    def test_holes_do_not_span_dashes(self):
        # The PR 5 '-n{c}' vs '-dyn-n{c}' suffixes must stay disjoint: holes
        # never produce '-' so the extra '-dyn' segment cannot be absorbed.
        assert not patterns_can_unify(
            pattern("f'replica-{rid}-n{c}'"),
            pattern("f'replica-{rid}-dyn-n{c}'"),
        )

    def test_same_template_unifies_with_itself(self):
        assert patterns_can_unify(
            pattern("f'replica-{rid}-init'"), pattern("f'replica-{rid}-init'")
        )


# ---------------------------------------------------------------------- #
# MV101 stream collisions
# ---------------------------------------------------------------------- #
#: The PR 3 bug, reconstructed across two modules: every replica in the
#: leave-loop drew from ONE shared "leave-reinit" stream.
PR3_LEAVE_REINIT = {
    "repro/core/dynamics.py": """
    def apply_leave(instance, replicas, streams):
        for replica in replicas:
            rng = streams.get("leave-reinit")
            replica.reinitialize(instance, rng)
    """,
    "repro/core/driver.py": """
    from repro.sim.rng import RandomStreams

    from repro.core.dynamics import apply_leave

    def solve(seed, replicas):
        streams = RandomStreams(seed)
        apply_leave(None, replicas, streams)
    """,
    "repro/sim/rng.py": """
    class RandomStreams:
        def __init__(self, seed):
            self.seed = seed

        def get(self, name):
            return name
    """,
}


class TestMV101:
    def test_pr3_leave_reinit_bug_is_flagged_with_call_path(self):
        hits = rule_hits(xlint(PR3_LEAVE_REINIT), "MV101")
        assert len(hits) == 1
        finding = hits[0]
        assert finding.path == "repro/core/dynamics.py"
        assert "'leave-reinit'" in finding.message
        # the colliding call path is named in the diagnostic
        assert "solve -> apply_leave" in finding.message

    def test_pragma_suppresses_the_finding(self):
        files = dict(PR3_LEAVE_REINIT)
        files["repro/core/dynamics.py"] = """
        def apply_leave(instance, replicas, streams):
            for replica in replicas:
                rng = streams.get("leave-reinit")  # repro: ignore[MV101]
                replica.reinitialize(instance, rng)
        """
        assert rule_hits(xlint(files), "MV101") == []

    def test_per_replica_key_is_clean(self):
        files = dict(PR3_LEAVE_REINIT)
        files["repro/core/dynamics.py"] = """
        def apply_leave(instance, replicas, streams):
            for replica in replicas:
                rng = streams.get(f"replica-{replica.replica_id}-leave")
                replica.reinitialize(instance, rng)
        """
        assert rule_hits(xlint(files), "MV101") == []

    def test_loop_local_fork_is_clean(self):
        # A fresh child registry per iteration is a fresh key space.
        files = {
            "repro/core/epochs.py": """
            def run(epochs, streams):
                for epoch in epochs:
                    child = streams.fork(f"epoch-{epoch}")
                    rng = child.get("blocks")
                    rng2 = child.get("shards")
            """
        }
        assert rule_hits(xlint(files), "MV101") == []

    def test_cross_site_same_literal_key_collides(self):
        files = {
            "repro/core/two.py": """
            def first(streams):
                return streams.get("shared-key")

            def second(streams):
                return streams.get("shared-key")
            """
        }
        hits = rule_hits(xlint(files), "MV101")
        assert len(hits) == 1
        assert "can unify" in hits[0].message

    def test_cross_site_distinct_keys_clean(self):
        files = {
            "repro/core/two.py": """
            def first(streams):
                return streams.get("pow")

            def second(streams):
                return streams.get("pbft")
            """
        }
        assert rule_hits(xlint(files), "MV101") == []

    def test_rng_module_itself_is_exempt(self):
        files = {
            "repro/sim/rng.py": """
            def spawn_rng(seed, name):
                return (seed, name)

            def helper(streams):
                for i in range(3):
                    streams.get("fixed")
            """
        }
        assert rule_hits(xlint(files), "MV101") == []


# ---------------------------------------------------------------------- #
# MV102 transitive wall-clock / entropy taint
# ---------------------------------------------------------------------- #
class TestMV102:
    def test_transitive_wall_clock_flagged_with_chain(self):
        files = {
            "repro/core/solver.py": """
            from repro.core.util import stamp

            def solve():
                return stamp()
            """,
            "repro/core/util.py": """
            import time

            def stamp():
                return time.time()
            """,
        }
        hits = rule_hits(xlint(files), "MV102")
        assert [d.path for d in hits] == ["repro/core/solver.py"]
        assert "time.time" in hits[0].message
        assert "solve -> stamp" in hits[0].message

    def test_direct_sink_left_to_mv002(self):
        files = {
            "repro/core/util.py": """
            import time

            def stamp():
                return time.time()
            """
        }
        diagnostics = xlint(files)
        assert rule_hits(diagnostics, "MV102") == []
        assert rule_hits(diagnostics, "MV002")  # per-file rule owns it

    def test_transitive_entropy_flagged(self):
        files = {
            "repro/core/solver.py": """
            from repro.core.ids import fresh_id

            def solve():
                return fresh_id()
            """,
            "repro/core/ids.py": """
            import os

            def fresh_id():
                return os.urandom(8)
            """,
        }
        hits = rule_hits(xlint(files), "MV102")
        assert [d.path for d in hits] == ["repro/core/solver.py"]
        assert "os.urandom" in hits[0].message

    def test_rng_module_streams_are_not_taint_sources(self):
        files = {
            "repro/core/solver.py": """
            from repro.sim.rng import spawn_rng

            def solve(seed):
                return spawn_rng(seed, "se").random()
            """,
            "repro/sim/rng.py": """
            import random

            def spawn_rng(seed, name):
                return random.Random(seed)
            """,
        }
        assert rule_hits(xlint(files), "MV102") == []

    def test_non_replay_packages_not_flagged(self):
        files = {
            "repro/obs/report.py": """
            from repro.obs.clock import now

            def render():
                return now()
            """,
            "repro/obs/clock.py": """
            import time

            def now():
                return time.time()
            """,
        }
        assert rule_hits(xlint(files), "MV102") == []


# ---------------------------------------------------------------------- #
# MV103 pickling reachability
# ---------------------------------------------------------------------- #
_EXECUTOR_PRELUDE = """
from concurrent.futures import ProcessPoolExecutor
from functools import partial
"""


class TestMV103:
    def run_case(self, body):
        files = {
            "repro/core/pool.py": _EXECUTOR_PRELUDE + textwrap.dedent(body)
        }
        return xlint(files)

    def test_bound_method_flagged(self):
        hits = rule_hits(
            self.run_case(
                """
                class Driver:
                    def work(self, x):
                        return x

                    def run(self, pool, items):
                        return pool.map(self.work, items)
                """
            ),
            "MV103",
        )
        assert len(hits) == 1 and "bound method" in hits[0].message

    def test_partial_wrapping_bound_method_flagged(self):
        hits = rule_hits(
            self.run_case(
                """
                class Driver:
                    def work(self, x, y):
                        return x + y

                    def run(self, pool, items):
                        return pool.map(partial(self.work, 1), items)
                """
            ),
            "MV103",
        )
        assert len(hits) == 1 and "bound method" in hits[0].message

    def test_generator_expression_argument_flagged(self):
        hits = rule_hits(
            self.run_case(
                """
                def work(x):
                    return x

                def run(pool, items):
                    return pool.map(work, (i * 2 for i in items))
                """
            ),
            "MV103",
        )
        assert len(hits) == 1 and "generator expression" in hits[0].message

    def test_open_handle_argument_flagged(self):
        hits = rule_hits(
            self.run_case(
                """
                def work(x):
                    return x

                def run(pool, path):
                    with open(path) as handle:
                        return pool.submit(work, handle)
                """
            ),
            "MV103",
        )
        assert len(hits) == 1 and "open file handle" in hits[0].message

    def test_module_level_callable_clean(self):
        hits = rule_hits(
            self.run_case(
                """
                def work(x):
                    return x

                def run(pool, items):
                    return pool.map(work, list(items))
                """
            ),
            "MV103",
        )
        assert hits == []

    def test_local_lambda_name_flagged(self):
        hits = rule_hits(
            self.run_case(
                """
                def run(pool, items):
                    work = lambda x: x
                    return pool.map(work, items)
                """
            ),
            "MV103",
        )
        assert len(hits) == 1 and "built inside this function" in hits[0].message

    def test_class_staticmethod_reference_clean(self):
        hits = rule_hits(
            self.run_case(
                """
                class Kernel:
                    @staticmethod
                    def work(x):
                        return x

                def run(pool, items):
                    return pool.map(Kernel.work, items)
                """
            ),
            "MV103",
        )
        assert hits == []


# ---------------------------------------------------------------------- #
# MV104 telemetry-guard flow
# ---------------------------------------------------------------------- #
class TestMV104:
    def test_unguarded_loop_emission_flagged(self):
        files = {
            "repro/core/loop.py": """
            def run(items, telemetry):
                for item in items:
                    telemetry.event("se.step", item=item)
            """
        }
        hits = rule_hits(xlint(files), "MV104")
        assert len(hits) == 1
        assert "telemetry.event" in hits[0].message

    def test_direct_enabled_guard_clean(self):
        files = {
            "repro/core/loop.py": """
            def run(items, telemetry):
                for item in items:
                    if telemetry.enabled:
                        telemetry.event("se.step", item=item)
            """
        }
        assert rule_hits(xlint(files), "MV104") == []

    def test_hoisted_local_alias_clean(self):
        files = {
            "repro/core/loop.py": """
            def run(items, telemetry):
                traced = telemetry.enabled
                for item in items:
                    if traced:
                        telemetry.event("se.step", item=item)
            """
        }
        assert rule_hits(xlint(files), "MV104") == []

    def test_cross_module_hoisted_attribute_clean(self):
        # engine.py pattern: the guard was hoisted onto another object in a
        # different module; the flow pass follows the attribute name.
        files = {
            "repro/obs/run.py": """
            class EngineRun:
                def __init__(self, telemetry):
                    self.telemetry = telemetry
                    self.traced = telemetry.enabled
            """,
            "repro/core/loop.py": """
            def run_serial(run, items):
                telemetry = run.telemetry
                traced = run.traced
                for item in items:
                    if traced:
                        telemetry.event("se.step", item=item)
            """,
        }
        assert rule_hits(xlint(files), "MV104") == []

    def test_early_exit_guard_clean(self):
        files = {
            "repro/core/loop.py": """
            def run(items, telemetry):
                if not telemetry.enabled:
                    return
                for item in items:
                    telemetry.event("se.step", item=item)
            """
        }
        assert rule_hits(xlint(files), "MV104") == []

    def test_emission_outside_loop_clean(self):
        files = {
            "repro/core/loop.py": """
            def run(telemetry):
                telemetry.event("se.start")
            """
        }
        assert rule_hits(xlint(files), "MV104") == []

    def test_non_replay_package_clean(self):
        files = {
            "repro/obs/report.py": """
            def render(records, telemetry):
                for record in records:
                    telemetry.event("report.row")
            """
        }
        assert rule_hits(xlint(files), "MV104") == []


# ---------------------------------------------------------------------- #
# engine plumbing for the project pass
# ---------------------------------------------------------------------- #
class TestEnginePlumbing:
    def test_lint_source_never_runs_project_rules(self):
        engine = LintEngine(config=ALL_RULES)
        source = textwrap.dedent(
            """
            def run(items, telemetry):
                for item in items:
                    telemetry.event("se.step")
            """
        )
        assert engine.lint_source(source, path="repro/core/loop.py") == []

    def test_project_rules_respect_per_rule_ignores(self):
        config = AnalysisConfig(per_rule_ignores={"MV104": ["repro/core/*"]})
        files = {
            "repro/core/loop.py": """
            def run(items, telemetry):
                for item in items:
                    telemetry.event("se.step")
            """
        }
        assert rule_hits(xlint(files, config=config), "MV104") == []

    def test_comment_line_pragma_applies_to_next_line(self):
        files = {
            "repro/core/loop.py": """
            def run(items, telemetry):
                for item in items:
                    # repro: ignore[MV104]
                    telemetry.event("se.step")
            """
        }
        assert rule_hits(xlint(files), "MV104") == []

    def test_graph_dump_lists_stream_sites(self):
        from repro.analysis.output import render_graph

        graph = build_graph_from_sources(
            {
                "repro/core/a.py": (
                    "repro/core/a.py",
                    textwrap.dedent(
                        """
                        def run(streams):
                            return streams.get("pow")
                        """
                    ),
                )
            }
        )
        dump = render_graph(graph)
        assert "# stream key sites (1)" in dump
        assert "'pow'" in dump
