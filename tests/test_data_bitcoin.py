"""Tests for the synthetic Bitcoin trace."""

import pytest

from repro.data.bitcoin import (
    JANUARY_2016_UNIX,
    PAPER_BLOCK_COUNT,
    PAPER_TOTAL_TXS,
    BitcoinBlock,
    BitcoinTraceConfig,
    generate_bitcoin_trace,
    trace_statistics,
)


@pytest.fixture(scope="module")
def default_trace():
    return generate_bitcoin_trace()


class TestSchema:
    def test_paper_block_count(self, default_trace):
        assert len(default_trace) == PAPER_BLOCK_COUNT == 1378

    def test_paper_total_txs_exact(self, default_trace):
        assert sum(b.txs for b in default_trace) == PAPER_TOTAL_TXS == 1_500_000

    def test_block_ids_sequential(self, default_trace):
        assert [b.block_id for b in default_trace] == list(range(1378))

    def test_hashes_unique_and_hex(self, default_trace):
        hashes = {b.bhash for b in default_trace}
        assert len(hashes) == len(default_trace)
        assert all(len(b.bhash) == 64 for b in default_trace)
        int(default_trace[0].bhash, 16)  # valid hex

    def test_btimes_monotone_increasing(self, default_trace):
        times = [b.btime for b in default_trace]
        assert all(later >= earlier for earlier, later in zip(times, times[1:]))

    def test_trace_starts_in_january_2016(self, default_trace):
        assert default_trace[0].btime >= JANUARY_2016_UNIX

    def test_every_block_nonempty(self, default_trace):
        assert min(b.txs for b in default_trace) >= 1

    def test_negative_txs_rejected(self):
        with pytest.raises(ValueError):
            BitcoinBlock(block_id=0, bhash="x", btime=0, txs=-1)


class TestStatistics:
    def test_mean_txs_near_real_january_2016(self, default_trace):
        stats = trace_statistics(default_trace)
        assert 1000 <= stats["mean_txs"] <= 1200  # real Jan-2016 mean ~1088

    def test_interblock_spacing_near_600s(self, default_trace):
        stats = trace_statistics(default_trace)
        assert 450 <= stats["mean_interblock_seconds"] <= 750

    def test_blocks_vary_in_size(self, default_trace):
        stats = trace_statistics(default_trace)
        assert stats["std_txs"] > 100
        assert stats["max_txs"] > 2 * stats["min_txs"]

    def test_cap_respected(self, default_trace):
        assert max(b.txs for b in default_trace) <= BitcoinTraceConfig().max_txs_per_block


class TestDeterminismAndConfig:
    def test_same_seed_reproduces(self):
        a = generate_bitcoin_trace(BitcoinTraceConfig(seed=5))
        b = generate_bitcoin_trace(BitcoinTraceConfig(seed=5))
        assert a == b

    def test_different_seed_differs(self):
        a = generate_bitcoin_trace(BitcoinTraceConfig(seed=5))
        b = generate_bitcoin_trace(BitcoinTraceConfig(seed=6))
        assert a != b

    def test_custom_totals_respected(self):
        config = BitcoinTraceConfig(num_blocks=100, total_txs=50_000, seed=1)
        trace = generate_bitcoin_trace(config)
        assert len(trace) == 100
        assert sum(b.txs for b in trace) == 50_000

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            BitcoinTraceConfig(num_blocks=0)
        with pytest.raises(ValueError):
            BitcoinTraceConfig(num_blocks=10, total_txs=5)
        with pytest.raises(ValueError):
            BitcoinTraceConfig(sigma=-1.0)
        with pytest.raises(ValueError):
            BitcoinTraceConfig(mean_interblock_seconds=0.0)
