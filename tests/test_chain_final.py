"""Tests for stage 4: the final committee and pluggable schedulers."""

import numpy as np
import pytest

from repro.chain.blocks import RootChain, ShardBlock
from repro.chain.committee import Committee
from repro.chain.final import FinalCommittee, take_everything
from repro.chain.node import spawn_nodes
from repro.chain.params import ChainParams
from repro.core.problem import MVComConfig

PARAMS = ChainParams(num_nodes=64, committee_size=8, seed=9)


def make_shard_blocks(count=10, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ShardBlock(
            committee_id=i,
            epoch=0,
            tx_count=int(rng.integers(500, 2_000)),
            formation_latency=float(rng.gamma(4.0, 150.0)),
            consensus_latency=float(rng.gamma(4.0, 12.0)),
        )
        for i in range(count)
    ]


def make_final_committee(scheduler, capacity=8_000):
    nodes = spawn_nodes(8, 0.0, np.random.default_rng(3))
    committee = Committee(committee_id=99, epoch=0, members=nodes)
    return FinalCommittee(
        committee=committee,
        params=PARAMS,
        mvcom_config=MVComConfig(alpha=1.5, capacity=capacity),
        scheduler=scheduler,
    )


class TestArrivalWindow:
    def test_window_is_nmax_fraction(self):
        final = make_final_committee(take_everything)
        blocks = make_shard_blocks(10)
        window = final.arrival_window(blocks)
        assert len(window) == 8  # 80% of 10

    def test_window_keeps_fastest(self):
        final = make_final_committee(take_everything)
        blocks = make_shard_blocks(10)
        window = final.arrival_window(blocks)
        cut = max(b.two_phase_latency for b in window)
        outside = [b for b in blocks if b not in window]
        assert all(b.two_phase_latency >= cut for b in outside)


class TestRun:
    def test_appends_block_to_chain(self):
        final = make_final_committee(take_everything)
        chain = RootChain()
        result = final.run(make_shard_blocks(10), chain, "rand", np.random.default_rng(1))
        assert result is not None
        assert chain.height == 1
        assert chain.verify()
        assert result.permitted_txs <= 8_000
        assert result.final_pbft_latency > 0

    def test_permitted_shards_recorded_sorted(self):
        final = make_final_committee(take_everything)
        chain = RootChain()
        result = final.run(make_shard_blocks(10), chain, "rand", np.random.default_rng(1))
        hashes = list(result.block.permitted_shards)
        assert hashes == sorted(hashes)
        assert len(hashes) == result.permitted_committees

    def test_empty_submissions_yield_no_block(self):
        final = make_final_committee(take_everything)
        assert final.run([], RootChain(), "rand", np.random.default_rng(1)) is None

    def test_scheduler_overflow_rejected(self):
        final = make_final_committee(lambda inst: np.ones(inst.num_shards, dtype=bool),
                                     capacity=100)
        with pytest.raises(ValueError):
            final.run(make_shard_blocks(10), RootChain(), "rand", np.random.default_rng(1))

    def test_scheduler_bad_shape_rejected(self):
        final = make_final_committee(lambda inst: np.ones(2, dtype=bool))
        with pytest.raises(ValueError):
            final.run(make_shard_blocks(10), RootChain(), "rand", np.random.default_rng(1))


class TestTakeEverything:
    def test_prefers_arrival_order(self):
        final = make_final_committee(take_everything, capacity=3_000)
        blocks = make_shard_blocks(10)
        window = final.arrival_window(blocks)
        from repro.core.problem import build_instance

        instance = build_instance(window, MVComConfig(alpha=1.5, capacity=3_000))
        mask = take_everything(instance)
        if mask.any() and not mask.all():
            slowest_selected = instance.latencies[mask].max()
            # Some unselected shard may be faster only if it did not fit;
            # every unselected shard faster than the slowest selected one
            # must be too big for the remaining room at its arrival time.
            assert instance.weight(mask) <= instance.capacity
