"""Regression tests for the SE repair bugs exposed by churn storms.

Three dynamic-path bugs, each pinned by a construction that fails on the
pre-fix code:

1. ``_SolutionThread.initialize`` ran ``np.searchsorted`` over the raw
   swap-relief cumsum, which is concave (its increments can go negative)
   and therefore NOT sorted — bisection fell off the peak and collapsed
   perfectly repairable draws to the lightest-``n`` fallback.
2. ``_rebase_best`` never re-established const. (3) ``count >= N_min``
   after a LEAVE shrank the carried incumbent below the floor; the
   infeasible incumbent could then win ``_pick_better`` on raw utility.
3. ``_apply_leave`` drew every replica's re-initialisation from one shared
   ``"leave-reinit"`` stream, correlating the Γ replicas' post-failure
   exploration and making it depend on replica iteration order.
"""

import numpy as np

from repro.core.dynamics import CommitteeEvent, EventKind
from repro.core.problem import EpochInstance, MVComConfig
from repro.core.repair import repair_capacity, repair_cardinality, repair_feasibility
from repro.core.se import SEConfig, StochasticExploration, _SolutionThread, _ThreadRng
from repro.core.solution import Solution
from repro.sim.rng import RandomStreams

from tests.conftest import random_instance


class _IdentityRng:
    """A stand-in numpy RNG whose permutation is the identity (rigged draws)."""

    @staticmethod
    def permutation(n):
        return np.arange(n)


def _thread(cardinality: int, config: SEConfig = SEConfig()) -> _SolutionThread:
    return _SolutionThread(
        cardinality=cardinality, thread_rng=_ThreadRng(0, "regression"), config=config
    )


class TestInitializeSearchsorted:
    """Bug 1: bisection over the non-monotone relief sequence."""

    def _instance(self) -> EpochInstance:
        # Rigged so the identity permutation picks positions 0-4 (weight 370,
        # deficit 25 over Ĉ=345).  Swap-relief increments are [30, 10, -20,
        # -25, -30]: the cumsum [30, 40, 20, -5, -35] crosses the deficit at
        # k=1 but is NOT sorted, so raw bisection probes 20, -5, -35, decides
        # six swaps are needed (> 5 available) and wrongly falls back to the
        # lightest-5 — a different index set than the one-swap repair.
        return EpochInstance(
            tx_counts=[100, 90, 65, 60, 55, 70, 80, 85, 85, 85],
            latencies=[10.0] * 10,
            config=MVComConfig(alpha=1.5, capacity=345, n_min_fraction=0.3),
        )

    def test_minimal_swap_repair_not_lightest_n_fallback(self):
        instance = self._instance()
        thread = _thread(cardinality=5)
        assert thread.initialize(instance, _IdentityRng())
        picked = set(int(p) for p in thread.solution.selected_positions())
        # One swap (heaviest pick 0 out, lightest outsider 5 in) repairs the
        # draw; the broken bisection instead returned the lightest five
        # shards {2, 3, 4, 5, 6}, erasing the randomness of Alg. 2.
        assert picked == {1, 2, 3, 4, 5}
        assert picked != {2, 3, 4, 5, 6}
        assert thread.solution.capacity_feasible

    def test_initialize_feasible_across_random_draws(self):
        """Whatever the draw, a feasible cardinality must initialise feasible."""
        for seed in range(8):
            instance = random_instance(14, seed=seed, capacity=None)
            streams = RandomStreams(seed)
            np_rng = streams.get("init")
            for cardinality in range(1, instance.max_feasible_cardinality + 1):
                thread = _thread(cardinality)
                assert thread.initialize(instance, np_rng)
                assert thread.solution.count == cardinality
                assert thread.solution.capacity_feasible


class TestRebaseBestRepairs:
    """Bug 2: the carried incumbent must come back feasible after a rebase."""

    def _instance(self, n: int = 10) -> EpochInstance:
        return EpochInstance(
            tx_counts=[100] * n,
            latencies=[1.0] * n,
            config=MVComConfig(alpha=1.5, capacity=100 * n, n_min_fraction=0.5),
        )

    def test_leave_below_n_min_repads_cardinality(self):
        instance = self._instance(10)  # n_min = 5
        solver = StochasticExploration(SEConfig())
        best = Solution.from_indices(instance, [0, 1, 2, 3, 4])
        assert best.feasible
        smaller = instance.without(0)  # 9 shards -> n_min = ceil(4.5) = 5
        assert smaller.n_min == 5
        rebased = solver._rebase_best(best, smaller)
        # The raw rebase has count 4 < 5; capacity was never violated, so the
        # old trim-only path returned it infeasible as-is.
        assert rebased.count >= smaller.n_min
        assert rebased.feasible

    def test_rebase_preserves_surviving_selection(self):
        instance = self._instance(10)
        solver = StochasticExploration(SEConfig())
        best = Solution.from_indices(instance, [0, 1, 2, 3, 4])
        smaller = instance.without(9)  # victim was not selected
        rebased = solver._rebase_best(best, smaller)
        assert set(rebased.selected_ids()) == {0, 1, 2, 3, 4}


class TestRepairMoves:
    """The shared repair moves in repro.core.repair."""

    def test_repair_capacity_trims_lowest_value(self):
        instance = random_instance(12, seed=3, capacity=6_000)
        over = Solution(instance, np.ones(12, dtype=bool))
        assert not over.capacity_feasible
        repair_capacity(instance, over)
        assert over.capacity_feasible

    def test_repair_feasibility_restores_both_constraints(self):
        for seed in range(6):
            instance = random_instance(15, seed=seed)
            broken = Solution(instance, np.ones(15, dtype=bool))
            repair_feasibility(instance, broken)
            assert broken.feasible, f"seed {seed}: {broken}"

    def test_repair_cardinality_reexported_from_baselines(self):
        """Compat: the historical import path must keep working."""
        from repro.baselines.base import repair_cardinality as reexported

        assert reexported is repair_cardinality


class TestLeaveStreamIsolation:
    """Bug 3: per-replica leave streams, keyed by stable replica identity."""

    def _spawn(self, instance, seed=7):
        solver = StochasticExploration(SEConfig(num_threads=4, seed=seed))
        streams = RandomStreams(seed)
        return solver, streams, solver._spawn_replicas(instance, streams)

    def test_leave_reinit_independent_of_replica_order(self):
        instance = random_instance(16, seed=11)
        _, streams_fwd, replicas_fwd = self._spawn(instance)
        _, streams_rev, replicas_rev = self._spawn(instance)
        # Victim: some shard that at least one thread currently selects, so
        # the leave actually re-initialises solutions.
        victim = next(
            sid
            for replica in replicas_fwd
            for thread in replica.threads
            if thread.solution is not None
            for sid in thread.solution.selected_ids()
        )
        event = CommitteeEvent(iteration=0, kind=EventKind.LEAVE, shard_id=victim)
        StochasticExploration._apply_leave(instance, replicas_fwd, event, streams_fwd)
        StochasticExploration._apply_leave(
            instance, list(reversed(replicas_rev)), event, streams_rev
        )
        by_id = {replica.replica_id: replica for replica in replicas_rev}
        for replica in replicas_fwd:
            twin = by_id[replica.replica_id]
            for thread, twin_thread in zip(replica.threads, twin.threads):
                assert thread.cardinality == twin_thread.cardinality
                if thread.solution is None:
                    assert twin_thread.solution is None
                else:
                    # A shared stream hands each replica a different slice of
                    # one sequence, so reversing iteration order permuted the
                    # re-initialised solutions across replicas.
                    assert thread.solution.selected == twin_thread.solution.selected

    def test_replica_ids_are_stable_identities(self):
        instance = random_instance(12, seed=2)
        _, _, replicas = self._spawn(instance)
        assert [replica.replica_id for replica in replicas] == list(range(len(replicas)))
