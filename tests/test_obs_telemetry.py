"""The repro.obs hub, sinks, and profiling hook, plus hot-path emissions."""

import io
import json

import numpy as np
import pytest

from repro.chain.committee import calibrated_verify_mean
from repro.chain.node import spawn_nodes
from repro.chain.params import ChainParams
from repro.chain.pbft import run_pbft_round
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.obs.profiling import hotspot_rows, profile_call
from repro.obs.sinks import JsonlSink, RingBufferSink, TraceDecodeError, read_jsonl
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomStreams


# --------------------------------------------------------------------- #
# the null hub
# --------------------------------------------------------------------- #
def test_null_telemetry_is_inert():
    hub = NULL_TELEMETRY
    assert hub.enabled is False
    hub.event("x", a=1)
    hub.count("c", 3)
    hub.gauge("g", 2.0)
    hub.observe("h", 1.0)
    hub.record_span("s", 0.0, 1.0)
    with hub.span("outer"):
        pass
    assert hub.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": {},
        "emitted": 0,
    }
    hub.close()


def test_telemetry_is_a_null_telemetry():
    # NullTelemetry doubles as the injected-parameter type annotation.
    assert isinstance(Telemetry(), NullTelemetry)


# --------------------------------------------------------------------- #
# the recording hub
# --------------------------------------------------------------------- #
def test_default_clock_is_emission_sequence():
    ring = RingBufferSink()
    hub = Telemetry(sinks=[ring])
    hub.event("a")
    hub.event("b")
    records = ring.records
    assert [r["seq"] for r in records] == [1, 2]
    # Deterministic t: the pre-emission sequence number, no wall field.
    assert [r["t"] for r in records] == [0.0, 1.0]
    assert all("wall" not in r for r in records)


def test_injectable_clock_stamps_t():
    ticks = iter([10.0, 20.0])
    ring = RingBufferSink()
    hub = Telemetry(clock=lambda: next(ticks), sinks=[ring])
    hub.event("a")
    hub.event("b")
    assert [r["t"] for r in ring.records] == [10.0, 20.0]


def test_wall_clock_adds_wall_field_and_span_wall_dt():
    wall = iter([1.0, 2.0, 5.0, 9.0])
    ring = RingBufferSink()
    hub = Telemetry(wall_clock=lambda: next(wall), sinks=[ring])
    with hub.span("work"):
        hub.event("inside")
    span = ring.records[-1]
    assert span["type"] == "span"
    # enter reads 1.0, the inner event stamps 2.0, exit reads 5.0 for the
    # duration, and the span record itself is stamped 9.0 on emission.
    assert span["wall_dt"] == pytest.approx(5.0 - 1.0)
    assert ring.records[0]["wall"] == 2.0
    assert span["wall"] == 9.0


def test_counters_gauges_histograms_aggregate():
    hub = Telemetry(sinks=[RingBufferSink()])
    hub.count("resets", 2)
    hub.count("resets", 3)
    hub.gauge("depth", 1.0)
    hub.gauge("depth", 4.0)
    for value in (1.0, 2.0, 3.0):
        hub.observe("age", value)
    snap = hub.snapshot()
    assert snap["counters"]["resets"] == 5
    assert snap["gauges"]["depth"] == 4.0
    assert snap["histograms"]["age"] == {
        "count": 3,
        "total": 6.0,
        "mean": 2.0,
        "min": 1.0,
        "max": 3.0,
    }
    assert snap["emitted"] == 7


def test_nested_spans_record_depth_and_aggregate():
    ring = RingBufferSink()
    hub = Telemetry(sinks=[ring])
    with hub.span("outer"):
        with hub.span("inner"):
            hub.event("tick")
    spans = [r for r in ring.records if r["type"] == "span"]
    by_name = {r["name"]: r for r in spans}
    assert by_name["inner"]["depth"] == 1  # emitted while outer is still open
    assert by_name["outer"]["depth"] == 0
    assert hub.snapshot()["spans"]["outer"]["count"] == 1


def test_span_marks_error_status_on_exception():
    ring = RingBufferSink()
    hub = Telemetry(sinks=[ring])
    with pytest.raises(RuntimeError):
        with hub.span("doomed"):
            raise RuntimeError("boom")
    assert ring.records[-1]["status"] == "error"


def test_record_span_uses_caller_timestamps():
    ring = RingBufferSink()
    hub = Telemetry(sinks=[ring])
    hub.record_span("pbft", 3.0, 7.5, tag="r0")
    record = ring.records[-1]
    assert (record["t0"], record["t1"], record["dt"]) == (3.0, 7.5, 4.5)
    assert record["tag"] == "r0"
    assert hub.snapshot()["spans"]["pbft"]["total_dt"] == pytest.approx(4.5)


# --------------------------------------------------------------------- #
# sinks
# --------------------------------------------------------------------- #
def test_ring_buffer_evicts_oldest():
    ring = RingBufferSink(capacity=2)
    for i in range(4):
        ring.emit({"seq": i})
    assert [r["seq"] for r in ring.records] == [2, 3]
    ring.clear()
    assert len(ring) == 0
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        sink.emit({"seq": 1, "name": "a", "mask": np.array([True, False]), "n": np.int64(3)})
        sink.emit({"seq": 2, "name": "b", "members": {2, 1}})
    records = read_jsonl(path)
    assert records[0]["mask"] == [True, False]
    assert records[0]["n"] == 3
    assert records[1]["members"] == [1, 2]
    with pytest.raises(ValueError):
        sink.emit({"seq": 3})  # closed


def test_jsonl_sink_accepts_file_object():
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    sink.emit({"seq": 1})
    sink.close()
    assert json.loads(buffer.getvalue()) == {"seq": 1}
    assert not buffer.closed  # caller-owned handles stay open


def test_read_jsonl_rejects_malformed_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"seq": 1}\n\nnot json\n')
    with pytest.raises(TraceDecodeError, match="bad.jsonl:3"):
        read_jsonl(path)


def test_telemetry_close_closes_owned_sinks(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path)
    hub = Telemetry(sinks=[sink])
    hub.event("only")
    hub.close()
    assert len(read_jsonl(path)) == 1
    with pytest.raises(ValueError):
        sink.emit({"seq": 2})


# --------------------------------------------------------------------- #
# profiling
# --------------------------------------------------------------------- #
def test_profile_call_passes_result_and_emits_hotspots():
    ring = RingBufferSink()
    hub = Telemetry(sinks=[ring])
    result, rows = profile_call(
        sorted, list(range(200))[::-1], telemetry=hub, name="sort", top_n=3
    )
    assert result == list(range(200))
    assert 0 < len(rows) <= 3
    assert {"function", "calls", "tottime_s", "cumtime_s"} <= set(rows[0])
    event = ring.records[-1]
    assert event["name"] == "profile.hotspots"
    assert event["target"] == "sort"
    assert event["hotspots"] == rows


def test_hotspot_rows_rejects_nonpositive_top_n():
    import cProfile

    with pytest.raises(ValueError):
        hotspot_rows(cProfile.Profile(), top_n=0)


# --------------------------------------------------------------------- #
# hot-path emissions
# --------------------------------------------------------------------- #
def _small_instance(num_committees=12, seed=0):
    return generate_epoch_workload(
        WorkloadConfig(num_committees=num_committees, capacity=1000 * num_committees, seed=seed)
    ).instance


def test_se_solve_emits_transitions_resets_and_rounds():
    ring = RingBufferSink()
    hub = Telemetry(sinks=[ring])
    config = SEConfig(num_threads=2, max_iterations=50, convergence_window=25, seed=0)
    StochasticExploration(config, telemetry=hub).solve(_small_instance())
    names = {r["name"] for r in ring.records}
    assert {"se.bootstrap", "se.transition", "se.round", "se.done"} <= names
    assert hub.snapshot()["counters"]["se.reset_broadcasts"] > 0
    transition = next(r for r in ring.records if r["name"] == "se.transition")
    assert {"iteration", "replica", "cardinality", "swap_out", "swap_in", "utility"} <= set(
        transition
    )


def test_se_solve_is_byte_identical_under_telemetry():
    instance = _small_instance()
    config = SEConfig(num_threads=3, max_iterations=80, convergence_window=40, seed=7)
    plain = StochasticExploration(config).solve(instance)
    traced = StochasticExploration(
        config, telemetry=Telemetry(sinks=[RingBufferSink()])
    ).solve(instance)
    assert np.array_equal(plain.best_mask, traced.best_mask)
    assert plain.best_utility == traced.best_utility
    assert np.array_equal(plain.utility_trace, traced.utility_trace)
    assert np.array_equal(plain.current_trace, traced.current_trace)
    assert plain.iterations == traced.iterations


def test_sim_engine_emits_run_stats():
    ring = RingBufferSink()
    engine = SimulationEngine(telemetry=Telemetry(sinks=[ring]))
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run()
    record = next(r for r in ring.records if r["name"] == "sim.run")
    assert record["events"] == 2
    assert record["t_end"] == pytest.approx(2.0)


def test_pbft_round_emits_sim_time_span():
    ring = RingBufferSink()
    hub = Telemetry(sinks=[ring])
    streams = RandomStreams(3)
    params = ChainParams()
    members = spawn_nodes(count=7, byzantine_fraction=0.0, rng=streams.get("members"))
    outcome = run_pbft_round(
        members=members,
        rng=streams.get("pbft"),
        network_params=params.network,
        verify_mean_s=calibrated_verify_mean(params),
        round_tag="t-span",
        telemetry=hub,
    )
    assert outcome.committed
    span = next(r for r in ring.records if r["name"] == "chain.pbft.round")
    # The span sits on simulation time, not the hub's sequence clock.
    assert span["t0"] == 0.0
    assert span["dt"] == pytest.approx(outcome.latency)
    assert span["tag"] == "t-span"
    assert "commit-quorum" in span["stages"]
