"""Eth2-scale path: chunked kernels, streaming crosslinks, and the bench CLI.

The tentpole claims under test:

* the chunked PBFT and formation kernels are **byte-identical** to their
  unchunked forms at every chunk size (including one-committee chunks and
  budgets larger than the whole batch), and leave the calling RNG in the
  same state;
* chunking bounds peak scratch memory (tracemalloc, which tracks numpy's
  allocator);
* the streaming epoch (:meth:`ElasticoSimulation.run_epoch_streaming` +
  :class:`CrosslinkAggregator`) replays the object epoch byte for byte;
* the ``eth2scale`` preset / CLI verb exist and run at toy scale.
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.chain import fastpath
from repro.chain.elastico import ElasticoSimulation
from repro.chain.fastpath import (
    _pbft_kernel_batch,
    formation_kernel,
    kernel_bytes_per_committee,
    kernel_chunk_rows,
)
from repro.chain.final import CrosslinkAggregator
from repro.chain.params import ChainParams, NetworkParams
from repro.harness.presets import PRESETS
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.sim.rng import spawn_rng


def _committee_stack(num_committees, size, seed=0):
    rng = spawn_rng(seed, "stack")
    honest = rng.random((num_committees, size)) > 0.1
    honest[:, 0] = True  # eligible committees have an honest primary
    speeds = 0.5 + rng.random((num_committees, size))
    return honest, speeds


def _run_kernel(honest, speeds, max_batch_bytes):
    rng = spawn_rng(7, "round")
    commit, prepared = _pbft_kernel_batch(
        honest, speeds, rng, NetworkParams(), 22.0, max_batch_bytes=max_batch_bytes
    )
    # The end-state probe: chunking must not move the caller's stream.
    return commit, prepared, rng.random()


class TestChunkedKernelByteIdentity:
    @pytest.mark.parametrize("chunk_rows", [1, 3, 5, 13, 64])
    def test_pbft_kernel_chunking_is_byte_identical(self, chunk_rows):
        """Any chunk size (1 row ... > K rows) replays the unchunked bytes."""
        honest, speeds = _committee_stack(13, 8)
        budget = chunk_rows * kernel_bytes_per_committee(8)
        assert kernel_chunk_rows(8, budget) == chunk_rows
        base = _run_kernel(honest, speeds, None)
        chunked = _run_kernel(honest, speeds, budget)
        np.testing.assert_array_equal(chunked[0], base[0])
        np.testing.assert_array_equal(chunked[1], base[1])
        assert chunked[2] == base[2]

    def test_formation_kernel_chunking_is_byte_identical(self):
        from repro.chain.node import spawn_nodes

        nodes = spawn_nodes(
            count=480, byzantine_fraction=0.1, rng=spawn_rng(3, "nodes")
        )
        base = None
        for budget in (None, 10**9, 96 * 11, 96, 1):
            rng = spawn_rng(3, "form")
            result = formation_kernel(
                nodes, 60, 8, 600.0, "genesis", 0.5, rng, max_batch_bytes=budget
            )
            probe = rng.random()
            if base is None:
                base = (result, probe)
                continue
            assert probe == base[1]
            assert result == base[0]

    def test_chunk_rows_floor_and_validation(self):
        assert kernel_chunk_rows(8, 1) == 1  # floor: never zero rows
        assert kernel_chunk_rows(8, None) == 2**31  # None disables chunking
        with pytest.raises(ValueError, match="max_batch_bytes"):
            ChainParams(max_batch_bytes=0)
        with pytest.raises(ValueError, match="max_batch_bytes"):
            ChainParams(max_batch_bytes=-1)

    def test_chunking_bounds_peak_scratch(self):
        """A small budget caps live scratch well below the monolithic peak."""
        honest, speeds = _committee_stack(256, 64)
        budget = 23 * kernel_bytes_per_committee(64)  # ~4 MiB of scratch

        def peak(max_batch_bytes):
            tracemalloc.start()
            tracemalloc.reset_peak()
            _run_kernel(honest, speeds, max_batch_bytes)
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak_bytes

        unchunked = peak(None)
        chunked = peak(budget)
        assert chunked < unchunked / 3, (
            f"chunked peak {chunked / 2**20:.1f} MiB vs "
            f"unchunked {unchunked / 2**20:.1f} MiB"
        )


class TestStreamingEpoch:
    def _params(self, **overrides):
        defaults = dict(
            num_nodes=480, committee_size=8, seed=11, chain_engine="fastpath"
        )
        defaults.update(overrides)
        return ChainParams(**defaults)

    def test_streaming_epoch_matches_object_epoch(self):
        object_sim = ElasticoSimulation(self._params())
        streaming_sim = ElasticoSimulation(self._params())
        outcome = object_sim.run_epoch()
        streamed = streaming_sim.run_epoch_streaming()

        assert streamed.shards_submitted == len(outcome.shard_blocks)
        assert streamed.randomness == outcome.randomness
        assert streamed.consensus_latencies == outcome.consensus_latencies
        assert outcome.final is not None and streamed.final is not None
        assert streamed.final.block.block_hash == outcome.final.block.block_hash
        assert streamed.final.block.permitted_shards == outcome.final.block.permitted_shards
        np.testing.assert_array_equal(
            streamed.final.permitted_mask, outcome.final.permitted_mask
        )
        assert streamed.final.instance.shard_ids == outcome.final.instance.shard_ids

    def test_streaming_epoch_is_chunk_invariant(self):
        base = ElasticoSimulation(self._params()).run_epoch_streaming()
        tiny = ElasticoSimulation(
            self._params(max_batch_bytes=4096)
        ).run_epoch_streaming()
        assert tiny.final.block.block_hash == base.final.block.block_hash
        assert tiny.consensus_latencies == base.consensus_latencies

    def test_streaming_requires_fastpath(self):
        sim = ElasticoSimulation(self._params(chain_engine="des"))
        with pytest.raises(ValueError, match="fastpath"):
            sim.run_epoch_streaming()

    def test_chunks_telemetry_event(self):
        ring = RingBufferSink(4096)
        telemetry = Telemetry(sinks=[ring])
        params = self._params(max_batch_bytes=3 * kernel_bytes_per_committee(8))
        sim = ElasticoSimulation(params, telemetry=telemetry)
        sim.run_epoch_streaming()
        chunk_events = [
            r for r in ring.records if r.get("name") == "chain.fastpath.chunks"
        ]
        assert chunk_events, "the batched stage-3 path must emit its chunk plan"
        event = chunk_events[0]
        assert event["committee_size"] == 8
        assert event["chunk_rows"] == 3
        assert event["max_batch_bytes"] == params.max_batch_bytes
        assert event["chunks"] == -(-event["committees"] // event["chunk_rows"])


class TestCrosslinkAggregator:
    def test_add_extend_and_views(self):
        aggregator = CrosslinkAggregator(capacity_hint=2)
        aggregator.add(5, 1400, 600.5)
        aggregator.extend(
            np.array([7, 9]), np.array([100, 200]), np.array([700.0, 650.0])
        )
        assert aggregator.count == 3
        np.testing.assert_array_equal(aggregator.ids, [5, 7, 9])
        np.testing.assert_array_equal(aggregator.tx_counts, [1400, 100, 200])
        # N_max cutoff keeps the fastest arrivals, stable order.
        np.testing.assert_array_equal(aggregator.arrival_positions(0.8), [0, 2])

    def test_extend_validates_lengths(self):
        aggregator = CrosslinkAggregator()
        with pytest.raises(ValueError, match="equal length"):
            aggregator.extend(np.array([1]), np.array([1, 2]), np.array([1.0]))

    def test_growth_beyond_hint(self):
        aggregator = CrosslinkAggregator(capacity_hint=1)
        for i in range(100):
            aggregator.add(i, i, float(i))
        np.testing.assert_array_equal(aggregator.ids, np.arange(100))


class TestNicGeometryCache:
    def test_lru_eviction_bounds_the_cache(self):
        fastpath._NIC_GEOMETRY.clear()
        limit = fastpath._NIC_GEOMETRY_MAX_ENTRIES
        for c in range(4, 4 + limit + 5):
            fastpath._nic_geometry(c, 0.002)
        assert len(fastpath._NIC_GEOMETRY) == limit
        # The oldest entries were evicted, the newest survive.
        assert (4, 0.002) not in fastpath._NIC_GEOMETRY
        assert (4 + limit + 4, 0.002) in fastpath._NIC_GEOMETRY

    def test_lru_hit_refreshes_recency(self):
        fastpath._NIC_GEOMETRY.clear()
        limit = fastpath._NIC_GEOMETRY_MAX_ENTRIES
        for c in range(4, 4 + limit):
            fastpath._nic_geometry(c, 0.002)
        fastpath._nic_geometry(4, 0.002)  # touch the oldest entry
        fastpath._nic_geometry(4 + limit, 0.002)  # force one eviction
        assert (4, 0.002) in fastpath._NIC_GEOMETRY
        assert (5, 0.002) not in fastpath._NIC_GEOMETRY


class TestEth2ScaleHarness:
    def test_preset_exists_with_beacon_shape(self):
        preset = PRESETS["eth2scale"]
        assert preset.extras["committee_size"] == 2**7
        assert max(preset.extras["network_sizes"]) == 2**10 * 2**7
        assert preset.num_committees == 2**10

    def test_runner_rejects_descending_sizes(self):
        from repro.harness.eth2scale import run_eth2scale

        with pytest.raises(ValueError, match="ascending"):
            run_eth2scale(network_sizes=(1024, 512), out_path=None)

    def test_cli_smoke(self, tmp_path, capsys):
        from repro.harness.cli import main

        out = tmp_path / "bench.json"
        code = main(
            [
                "eth2scale",
                "--network-sizes", "512",
                "--committee-size", "8",
                "--iterations", "200",
                "--gamma", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        record = json.loads(out.read_text())
        assert record["figure"] == "eth2scale"
        (point,) = record["points"]
        assert point["nodes"] == 512
        assert point["shards_submitted"] > 0
        assert point["se_wall_s"] <= point["epoch_wall_s"]
        assert "eth2scale" in capsys.readouterr().out
