"""Cross-layer calibration tests.

The fast closed-form latency model (`repro.data.latency`) and the
mechanistic protocol simulation (`repro.chain`) describe the same two
quantities.  These tests pin the calibration: the DES-measured means must
land near the paper's targets (PoW 600 s, PBFT 54.5 s) that the closed form
uses directly, so Figs. 8-14 (closed form) and Fig. 2 (DES) stay mutually
consistent.
"""

import numpy as np
import pytest

from repro.chain.committee import calibrated_verify_mean
from repro.chain.node import spawn_nodes
from repro.chain.params import ChainParams
from repro.chain.pbft import run_pbft_round
from repro.chain.pow import solve_times
from repro.data.latency import PAPER_CONSENSUS_MEAN_S, PAPER_FORMATION_MEAN_S


class TestPowCalibration:
    def test_single_node_solve_mean_is_600s(self):
        params = ChainParams()
        assert params.pow_mean_solve_s == PAPER_FORMATION_MEAN_S == 600.0
        nodes = spawn_nodes(3_000, 0.0, np.random.default_rng(1), hash_power_sigma=0.01)
        times = solve_times(nodes, params.pow_mean_solve_s, np.random.default_rng(2))
        assert times.mean() == pytest.approx(600.0, rel=0.08)


class TestPbftCalibration:
    def test_des_consensus_mean_near_paper_target(self):
        """Run many independent PBFT rounds on the DES; the mean commit
        latency must land within +/-35% of the paper's 54.5 s (the closed
        form and the mechanistic model must tell the same story)."""
        params = ChainParams()
        verify_mean = calibrated_verify_mean(params)
        latencies = []
        for seed in range(24):
            members = spawn_nodes(params.committee_size, 0.0, np.random.default_rng(seed))
            outcome = run_pbft_round(
                members, np.random.default_rng(1000 + seed), params.network, verify_mean,
                round_tag=f"cal-{seed}",
            )
            assert outcome.committed
            latencies.append(outcome.latency)
        mean = float(np.mean(latencies))
        assert mean == pytest.approx(PAPER_CONSENSUS_MEAN_S, rel=0.35)

    def test_consensus_spread_is_a_band(self):
        """Fig. 2(b): consensus latencies vary across committees but stay
        within a bounded band (no exponential blow-ups)."""
        params = ChainParams()
        verify_mean = calibrated_verify_mean(params)
        latencies = []
        for seed in range(24):
            members = spawn_nodes(params.committee_size, 0.0, np.random.default_rng(seed))
            outcome = run_pbft_round(
                members, np.random.default_rng(2000 + seed), params.network, verify_mean,
                round_tag=f"band-{seed}",
            )
            latencies.append(outcome.latency)
        latencies = np.asarray(latencies)
        assert latencies.std() > 0.05 * latencies.mean()
        assert latencies.max() < 4 * latencies.min()
