"""Tests for the fairness metrics."""

import numpy as np
import pytest

from repro.metrics.fairness import (
    fairness_report,
    jain_index,
    selection_counts,
    starved_fraction,
)


class TestJain:
    def test_even_allocation_is_one(self):
        assert jain_index([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_index([5, 0, 0, 0, 0]) == pytest.approx(1 / 5)

    def test_all_zero_is_trivially_even(self):
        assert jain_index([0, 0, 0]) == 1.0

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1, 2])


class TestSelectionCounts:
    def test_tallies_across_epochs(self):
        epochs = [
            ([1, 2, 3], [True, False, True]),
            ([1, 2, 4], [True, True, False]),
        ]
        counts = selection_counts(epochs)
        assert counts == {1: 2, 2: 1, 3: 1, 4: 0}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            selection_counts([([1, 2], [True])])

    def test_starved_fraction(self):
        counts = {1: 2, 2: 0, 3: 0, 4: 1}
        assert starved_fraction(counts) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            starved_fraction({})


class TestReportOnSchedulerOutput:
    def test_report_from_se_epochs(self):
        """Wire fairness accounting to actual scheduler selections."""
        from repro.core.se import SEConfig, StochasticExploration
        from repro.data.workload import WorkloadConfig, multi_epoch_workloads

        workloads = multi_epoch_workloads(
            WorkloadConfig(num_committees=20, capacity=16_000, seed=8), num_epochs=3
        )
        epochs = []
        for workload in workloads:
            result = StochasticExploration(
                SEConfig(num_threads=2, max_iterations=500, convergence_window=250, seed=1)
            ).solve(workload.instance)
            epochs.append((workload.instance.shard_ids, result.best_mask.tolist()))
        report = fairness_report(epochs)
        # 16 arrive per epoch, but the straggling 20% differ across epochs,
        # so all 20 committees appear somewhere in the union.
        assert report["committees_seen"] == 20
        assert 0.0 < report["jain_index"] <= 1.0
        assert 0.0 <= report["starved_fraction"] < 1.0
