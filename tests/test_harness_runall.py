"""Tests for the shared run_all_algorithms helper (incl. extras path)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.data.workload import WorkloadConfig, generate_epoch_workload
from repro.harness.experiments import extra_baselines, paper_baselines, run_all_algorithms
from repro.harness.presets import PRESETS


@pytest.fixture(scope="module")
def setup():
    workload = generate_epoch_workload(WorkloadConfig(num_committees=20, capacity=16_000, seed=3))
    preset = replace(PRESETS["fig12"], num_committees=20, capacity=16_000, gamma=2,
                     se_iterations=300, baseline_iterations=300, convergence_window=300)
    return workload.instance, preset


def test_paper_trio_names():
    assert [s.name for s in paper_baselines(1)] == ["SA", "DP", "WOA"]
    assert [s.name for s in extra_baselines(1)] == ["Greedy", "Random"]


def test_default_records_cover_se_plus_trio(setup):
    instance, preset = setup
    records = run_all_algorithms(instance, preset, seed=1)
    assert set(records) == {"SE", "SA", "DP", "WOA"}


def test_extras_flag_adds_reference_points(setup):
    instance, preset = setup
    records = run_all_algorithms(instance, preset, seed=1, include_extras=True)
    assert set(records) == {"SE", "SA", "DP", "WOA", "Greedy", "Random"}


def test_records_are_internally_consistent(setup):
    instance, preset = setup
    records = run_all_algorithms(instance, preset, seed=1, include_extras=True)
    for name, record in records.items():
        assert record["weight"] <= instance.capacity, name
        assert record["utility"] == pytest.approx(instance.utility(record["mask"])), name
        assert record["count"] == int(np.asarray(record["mask"]).sum()), name
        assert record["valuable_degree"] >= 0, name
        assert len(record["trace"]) >= 1, name


def test_gamma_override_respected(setup):
    instance, preset = setup
    low = run_all_algorithms(instance, preset, seed=1, gamma=1)["SE"]
    high = run_all_algorithms(instance, preset, seed=1, gamma=4)["SE"]
    assert high["utility"] >= 0.99 * low["utility"]
