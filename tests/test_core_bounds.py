"""Tests for the scalable optimality bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import certify, fractional_knapsack_bound, lagrangian_bound
from repro.core.exact import branch_and_bound_optimum, brute_force_optimum
from repro.core.problem import EpochInstance, MVComConfig
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, generate_epoch_workload

from tests.conftest import random_instance


class TestAgainstExact:
    @pytest.mark.parametrize("seed", range(6))
    def test_bounds_dominate_the_optimum(self, seed):
        instance = random_instance(14, seed=seed)
        optimum = brute_force_optimum(instance).utility
        assert fractional_knapsack_bound(instance) >= optimum - 1e-6
        assert lagrangian_bound(instance) >= optimum - 1e-6

    @pytest.mark.parametrize("seed", range(6))
    def test_lagrangian_matches_lp_bound(self, seed):
        """LP duality: the optimised Lagrangian equals the fractional bound."""
        instance = random_instance(14, seed=seed)
        lp = fractional_knapsack_bound(instance)
        lagrange = lagrangian_bound(instance)
        assert lagrange == pytest.approx(lp, rel=1e-9, abs=1e-6)

    def test_bound_is_reasonably_tight(self):
        instance = random_instance(30, seed=9)
        optimum = branch_and_bound_optimum(instance).utility
        bound = fractional_knapsack_bound(instance)
        assert bound <= 1.1 * optimum  # one fractional item of slack


class TestCertify:
    def test_certificate_on_trace_workload(self):
        """SE at paper scale certifies within a few percent of optimal."""
        workload = generate_epoch_workload(
            WorkloadConfig(num_committees=200, capacity=200_000, seed=13)
        )
        result = StochasticExploration(
            SEConfig(num_threads=5, max_iterations=5_000, convergence_window=1_200, seed=2)
        ).solve(workload.instance)
        certificate = certify(workload.instance, result.best_utility)
        assert certificate["upper_bound"] >= result.best_utility - 1e-6
        assert certificate["gap_fraction"] <= 0.05

    def test_gap_zero_when_achieving_bound(self):
        config = MVComConfig(alpha=1.5, capacity=10**9)
        instance = EpochInstance([100, 200], [10.0, 20.0], config)
        everything = float(instance.values.sum())
        certificate = certify(instance, everything)
        assert certificate["gap_fraction"] == pytest.approx(0.0, abs=1e-9)


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=800),
                  st.floats(min_value=0, max_value=500, allow_nan=False)),
        min_size=2, max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_bounds_dominate_every_feasible_selection(shards):
    tx_counts = [s[0] for s in shards]
    latencies = [s[1] for s in shards]
    config = MVComConfig(alpha=2.0, capacity=max(sum(tx_counts) // 2, 1), n_min_fraction=0.0)
    instance = EpochInstance(tx_counts, latencies, config)
    bound = min(fractional_knapsack_bound(instance), lagrangian_bound(instance))
    optimum = brute_force_optimum(instance).utility
    assert bound >= optimum - 1e-6
