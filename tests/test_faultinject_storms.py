"""Tests for repro.faultinject: storms, invariants, shrinking, replay."""

import json

import numpy as np
import pytest

from repro.core.dynamics import CommitteeEvent, DynamicSchedule, EventKind
from repro.core.se import InfeasibleEpochError, SEConfig, StochasticExploration
from repro.faultinject import (
    DEFAULT_ARMED,
    StormConfig,
    StormInvariantViolation,
    StormProbe,
    build_storm_instance,
    check_trace_monotone,
    event_from_json,
    event_to_json,
    generate_storm,
    load_reproducer,
    make_reproducer,
    replay_reproducer,
    run_epoch_storm,
    run_storm,
    save_reproducer,
    shrink_events,
    shrink_storm,
)
from repro.sim.rng import RandomStreams

from tests.conftest import random_instance

#: Small, fast storm used by most tests.
FAST = StormConfig(
    seed=3, num_events=40, num_committees=18, max_iterations=400, convergence_window=150
)

#: The config (found by seed scan) whose storm relaxes N_min mid-run —
#: the honest trigger for the opt-in strict-n-min drill invariant.
DRILL = StormConfig(
    seed=13,
    num_events=60,
    num_committees=12,
    capacity=9_000,
    max_iterations=400,
    convergence_window=150,
    leave_fraction=0.6,
    min_live=1,
)
DRILL_ARMED = DEFAULT_ARMED + ("strict-n-min",)


def _assert_results_identical(a, b):
    assert np.array_equal(a.best_mask, b.best_mask)
    assert a.best_utility == b.best_utility
    assert np.array_equal(a.utility_trace, b.utility_trace)
    assert np.array_equal(a.current_trace, b.current_trace)
    assert a.iterations == b.iterations
    assert a.events_applied == b.events_applied
    assert a.final_instance.shard_ids == b.final_instance.shard_ids


class TestGenerateStorm:
    def test_deterministic_per_seed(self):
        instance = build_storm_instance(FAST)
        first = generate_storm(instance, FAST, RandomStreams(FAST.seed))
        second = generate_storm(instance, FAST, RandomStreams(FAST.seed))
        assert first == second
        assert len(first) == FAST.num_events

    def test_different_seeds_differ(self):
        instance = build_storm_instance(FAST)
        a = generate_storm(instance, FAST, RandomStreams(1))
        b = generate_storm(instance, FAST, RandomStreams(2))
        assert a != b

    def test_events_respect_membership(self):
        """Replaying the schedule never leaves fewer than min_live committees."""
        instance = build_storm_instance(FAST)
        events = generate_storm(instance, FAST, RandomStreams(FAST.seed))
        live = set(instance.shard_ids)
        ever = set(live)
        # Stable sort by iteration = the order the solver applies them.
        for event in sorted(events, key=lambda e: e.iteration):
            if event.kind is EventKind.LEAVE:
                assert event.shard_id in ever  # duplicates target known ids
                live.discard(event.shard_id)
            else:
                assert event.tx_count is not None and event.latency is not None
                live.add(event.shard_id)
                ever.add(event.shard_id)
            assert len(live) >= FAST.min_live

    def test_storm_includes_leaves_joins_and_stragglers(self):
        instance = build_storm_instance(FAST)
        events = generate_storm(instance, FAST, RandomStreams(FAST.seed))
        kinds = {event.kind for event in events}
        assert kinds == {EventKind.LEAVE, EventKind.JOIN}
        ddl = float(instance.latencies.max())
        joins = [e for e in events if e.kind is EventKind.JOIN]
        assert any(e.latency > ddl for e in joins), "no DDL-shifting straggler"


class TestRunStorm:
    def test_same_seed_byte_identical_result(self):
        first = run_storm(FAST)
        second = run_storm(FAST)
        assert first.status == second.status == "survived"
        _assert_results_identical(first.result, second.result)
        assert first.boundaries == second.boundaries

    def test_probe_never_perturbs_the_trajectory(self):
        """Armed invariants observe only: bare solve == probed solve."""
        instance = build_storm_instance(FAST)
        events = generate_storm(instance, FAST, RandomStreams(FAST.seed))
        config = SEConfig(
            num_threads=FAST.gamma,
            max_iterations=FAST.max_iterations,
            convergence_window=FAST.convergence_window,
            seed=FAST.seed,
        )
        bare = StochasticExploration(config).solve(
            instance, schedule=DynamicSchedule(events=list(events))
        )
        probed = run_storm(FAST, events=events)
        assert probed.status == "survived"
        _assert_results_identical(bare, probed.result)

    def test_duplicate_leave_tolerated(self):
        instance = build_storm_instance(FAST)
        victim = instance.shard_ids[0]
        events = [
            CommitteeEvent(iteration=50, kind=EventKind.LEAVE, shard_id=victim),
            CommitteeEvent(iteration=60, kind=EventKind.LEAVE, shard_id=victim),
        ]
        outcome = run_storm(FAST, events=events)
        assert outcome.status == "survived"
        assert victim not in outcome.result.final_instance.shard_ids
        assert outcome.result.final_instance.num_shards == instance.num_shards - 1

    def test_leave_storm_to_n_min_stays_feasible(self):
        """Leaves down to the cardinality floor must yield a feasible result."""
        instance = build_storm_instance(FAST)
        survivors = 4
        events = [
            CommitteeEvent(iteration=20 + 10 * rank, kind=EventKind.LEAVE, shard_id=sid)
            for rank, sid in enumerate(instance.shard_ids[survivors:])
        ]
        outcome = run_storm(FAST, events=events)
        assert outcome.status == "survived"
        final = outcome.result.final_instance
        assert final.num_shards == survivors
        assert outcome.result.best_count >= final.n_min
        assert outcome.result.best_weight <= final.capacity

    def test_leave_storm_below_one_shard_degrades_gracefully(self):
        """Emptying the epoch raises InfeasibleEpochError, never a bad result."""
        instance = build_storm_instance(FAST)
        events = [
            CommitteeEvent(iteration=20 + 10 * rank, kind=EventKind.LEAVE, shard_id=sid)
            for rank, sid in enumerate(instance.shard_ids)
        ]
        outcome = run_storm(FAST, events=events)
        assert outcome.status == "infeasible"
        assert outcome.result is None

    def test_ddl_shifting_join_revalues_shards(self):
        instance = build_storm_instance(FAST)
        straggler_latency = float(instance.latencies.max()) * 1.5
        events = [
            CommitteeEvent(
                iteration=50,
                kind=EventKind.JOIN,
                shard_id=99_999,
                tx_count=1_500,
                latency=straggler_latency,
            )
        ]
        outcome = run_storm(FAST, events=events)
        assert outcome.status == "survived"
        final = outcome.result.final_instance
        assert final.ddl == pytest.approx(straggler_latency)
        # Every pre-existing shard aged by the DDL shift: values dropped.
        for shard_id in instance.shard_ids:
            before = instance.values[instance.position_of(shard_id)]
            after = final.values[final.position_of(shard_id)]
            assert after < before


class TestInvariants:
    def test_unknown_invariant_rejected(self):
        instance = random_instance(10, seed=1)
        solver = StochasticExploration(SEConfig())
        with pytest.raises(ValueError, match="unknown invariants"):
            StormProbe(solver, instance, armed=("no-such-check",))

    def test_trace_monotone_accepts_boundary_dip(self):
        trace = np.array([1.0, 2.0, 3.0, 2.5, 2.6])
        check_trace_monotone(trace, boundaries=[3])

    def test_trace_monotone_rejects_off_boundary_dip(self):
        trace = np.array([1.0, 2.0, 3.0, 2.5, 2.6])
        with pytest.raises(StormInvariantViolation, match="trace-monotone"):
            check_trace_monotone(trace, boundaries=[4])

    def test_strict_n_min_drill_fires_on_mid_storm_relaxation(self):
        assert not build_storm_instance(DRILL).n_min_relaxed
        outcome = run_storm(DRILL, armed=DRILL_ARMED)
        assert outcome.status == "violated"
        assert outcome.signature == "strict-n-min"
        assert outcome.violation.iteration is not None

    def test_default_invariants_hold_on_storm_battery(self):
        """The acceptance storm: default invariants, several seeds, zero hits."""
        for seed in range(4):
            config = StormConfig(
                seed=seed,
                num_events=40,
                num_committees=14,
                max_iterations=300,
                convergence_window=120,
            )
            outcome = run_storm(config)
            assert outcome.status in ("survived", "infeasible"), outcome.signature
            assert outcome.checks_run > 0

    def test_theorem2_checks_run_on_small_instances(self):
        config = StormConfig(
            seed=5, num_events=40, num_committees=12, max_iterations=400,
            convergence_window=150,
        )
        outcome = run_storm(config)
        assert outcome.status == "survived"
        assert outcome.theorem2_checked > 0


class TestShrinkAndReplay:
    def test_shrink_events_minimality_oracle(self):
        """Pure shrinker: minimal list is 1-minimal under the oracle."""
        events = [
            CommitteeEvent(iteration=10 * k, kind=EventKind.LEAVE, shard_id=k)
            for k in range(12)
        ]
        needed = {3, 7}

        def still_fails(candidate):
            return needed <= {event.shard_id for event in candidate}

        minimal, probes = shrink_events(events, still_fails)
        assert {event.shard_id for event in minimal} == needed
        assert probes > 0

    def test_shrink_events_rejects_passing_schedule(self):
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_events([], lambda candidate: False)

    def test_shrunk_storm_is_one_minimal_and_deterministic(self):
        outcome = run_storm(DRILL, armed=DRILL_ARMED)
        minimal, _ = shrink_storm(outcome)
        again, _ = shrink_storm(outcome)
        assert minimal == again
        assert 0 < len(minimal) < len(outcome.events)
        # 1-minimal: dropping any single event loses the failure signature.
        for index in range(len(minimal)):
            candidate = minimal[:index] + minimal[index + 1 :]
            replayed = run_storm(DRILL, events=candidate, armed=DRILL_ARMED)
            assert not (
                replayed.status == "violated" and replayed.signature == "strict-n-min"
            ), f"event {index} was removable"

    def test_reproducer_round_trip_and_replay(self, tmp_path):
        outcome = run_storm(DRILL, armed=DRILL_ARMED)
        minimal, _ = shrink_storm(outcome)
        reproducer = make_reproducer(outcome, minimal)
        path = str(tmp_path / "reproducer.json")
        save_reproducer(path, reproducer)
        loaded = load_reproducer(path)
        assert loaded == reproducer
        replayed = replay_reproducer(loaded)
        assert replayed.status == "violated"
        assert replayed.signature == outcome.signature

    def test_reproducer_serialisation_deterministic(self, tmp_path):
        outcome = run_storm(DRILL, armed=DRILL_ARMED)
        reproducer = make_reproducer(outcome)
        first, second = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        save_reproducer(first, reproducer)
        save_reproducer(second, reproducer)
        assert open(first, "rb").read() == open(second, "rb").read()

    def test_event_json_round_trip(self):
        events = [
            CommitteeEvent(iteration=5, kind=EventKind.LEAVE, shard_id=3),
            CommitteeEvent(
                iteration=9, kind=EventKind.JOIN, shard_id=8, tx_count=700, latency=42.5
            ),
        ]
        for event in events:
            payload = json.loads(json.dumps(event_to_json(event)))
            assert event_from_json(payload) == event

    def test_reproducer_format_tag_enforced(self, tmp_path):
        path = str(tmp_path / "bogus.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(ValueError, match="not a mvcom-storm-reproducer"):
            load_reproducer(path)


class TestEpochStorm:
    def test_chain_loop_survives_storms(self):
        config = StormConfig(
            seed=7,
            num_events=45,
            num_committees=20,
            max_iterations=400,
            convergence_window=150,
            epochs=3,
        )
        outcome = run_epoch_storm(config)
        assert outcome.status == "survived"
        assert len(outcome.epoch_outcomes) == 3
        assert outcome.pipeline is not None
        assert len(outcome.pipeline.reports) == 3
        assert outcome.pipeline.total_throughput > 0
        for report in outcome.pipeline.reports:
            assert report.instance.is_capacity_feasible(report.mask)

    def test_epoch_storm_deterministic(self):
        config = StormConfig(
            seed=9,
            num_events=30,
            num_committees=16,
            max_iterations=300,
            convergence_window=120,
            epochs=2,
        )
        first = run_epoch_storm(config)
        second = run_epoch_storm(config)
        assert first.status == second.status == "survived"
        assert first.pipeline.total_throughput == second.pipeline.total_throughput
        for a, b in zip(first.pipeline.reports, second.pipeline.reports):
            assert np.array_equal(a.mask, b.mask)


class TestStormTelemetry:
    def test_storm_events_flow_through_injected_hub(self):
        from repro.harness.tracing import build_telemetry
        from repro.obs.sinks import RingBufferSink

        telemetry = build_telemetry(None)
        try:
            run_storm(FAST, telemetry=telemetry)
            ring = next(s for s in telemetry.sinks if isinstance(s, RingBufferSink))
            names = {record["name"] for record in ring.records}
        finally:
            telemetry.close()
        assert "storm.run" in names
        assert "storm.boundaries" in names
