"""Tests for the multi-epoch carry-over pipeline (Fig. 3 mechanism)."""

import numpy as np
import pytest

from repro.core.pipeline import CarriedShard, MultiEpochScheduler, PipelineResult
from repro.core.problem import MVComConfig
from repro.core.se import SEConfig, StochasticExploration
from repro.data.workload import WorkloadConfig, multi_epoch_workloads


def se_scheduler(instance):
    result = StochasticExploration(
        SEConfig(num_threads=3, max_iterations=800, convergence_window=300, seed=5)
    ).solve(instance)
    return result.best_mask


def greedy_mask(instance):
    """Simple density-greedy epoch scheduler for cheap tests."""
    order = np.argsort(-(instance.values / np.maximum(instance.tx_counts, 1)))
    mask = np.zeros(instance.num_shards, dtype=bool)
    weight = 0
    for position in order:
        tx = int(instance.tx_counts[position])
        if weight + tx <= instance.capacity:
            mask[position] = True
            weight += tx
    return mask


@pytest.fixture(scope="module")
def epoch_shards():
    workloads = multi_epoch_workloads(
        WorkloadConfig(num_committees=25, capacity=20_000, seed=17), num_epochs=4
    )
    return [
        [s for s in sorted(w.shards, key=lambda s: s.latency)[:20]] for w in workloads
    ]


CONFIG = MVComConfig(alpha=1.5, capacity=20_000)


class TestPipeline:
    def test_reports_every_epoch(self, epoch_shards):
        result = MultiEpochScheduler(greedy_mask, CONFIG).run(epoch_shards)
        assert len(result.reports) == 4
        assert all(report.throughput_txs <= CONFIG.capacity for report in result.reports)

    def test_refused_shards_carry_into_next_epoch(self, epoch_shards):
        result = MultiEpochScheduler(greedy_mask, CONFIG).run(epoch_shards)
        for previous, current in zip(result.reports, result.reports[1:]):
            assert current.carried_in == previous.refused

    def test_carried_latency_is_reduced(self, epoch_shards):
        scheduler = MultiEpochScheduler(greedy_mask, CONFIG)
        result = scheduler.run(epoch_shards[:1])
        ddl = result.reports[0].instance.ddl
        for shard in result.leftover:
            assert shard.epochs_waited == 1
            assert shard.latency >= 1.0
            # carried latency can never exceed the original arrival window
            assert shard.latency <= ddl

    def test_carried_shards_do_get_admitted(self, epoch_shards):
        """Fig. 3's point: refused shards re-enter and some are permitted."""
        result = MultiEpochScheduler(se_scheduler, CONFIG).run(epoch_shards)
        assert sum(report.carried_permitted for report in result.reports) > 0
        # Starvation can grow at most one epoch per epoch.
        for report in result.reports:
            assert report.max_epochs_waited <= report.epoch + 1

    def test_starvation_bounded_when_undersubscribed(self, epoch_shards):
        """With capacity above the offered load AND a throughput weight that
        dominates the age penalty, the backlog drains.

        (At low alpha the MVCom objective can *rationally* starve small old
        shards forever -- their value alpha*s - age stays negative.  That is
        a real property of the paper's objective, exercised by the ablation
        bench; here we pick alpha=5 so carried shards stay valuable.)
        """
        roomy = MVComConfig(alpha=5.0, capacity=35_000)
        result = MultiEpochScheduler(se_scheduler, roomy).run(epoch_shards)
        assert result.worst_starvation <= 2
        assert len(result.leftover) <= 3

    def test_total_throughput_accumulates(self, epoch_shards):
        result = MultiEpochScheduler(greedy_mask, CONFIG).run(epoch_shards)
        assert result.total_throughput == sum(r.throughput_txs for r in result.reports)
        assert result.total_utility == pytest.approx(sum(r.utility for r in result.reports))

    def test_cheating_scheduler_rejected(self, epoch_shards):
        def cheater(instance):
            return np.ones(instance.num_shards, dtype=bool)

        tight = MVComConfig(alpha=1.5, capacity=100)
        with pytest.raises(ValueError):
            MultiEpochScheduler(cheater, tight).run(epoch_shards)

    def test_empty_epoch_skipped(self):
        result = MultiEpochScheduler(greedy_mask, CONFIG).run([[], []])
        assert result.reports == []

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValueError):
            MultiEpochScheduler(greedy_mask, CONFIG, latency_floor=0.0)

    def test_carried_shard_flags(self):
        fresh = CarriedShard(shard_id=1, tx_count=10, latency=5.0)
        waited = CarriedShard(shard_id=1, tx_count=10, latency=5.0, epochs_waited=2)
        assert not fresh.is_carry_over
        assert waited.is_carry_over
