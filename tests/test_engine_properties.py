"""Property-based tests for the simulation engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine

delays = st.lists(
    st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_events_always_fire_in_nondecreasing_time(delay_list):
    engine = SimulationEngine()
    fired = []
    for delay in delay_list:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert len(fired) == len(delay_list)
    assert all(later >= earlier for earlier, later in zip(fired, fired[1:]))
    assert sorted(fired) == sorted(delay_list)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_equal_times_fire_in_schedule_order(delay_list):
    engine = SimulationEngine()
    fired = []
    shared_delay = 5.0
    for index, _ in enumerate(delay_list):
        engine.schedule(shared_delay, lambda i=index: fired.append(i))
    engine.run()
    assert fired == list(range(len(delay_list)))


@given(delays, st.data())
@settings(max_examples=60, deadline=None)
def test_cancellation_removes_exactly_the_cancelled(delay_list, data):
    engine = SimulationEngine()
    fired = []
    handles = [
        engine.schedule(delay, lambda i=index: fired.append(i))
        for index, delay in enumerate(delay_list)
    ]
    to_cancel = data.draw(st.sets(st.sampled_from(range(len(handles)))))
    for index in to_cancel:
        engine.cancel(handles[index])
    engine.run()
    assert sorted(fired) == sorted(set(range(len(delay_list))) - to_cancel)


@given(delays)
@settings(max_examples=60, deadline=None)
def test_run_until_is_resumable_without_loss(delay_list):
    """Splitting a run at an arbitrary bound never loses or reorders events."""
    reference_engine = SimulationEngine()
    reference = []
    for index, delay in enumerate(delay_list):
        reference_engine.schedule(delay, lambda i=index: reference.append(i))
    reference_engine.run()

    split_engine = SimulationEngine()
    split = []
    for index, delay in enumerate(delay_list):
        split_engine.schedule(delay, lambda i=index: split.append(i))
    bound = max(delay_list) / 2
    split_engine.run(until=bound)
    split_engine.run()
    assert split == reference
