"""Tests for the designed Markov chain (Section IV-C, Lemmas 2-3, Theorem 1)."""

import math

import numpy as np
import pytest

from repro.core.markov import (
    are_neighbors,
    build_chain,
    detailed_balance_residual,
    empirical_mixing_time,
    enumerate_states,
    is_irreducible,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    state_utility,
    stationary_from_generator,
    total_variation,
    transition_rate,
)
from repro.core.problem import EpochInstance, MVComConfig

BETA = 0.001  # small beta keeps explicit rate matrices well-conditioned


@pytest.fixture
def chain_instance():
    config = MVComConfig(alpha=1.5, capacity=6_000, n_min_fraction=0.2)
    return EpochInstance(
        tx_counts=[1_000, 2_000, 1_500, 800, 2_500, 1_200, 900],
        latencies=[600.0, 700.0, 650.0, 900.0, 500.0, 820.0, 750.0],
        config=config,
    )


class TestStateSpace:
    def test_enumeration_respects_capacity(self, chain_instance):
        states = enumerate_states(chain_instance, 3)
        for state in states:
            assert chain_instance.tx_counts[list(state)].sum() <= chain_instance.capacity

    def test_enumeration_counts(self, chain_instance):
        # All 2-subsets are capacity-feasible except those exceeding 6000:
        states_2 = enumerate_states(chain_instance, 2)
        assert len(states_2) == 21  # C(7,2), every pair fits (max 4500)

    def test_out_of_range_cardinality_rejected(self, chain_instance):
        with pytest.raises(ValueError):
            enumerate_states(chain_instance, 8)

    def test_neighbors_are_single_swaps(self):
        assert are_neighbors((0, 1), (0, 2))
        assert not are_neighbors((0, 1), (2, 3))     # two swaps apart
        assert not are_neighbors((0, 1), (0, 1, 2))  # different cardinality
        assert not are_neighbors((0, 1), (0, 1))     # identical

    def test_state_utility_matches_instance(self, chain_instance):
        state = (0, 4)
        assert state_utility(chain_instance, state) == pytest.approx(
            float(chain_instance.values[[0, 4]].sum())
        )


class TestTransitionRates:
    def test_eq10_formula(self):
        rate = transition_rate(10.0, 12.0, beta=2.0, tau=0.5)
        assert rate == pytest.approx(math.exp(-0.5 + 1.0 * 2.0))

    def test_uphill_faster_than_downhill(self):
        assert transition_rate(0.0, 1.0, 2.0, 0.0) > transition_rate(1.0, 0.0, 2.0, 0.0)

    def test_rate_product_symmetry(self):
        """q_ff' * q_f'f = exp(-2 tau): the skew cancels, as in Lemma 3."""
        forward = transition_rate(3.0, 7.0, 1.0, 0.2)
        backward = transition_rate(7.0, 3.0, 1.0, 0.2)
        assert forward * backward == pytest.approx(math.exp(-0.4))


class TestChainStructure:
    def test_generator_rows_sum_to_zero(self, chain_instance):
        chain = build_chain(chain_instance, 3, beta=BETA)
        assert np.allclose(chain.generator.sum(axis=1), 0.0, atol=1e-12)

    def test_lemma2_irreducible(self, chain_instance):
        for cardinality in (1, 2, 3):
            chain = build_chain(chain_instance, cardinality, beta=BETA)
            assert is_irreducible(chain)

    def test_lemma3_detailed_balance(self, chain_instance):
        chain = build_chain(chain_instance, 3, beta=BETA)
        assert detailed_balance_residual(chain) < 1e-10

    def test_stationary_solves_global_balance(self, chain_instance):
        """pi Q = 0 solved numerically equals the Gibbs distribution (eq. 6)."""
        chain = build_chain(chain_instance, 2, beta=BETA)
        numeric = stationary_from_generator(chain)
        gibbs = chain.stationary()
        assert total_variation(numeric, gibbs) < 1e-8

    def test_empty_cardinality_rejected_when_infeasible(self):
        config = MVComConfig(alpha=1.5, capacity=10)
        instance = EpochInstance([100, 100], [1.0, 2.0], config)
        with pytest.raises(ValueError):
            build_chain(instance, 1, beta=BETA)


class TestMixingTime:
    def test_empirical_mixing_within_theorem1_bounds(self, chain_instance):
        epsilon = 0.05
        chain = build_chain(chain_instance, 3, beta=BETA)
        u_max, u_min = float(chain.utilities.max()), float(chain.utilities.min())
        measured = empirical_mixing_time(chain, epsilon)
        lower = mixing_time_lower_bound(chain_instance.num_shards, BETA, 0.0, u_max, u_min, epsilon)
        upper = mixing_time_upper_bound(chain_instance.num_shards, BETA, 0.0, u_max, u_min, epsilon)
        assert lower <= measured <= upper

    def test_mixing_slows_as_beta_grows(self, chain_instance):
        fast = empirical_mixing_time(build_chain(chain_instance, 3, beta=BETA / 4), 0.05)
        slow = empirical_mixing_time(build_chain(chain_instance, 3, beta=BETA * 4), 0.05)
        assert slow >= fast

    def test_mixing_grows_as_epsilon_shrinks(self, chain_instance):
        chain = build_chain(chain_instance, 3, beta=BETA)
        loose = empirical_mixing_time(chain, 0.2)
        tight = empirical_mixing_time(chain, 0.02)
        assert tight >= loose

    def test_bound_argument_validation(self):
        with pytest.raises(ValueError):
            mixing_time_lower_bound(1, 1.0, 0.0, 1.0, 0.0, 0.05)
        with pytest.raises(ValueError):
            mixing_time_upper_bound(5, -1.0, 0.0, 1.0, 0.0, 0.05)
        with pytest.raises(ValueError):
            mixing_time_lower_bound(5, 1.0, 0.0, 1.0, 0.0, 0.7)

    def test_total_variation_basics(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)
