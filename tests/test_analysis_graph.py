"""Tests for the whole-program graph (repro.analysis.graph)."""

import textwrap

from repro.analysis.graph import (
    MODULE_BODY,
    build_graph_from_sources,
    module_name_for_path,
)


def build(files):
    """files: {posix path: dedented source} -> ProjectGraph."""
    return build_graph_from_sources(
        {path: (path, textwrap.dedent(source)) for path, source in files.items()}
    )


# ---------------------------------------------------------------------- #
# module naming
# ---------------------------------------------------------------------- #
class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for_path("src/repro/core/se.py") == "repro.core.se"

    def test_package_init_collapses(self):
        assert module_name_for_path("src/repro/sim/__init__.py") == "repro.sim"

    def test_bare_path(self):
        assert module_name_for_path("repro/chain/pbft.py") == "repro.chain.pbft"


# ---------------------------------------------------------------------- #
# function collection
# ---------------------------------------------------------------------- #
class TestCollection:
    def test_functions_methods_and_nested(self):
        graph = build(
            {
                "repro/core/a.py": """
                class Solver:
                    def solve(self):
                        def helper():
                            return 1
                        return helper()

                def top():
                    return 2
                """
            }
        )
        names = set(graph.functions)
        assert "repro.core.a.Solver.solve" in names
        assert "repro.core.a.Solver.solve.helper" in names
        assert "repro.core.a.top" in names
        assert f"repro.core.a.{MODULE_BODY}" in names
        helper = graph.functions["repro.core.a.Solver.solve.helper"]
        assert helper.is_nested and helper.parent == "repro.core.a.Solver.solve"

    def test_loop_context_recorded(self):
        graph = build(
            {
                "repro/core/a.py": """
                def run(items):
                    for index, item in enumerate(items):
                        use(index)
                    while True:
                        poll()
                """
            }
        )
        calls = {
            site.raw: site for site in graph.functions["repro.core.a.run"].calls
        }
        assert calls["use"].in_loop
        assert set(calls["use"].loop_vars) == {"index", "item"}
        assert calls["enumerate"].in_loop is False
        assert calls["poll"].in_loop and calls["poll"].loop_vars == ()

    def test_syntax_error_files_skipped(self):
        graph = build(
            {
                "repro/core/ok.py": "def fine():\n    return 1\n",
                "repro/core/broken.py": "def broken(:\n",
            }
        )
        assert "repro.core.ok" in graph.modules
        assert "repro.core.broken" not in graph.modules


# ---------------------------------------------------------------------- #
# call resolution
# ---------------------------------------------------------------------- #
class TestResolution:
    def test_same_module_and_self_method(self):
        graph = build(
            {
                "repro/core/a.py": """
                class Solver:
                    def solve(self):
                        return self.step()

                    def step(self):
                        return helper()

                def helper():
                    return 1
                """
            }
        )
        solve = graph.functions["repro.core.a.Solver.solve"]
        assert [s.target for s in solve.calls] == ["repro.core.a.Solver.step"]
        step = graph.functions["repro.core.a.Solver.step"]
        assert [s.target for s in step.calls] == ["repro.core.a.helper"]

    def test_cross_module_import_forms(self):
        graph = build(
            {
                "repro/sim/util.py": """
                def derive(x):
                    return x
                """,
                "repro/core/a.py": """
                from repro.sim.util import derive

                def run():
                    return derive(1)
                """,
                "repro/core/b.py": """
                import repro.sim.util as util

                def run():
                    return util.derive(2)
                """,
            }
        )
        for module in ("a", "b"):
            run = graph.functions[f"repro.core.{module}.run"]
            assert [s.target for s in run.calls] == ["repro.sim.util.derive"]

    def test_class_construction_resolves_to_init(self):
        graph = build(
            {
                "repro/sim/rng.py": """
                class RandomStreams:
                    def __init__(self, seed):
                        self.seed = seed
                """,
                "repro/core/a.py": """
                from repro.sim.rng import RandomStreams

                def make():
                    return RandomStreams(7)
                """,
            }
        )
        make = graph.functions["repro.core.a.make"]
        assert [s.target for s in make.calls] == [
            "repro.sim.rng.RandomStreams.__init__"
        ]

    def test_unknown_attribute_calls_produce_no_edge(self):
        graph = build(
            {
                "repro/core/a.py": """
                def run(thing):
                    return thing.mystery()
                """
            }
        )
        run = graph.functions["repro.core.a.run"]
        assert [s.target for s in run.calls] == [None]


# ---------------------------------------------------------------------- #
# caller index and path enumeration
# ---------------------------------------------------------------------- #
class TestPaths:
    FILES = {
        "repro/core/a.py": """
        def entry():
            return middle()

        def middle():
            return leaf()

        def leaf():
            return 1
        """
    }

    def test_callers_of(self):
        graph = build(self.FILES)
        callers = [caller for caller, _ in graph.callers_of("repro.core.a.leaf")]
        assert callers == ["repro.core.a.middle"]

    def test_call_paths_entry_first(self):
        graph = build(self.FILES)
        paths = graph.call_paths_to("repro.core.a.leaf")
        assert paths[0] == (
            "repro.core.a.entry",
            "repro.core.a.middle",
            "repro.core.a.leaf",
        )

    def test_render_path_drops_module_prefix(self):
        graph = build(self.FILES)
        rendered = graph.render_path(graph.shortest_path_to("repro.core.a.leaf"))
        assert rendered == "entry -> middle -> leaf"

    def test_recursion_does_not_hang(self):
        graph = build(
            {
                "repro/core/a.py": """
                def ping():
                    return pong()

                def pong():
                    return ping()
                """
            }
        )
        paths = graph.call_paths_to("repro.core.a.ping", max_paths=2)
        assert paths and all(len(set(p)) == len(p) for p in paths)
