"""Tests for PoW committee election and overlay configuration."""

import numpy as np
import pytest

from repro.chain.node import spawn_nodes
from repro.chain.overlay import run_overlay_configuration
from repro.chain.pow import (
    committee_fill_times,
    committee_members,
    run_pow_election,
    solve_times,
)


@pytest.fixture(scope="module")
def nodes():
    return spawn_nodes(120, byzantine_fraction=0.1, rng=np.random.default_rng(2))


@pytest.fixture(scope="module")
def solutions(nodes):
    return run_pow_election(nodes, num_committees=10, mean_solve_s=600.0,
                            epoch_randomness="seed", rng=np.random.default_rng(3))


class TestPow:
    def test_solve_times_scale_with_hash_power(self):
        rng = np.random.default_rng(1)
        fast = spawn_nodes(2_000, 0.0, rng, hash_power_sigma=0.01)
        for node in fast:
            node.hash_power = 4.0
        fast_times = solve_times(fast, 600.0, np.random.default_rng(5))
        slow = spawn_nodes(2_000, 0.0, rng, hash_power_sigma=0.01)
        slow_times = solve_times(slow, 600.0, np.random.default_rng(5))
        assert fast_times.mean() < 0.5 * slow_times.mean()

    def test_expected_solve_time_matches_paper(self):
        nodes = spawn_nodes(5_000, 0.0, np.random.default_rng(4), hash_power_sigma=0.01)
        times = solve_times(nodes, 600.0, np.random.default_rng(6))
        assert times.mean() == pytest.approx(600.0, rel=0.1)

    def test_every_solver_assigned_a_committee(self, solutions, nodes):
        assert len(solutions) == len(nodes)
        assert all(0 <= s.committee_index < 10 for s in solutions)

    def test_solutions_sorted_by_time(self, solutions):
        times = [s.solve_time for s in solutions]
        assert times == sorted(times)

    def test_assignment_depends_on_randomness(self, nodes):
        a = run_pow_election(nodes, 10, 600.0, "seed-A", np.random.default_rng(3))
        b = run_pow_election(nodes, 10, 600.0, "seed-B", np.random.default_rng(3))
        assignment_a = {s.node_id: s.committee_index for s in a}
        assignment_b = {s.node_id: s.committee_index for s in b}
        assert assignment_a != assignment_b

    def test_fill_times_monotone_in_committee_size(self, solutions):
        small = committee_fill_times(solutions, 10, 4)
        large = committee_fill_times(solutions, 10, 8)
        for committee in large:
            assert large[committee] >= small[committee]

    def test_members_capped_at_committee_size(self, solutions):
        members = committee_members(solutions, 10, 6)
        assert all(len(m) == 6 for m in members.values())

    def test_unfilled_committees_absent(self):
        nodes = spawn_nodes(10, 0.0, np.random.default_rng(7))
        solutions = run_pow_election(nodes, 5, 600.0, "x", np.random.default_rng(8))
        members = committee_members(solutions, 5, 8)  # 10 nodes can't fill 8x5
        assert len(members) == 0


class TestOverlay:
    def test_registration_serialises(self, solutions, nodes):
        members = committee_members(solutions, 10, 6)
        overlay = run_overlay_configuration(
            solutions, members, registration_rate=1.0, rng=np.random.default_rng(9)
        )
        ready = sorted(overlay.identity_ready_time.values())
        # The server handles 1 identity/s: the last of 120 registrations is
        # at least 120 s after the first solve.
        assert ready[-1] - solutions[0].solve_time >= len(nodes) / 1.0 - 1e-9

    def test_overlay_time_after_every_member_registered(self, solutions):
        members = committee_members(solutions, 10, 6)
        overlay = run_overlay_configuration(
            solutions, members, registration_rate=1.0, rng=np.random.default_rng(9)
        )
        for committee, node_ids in members.items():
            latest = max(overlay.identity_ready_time[n] for n in node_ids)
            assert overlay.committee_overlay_time[committee] >= latest

    def test_faster_registration_lowers_latency(self, solutions):
        members = committee_members(solutions, 10, 6)
        slow = run_overlay_configuration(solutions, members, 0.5, np.random.default_rng(9))
        fast = run_overlay_configuration(solutions, members, 50.0, np.random.default_rng(9))
        assert max(fast.committee_overlay_time.values()) < max(slow.committee_overlay_time.values())

    def test_invalid_rate_rejected(self, solutions):
        with pytest.raises(ValueError):
            run_overlay_configuration(solutions, {}, 0.0, np.random.default_rng(9))
