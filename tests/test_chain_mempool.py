"""Tests for transactions, the mempool, and TX-to-shard partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.elastico import ElasticoSimulation
from repro.chain.mempool import (
    Mempool,
    Transaction,
    assign_to_committees,
    synthetic_transactions,
    verify_disjoint,
)
from repro.chain.params import ChainParams
from repro.core.problem import MVComConfig


class TestTransaction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Transaction(tx_id="")
        with pytest.raises(ValueError):
            Transaction(tx_id="a", fee=-1)
        with pytest.raises(ValueError):
            Transaction(tx_id="a", arrival_time=-1)

    def test_committee_assignment_stable(self):
        tx = Transaction(tx_id="abc")
        assert tx.committee_of(10) == tx.committee_of(10)
        with pytest.raises(ValueError):
            tx.committee_of(0)

    def test_assignment_roughly_uniform(self):
        rng = np.random.default_rng(0)
        txs = synthetic_transactions(5_000, rng)
        counts = np.zeros(10, dtype=int)
        for tx in txs:
            counts[tx.committee_of(10)] += 1
        assert counts.min() > 0.7 * counts.mean()
        assert counts.max() < 1.3 * counts.mean()


class TestMempool:
    def test_add_and_len(self):
        pool = Mempool()
        pool.add_many(synthetic_transactions(10, np.random.default_rng(1)))
        assert len(pool) == 10

    def test_duplicate_rejected(self):
        pool = Mempool()
        pool.add(Transaction(tx_id="x"))
        with pytest.raises(ValueError):
            pool.add(Transaction(tx_id="x"))

    def test_remove_committed(self):
        pool = Mempool()
        pool.add_many([Transaction(tx_id=f"t{i}") for i in range(5)])
        removed = pool.remove_committed(["t1", "t3", "missing"])
        assert removed == 2
        assert len(pool) == 3

    def test_total_fees(self):
        pool = Mempool()
        pool.add(Transaction(tx_id="a", fee=2.0))
        pool.add(Transaction(tx_id="b", fee=3.0))
        assert pool.total_fees == pytest.approx(5.0)


class TestAssignment:
    def test_every_committee_present_and_disjoint(self):
        pool = Mempool()
        pool.add_many(synthetic_transactions(1_000, np.random.default_rng(2)))
        shards = assign_to_committees(pool, 8)
        assert set(shards) == set(range(8))
        assert verify_disjoint(list(shards.values())) is None
        assert sum(len(s) for s in shards.values()) == 1_000

    def test_assignment_deterministic(self):
        pool = Mempool()
        pool.add_many(synthetic_transactions(200, np.random.default_rng(3)))
        assert assign_to_committees(pool, 5) == assign_to_committees(pool, 5)

    def test_order_by_arrival(self):
        pool = Mempool()
        pool.add(Transaction(tx_id="late", arrival_time=50.0))
        pool.add(Transaction(tx_id="early", arrival_time=1.0))
        shards = assign_to_committees(pool, 1)
        assert shards[0] == ("early", "late")

    def test_verify_disjoint_catches_duplicates(self):
        assert verify_disjoint([("a", "b"), ("c", "a")]) == "a"
        assert verify_disjoint([("a",), ("b",)]) is None


@given(st.sets(st.text(alphabet="abcdef0123456789", min_size=4, max_size=12), min_size=1, max_size=60),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_property_partition_is_exact(tx_ids, num_committees):
    """The hash-prefix partition is a true partition: disjoint and complete."""
    pool = Mempool()
    pool.add_many([Transaction(tx_id=tx_id) for tx_id in tx_ids])
    shards = assign_to_committees(pool, num_committees)
    flat = [tx_id for shard in shards.values() for tx_id in shard]
    assert sorted(flat) == sorted(tx_ids)
    assert verify_disjoint(list(shards.values())) is None


class TestMempoolDrivenEpoch:
    def test_epoch_consumes_committed_transactions(self):
        params = ChainParams(num_nodes=120, committee_size=8, seed=61)
        simulation = ElasticoSimulation(
            params, mvcom_config=MVComConfig(alpha=1.5, capacity=800)
        )
        pool = Mempool()
        pool.add_many(synthetic_transactions(2_000, np.random.default_rng(4)))
        before = len(pool)
        outcome = simulation.run_epoch(mempool=pool)
        assert outcome.final is not None
        committed = outcome.final.permitted_txs
        assert committed > 0
        assert len(pool) == before - committed

    def test_uncommitted_transactions_stay_for_next_epoch(self):
        params = ChainParams(num_nodes=120, committee_size=8, seed=61)
        simulation = ElasticoSimulation(
            params, mvcom_config=MVComConfig(alpha=1.5, capacity=500)
        )
        pool = Mempool()
        pool.add_many(synthetic_transactions(2_000, np.random.default_rng(4)))
        first = simulation.run_epoch(mempool=pool)
        remaining_after_first = len(pool)
        second = simulation.run_epoch(mempool=pool)
        assert second.final is not None
        assert len(pool) == remaining_after_first - second.final.permitted_txs
