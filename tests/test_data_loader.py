"""Tests for the trace CSV loader."""

import io

import pytest

from repro.data.bitcoin import BitcoinTraceConfig, generate_bitcoin_trace
from repro.data.loader import TraceFormatError, read_trace_csv, write_trace_csv

HEADER = "blockID,bhash,btime,txs\n"


def test_roundtrip_through_csv(tmp_path):
    blocks = generate_bitcoin_trace(BitcoinTraceConfig(num_blocks=50, total_txs=40_000, seed=2))
    path = str(tmp_path / "trace.csv")
    write_trace_csv(blocks, path)
    loaded = read_trace_csv(path)
    assert loaded == sorted(blocks, key=lambda b: b.btime)


def test_rows_sorted_by_btime():
    raw = HEADER + "1,hb,200,10\n0,ha,100,5\n"
    blocks = read_trace_csv(io.StringIO(raw))
    assert [b.block_id for b in blocks] == [1, 0] or [b.btime for b in blocks] == [100, 200]
    assert [b.btime for b in blocks] == [100, 200]


def test_missing_column_rejected():
    with pytest.raises(TraceFormatError, match="missing columns"):
        read_trace_csv(io.StringIO("blockID,bhash,btime\n1,h,2\n"))


def test_empty_file_rejected():
    with pytest.raises(TraceFormatError):
        read_trace_csv(io.StringIO(""))


def test_no_rows_rejected():
    with pytest.raises(TraceFormatError, match="no rows"):
        read_trace_csv(io.StringIO(HEADER))


def test_malformed_value_rejected_with_line():
    with pytest.raises(TraceFormatError, match="line 3"):
        read_trace_csv(io.StringIO(HEADER + "0,h,1,5\n1,h,x,5\n"))


def test_negative_txs_rejected():
    with pytest.raises(TraceFormatError, match="negative"):
        read_trace_csv(io.StringIO(HEADER + "0,h,1,-5\n"))


def test_empty_hash_rejected():
    with pytest.raises(TraceFormatError, match="empty block hash"):
        read_trace_csv(io.StringIO(HEADER + "0,,1,5\n"))


def test_duplicate_block_id_rejected():
    with pytest.raises(TraceFormatError, match="duplicate"):
        read_trace_csv(io.StringIO(HEADER + "0,ha,1,5\n0,hb,2,6\n"))


def test_loaded_trace_feeds_workload_builder(tmp_path):
    """A loaded CSV plugs into the same pipeline as the synthetic trace."""
    from repro.data.workload import WorkloadConfig, generate_epoch_workload

    blocks = generate_bitcoin_trace(BitcoinTraceConfig(num_blocks=60, total_txs=50_000, seed=3))
    path = str(tmp_path / "trace.csv")
    write_trace_csv(blocks, path)
    loaded = read_trace_csv(path)
    workload = generate_epoch_workload(
        WorkloadConfig(num_committees=20, capacity=18_000, seed=1), blocks=loaded
    )
    assert workload.instance.num_shards == 16  # 80% of 20
