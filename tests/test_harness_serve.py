"""Tests for ``mvcom serve`` — the steady-state scheduling service loop.

Pins the three service-level contracts:

* **Cold parity**: ``--cold`` is byte-identical to running today's
  standalone per-epoch solver over the same stream — the serve loop adds
  telemetry, never trajectory.
* **Warm chaining**: the default mode threads one solver's
  :class:`SEWarmState` through every epoch and reports honest SLIs.
* **Per-epoch auto selection**: ``engine="auto"`` re-evaluates its
  scalar-vs-batched split *inside every epoch's solve* and the growing
  population actually crosses it (the selection matrix).
"""

import json

import numpy as np
import pytest

from repro.core.se import SEConfig, StochasticExploration
from repro.data.stream import EpochStream, EpochStreamConfig
from repro.harness.cli import main
from repro.harness.serve import (
    ServeConfig,
    rounds_to_target,
    run_serve,
    run_serve_comparison,
    time_to_99,
)
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry

SMALL = dict(
    epochs=3,
    num_committees=30,
    gamma=4,
    max_iterations=400,
    convergence_window=200,
    seed=5,
)


# --------------------------------------------------------------------- #
# cold mode: parity with the standalone solver
# --------------------------------------------------------------------- #
class TestColdParity:
    def test_cold_serve_matches_standalone_per_epoch_solves(self):
        config = ServeConfig(warm=False, **SMALL)
        report = run_serve(config, collect_results=True)

        # Replay the identical stream through today's standalone path:
        # a fresh solver per epoch, no serve loop, no telemetry.
        stream = EpochStream(config.stream_config())
        permitted = []
        for epoch, row in enumerate(report.rows):
            tick = stream.advance(permitted)
            result = StochasticExploration(config.solver_config(epoch)).solve(
                tick.instance
            )
            assert result.best_utility == row.utility
            assert int(result.best_weight) == row.weight
            assert result.iterations == row.iterations
            assert np.array_equal(
                result.best_mask, report.results[epoch].best_mask
            )
            final = result.final_instance
            permitted = [
                final.shard_ids[i]
                for i in range(final.num_shards)
                if result.best_mask[i]
            ]

    def test_cold_is_reproducible(self):
        config = ServeConfig(warm=False, **SMALL)
        first = run_serve(config)
        second = run_serve(config)
        assert [row.utility for row in first.rows] == [
            row.utility for row in second.rows
        ]


# --------------------------------------------------------------------- #
# warm mode: the chained service loop
# --------------------------------------------------------------------- #
class TestWarmServe:
    def test_warm_serve_reports_sane_slis(self):
        report = run_serve(ServeConfig(**SMALL))
        assert len(report.rows) == SMALL["epochs"]
        assert report.solves_per_s > 0.0
        assert report.tx_scheduled_per_s > 0.0
        assert report.decision_p99_s >= report.decision_p50_s > 0.0
        assert report.mean_wall_to_99_s > 0.0
        assert report.slo_violations == []
        for row in report.rows:
            assert row.scheduled > 0
            assert row.weight > 0
            assert row.wall_to_99_s <= row.wall_s

    def test_warm_emits_one_warm_start_per_chained_epoch(self):
        ring = RingBufferSink()
        report = run_serve(
            ServeConfig(**SMALL), telemetry=Telemetry(sinks=[ring])
        )
        starts = [r for r in ring.records if r.get("name") == "se.warm_start"]
        # Epoch 0 bootstraps; every later epoch adopts the previous state.
        assert len(starts) == SMALL["epochs"] - 1
        epochs = [r for r in ring.records if r.get("name") == "serve.epoch"]
        assert [r["epoch"] for r in epochs] == list(range(SMALL["epochs"]))
        assert all(r["warm"] for r in epochs)
        assert len(report.rows) == SMALL["epochs"]

    def test_warm_is_reproducible(self):
        first = run_serve(ServeConfig(**SMALL))
        second = run_serve(ServeConfig(**SMALL))
        assert [row.utility for row in first.rows] == [
            row.utility for row in second.rows
        ]

    def test_comparison_record_shape(self, tmp_path):
        out = tmp_path / "bench.json"
        record = run_serve_comparison(ServeConfig(**SMALL), out_path=str(out))
        assert record["warm_speedup_rounds_to_99"] > 0
        assert len(record["per_epoch"]) == SMALL["epochs"] - 1
        assert json.loads(out.read_text())["bench"] == "serve"
        # Shared target: neither run is graded against a finish line only
        # it can see.
        for row in record["per_epoch"]:
            assert row["target_utility"] <= 0.99 * max(
                row["warm_final_utility"], row["cold_final_utility"]
            ) + 1e-6


# --------------------------------------------------------------------- #
# per-epoch auto engine selection
# --------------------------------------------------------------------- #
class TestAutoSelectionMatrix:
    def test_growing_population_crosses_the_batched_split(self):
        # Γ=8 over a population growing 44 -> 104 sweeps the racing work
        # across AUTO_VECTORIZE_MIN_WORK (152 -> 248): early epochs
        # resolve scalar, late epochs batched — re-evaluated per epoch,
        # not once.
        ring = RingBufferSink()
        run_serve(
            ServeConfig(
                epochs=4,
                num_committees=24,
                growth=20,
                gamma=8,
                max_iterations=300,
                convergence_window=150,
                seed=0,
            ),
            telemetry=Telemetry(sinks=[ring]),
        )
        autos = [r for r in ring.records if r.get("name") == "engine.auto"]
        assert len(autos) == 4, "auto must re-resolve inside every epoch"
        chosen = [r["engine"] for r in autos]
        assert "serial" in chosen and "vectorized" in chosen, chosen
        assert chosen == sorted(chosen, key=("serial", "vectorized").index), (
            f"growing work must move the split monotonically: {chosen}"
        )
        epoch_rows = [r for r in ring.records if r.get("name") == "serve.epoch"]
        assert [r["engine"] for r in epoch_rows] == chosen

    def test_pinned_engine_skips_auto_resolution(self):
        ring = RingBufferSink()
        run_serve(
            ServeConfig(engine="serial", **SMALL),
            telemetry=Telemetry(sinks=[ring]),
        )
        assert not [r for r in ring.records if r.get("name") == "engine.auto"]


# --------------------------------------------------------------------- #
# helpers and CLI
# --------------------------------------------------------------------- #
class TestServeHelpers:
    def test_rounds_to_target(self):
        trace = np.array([1.0, 2.0, 3.0, 3.0])
        assert rounds_to_target(trace, 2.0) == 2
        assert rounds_to_target(trace, 99.0) == 4

    def test_time_to_99_prorates_by_first_hit(self):
        class Result:
            utility_trace = np.array([50.0, 99.5, 100.0, 100.0])

        assert time_to_99(Result(), 4.0) == pytest.approx(2.0)


class TestServeCli:
    def test_serve_cli_smoke(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        code = main(
            [
                "serve",
                "--epochs", "2",
                "--committees", "24",
                "--gamma", "3",
                "--iterations", "200",
                "--seed", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "mode=warm" in printed
        assert "steady state:" in printed
        assert json.loads(out.read_text())["mode"] == "warm"

    def test_serve_cli_cold_flag(self, capsys):
        code = main(
            [
                "serve", "--cold",
                "--epochs", "1",
                "--committees", "24",
                "--gamma", "3",
                "--iterations", "200",
            ]
        )
        assert code == 0
        assert "mode=cold" in capsys.readouterr().out

    def test_serve_rejects_positional_paths(self):
        with pytest.raises(SystemExit):
            main(["serve", "unexpected.json"])
