"""Serve-mode churn storms: contracts armed *across* epoch boundaries.

The single-solve storm battery (``test_faultinject_storms``) checks
invariants at dynamic-event boundaries inside one solve.  The serve-mode
battery chains warm-started solves over a drifting
:class:`~repro.data.stream.EpochStream` and additionally checks the
boundary this PR created: iteration 0 of a warm solve, where the adopted
replicas, repaired carried solutions, and rebased incumbent must already
satisfy every armed invariant.  A violation serialises to a replayable
``mvcom-serve-reproducer-v1`` document.
"""

import json

import pytest

from repro.faultinject.invariants import StormInvariantViolation
from repro.faultinject.runner import DEFAULT_ARMED
from repro.faultinject.serve import (
    SERVE_REPRODUCER_FORMAT,
    ServeStormConfig,
    load_serve_reproducer,
    make_serve_reproducer,
    replay_serve_reproducer,
    run_serve_storm,
    save_serve_reproducer,
)

SMALL = ServeStormConfig(
    seed=0,
    epochs=4,
    num_committees=30,
    churn=0.1,
    events_per_epoch=30,
    gamma=4,
    max_iterations=500,
    convergence_window=250,
)


class TestServeStormSurvival:
    def test_default_invariants_hold_across_warm_epochs(self):
        outcome = run_serve_storm(SMALL)
        assert outcome.survived
        assert len(outcome.results) == SMALL.epochs
        assert outcome.checks_run > 0
        # Every epoch after the first adopted warm state, and each solve
        # still hit storm boundaries of its own.
        assert len(outcome.boundaries_by_epoch) == SMALL.epochs
        assert all(len(b) > 0 for b in outcome.boundaries_by_epoch)

    def test_warm_boundary_is_probed_at_iteration_zero(self):
        seen = []

        def boundary_spy(*, iteration, events, instance, best, replicas):
            if iteration == 0:
                seen.append(len(replicas))

        outcome = run_serve_storm(
            SMALL, extra_invariants={"boundary-spy": boundary_spy}
        )
        assert outcome.survived
        # Warm epochs (all but the first) call the probe on the adopted
        # population before any race round runs.
        assert len(seen) >= SMALL.epochs - 1
        assert all(count == SMALL.gamma for count in seen)

    def test_deterministic_per_seed(self):
        first = run_serve_storm(SMALL)
        second = run_serve_storm(SMALL)
        assert [r.best_utility for r in first.results] == [
            r.best_utility for r in second.results
        ]
        assert [
            [str(e) for e in events] for events in first.events_by_epoch
        ] == [[str(e) for e in events] for events in second.events_by_epoch]

    def test_cold_serve_storm_also_survives(self):
        outcome = run_serve_storm(
            ServeStormConfig(
                seed=1,
                epochs=3,
                num_committees=30,
                gamma=4,
                max_iterations=500,
                convergence_window=250,
                warm=False,
            )
        )
        assert outcome.survived


class TestServeStormViolation:
    def violated_outcome(self):
        calls = {"n": 0}

        def bomb(*, iteration, events, instance, best, replicas):
            calls["n"] += 1
            if calls["n"] > 20:
                raise StormInvariantViolation(
                    "bomb", "synthetic failure", iteration=iteration
                )

        return run_serve_storm(SMALL, extra_invariants={"bomb": bomb})

    def test_violation_records_failed_epoch(self):
        outcome = self.violated_outcome()
        assert outcome.status == "violated"
        assert not outcome.survived
        assert outcome.violation.invariant == "bomb"
        assert outcome.failed_epoch is not None
        assert outcome.failed_epoch > 0
        # Event history covers every epoch up to and including the failure.
        assert len(outcome.events_by_epoch) == outcome.failed_epoch + 1

    def test_armed_includes_extra_invariants(self):
        outcome = self.violated_outcome()
        assert "bomb" in outcome.armed
        assert set(DEFAULT_ARMED) <= set(outcome.armed)

    def test_reproducer_requires_a_failure(self):
        survived = run_serve_storm(SMALL)
        with pytest.raises(ValueError, match="records a failure"):
            make_serve_reproducer(survived)


class TestServeReproducer:
    def test_round_trip_and_replay(self, tmp_path):
        calls = {"n": 0}

        def bomb(*, iteration, events, instance, best, replicas):
            calls["n"] += 1
            if calls["n"] > 20:
                raise StormInvariantViolation(
                    "bomb", "synthetic failure", iteration=iteration
                )

        outcome = run_serve_storm(SMALL, extra_invariants={"bomb": bomb})
        reproducer = make_serve_reproducer(outcome)
        path = tmp_path / "serve_reproducer.json"
        save_serve_reproducer(str(path), reproducer)

        loaded = load_serve_reproducer(str(path))
        assert loaded["format"] == SERVE_REPRODUCER_FORMAT
        assert loaded["failure"]["invariant"] == "bomb"
        assert loaded["failure"]["epoch"] == outcome.failed_epoch

        # Extra invariants cannot serialise: the replay runs the stored
        # event history under the built-in armed subset, deterministically.
        replayed = replay_serve_reproducer(loaded)
        assert len(replayed.events_by_epoch) <= len(outcome.events_by_epoch)
        again = replay_serve_reproducer(loaded)
        assert replayed.status == again.status
        assert [r.best_utility for r in replayed.results] == [
            r.best_utility for r in again.results
        ]

    def test_serialisation_deterministic(self, tmp_path):
        calls = {"n": 0}

        def bomb(*, iteration, events, instance, best, replicas):
            calls["n"] += 1
            if calls["n"] > 20:
                raise StormInvariantViolation(
                    "bomb", "synthetic failure", iteration=iteration
                )

        outcome = run_serve_storm(SMALL, extra_invariants={"bomb": bomb})
        reproducer = make_serve_reproducer(outcome)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_serve_reproducer(str(first), reproducer)
        save_serve_reproducer(str(second), make_serve_reproducer(outcome))
        assert first.read_text() == second.read_text()

    def test_format_tag_enforced(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match=SERVE_REPRODUCER_FORMAT):
            load_serve_reproducer(str(path))
