"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import EpochInstance, MVComConfig
from repro.core.solution import Solution

# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
shard_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5_000),       # tx_count
              st.floats(min_value=0.0, max_value=5_000.0,       # latency
                        allow_nan=False, allow_infinity=False)),
    min_size=1,
    max_size=24,
)


def build(shards, alpha=1.5, capacity=None):
    tx_counts = [s[0] for s in shards]
    latencies = [s[1] for s in shards]
    if capacity is None:
        capacity = max(sum(tx_counts) // 2, 1)
    return EpochInstance(tx_counts, latencies, MVComConfig(alpha=alpha, capacity=capacity))


@st.composite
def instance_and_moves(draw):
    shards = draw(shard_lists)
    instance = build(shards)
    moves = draw(st.lists(st.integers(min_value=0, max_value=len(shards) - 1), max_size=60))
    return instance, moves


# --------------------------------------------------------------------- #
# Solution cache invariants
# --------------------------------------------------------------------- #
@given(instance_and_moves())
@settings(max_examples=120, deadline=None)
def test_flip_sequences_preserve_cache_invariant(data):
    """utility/weight/count caches always equal the from-scratch recompute."""
    instance, moves = data
    solution = Solution(instance)
    for index in moves:
        solution.flip(index)
        reference = Solution(instance, solution.mask)
        assert solution.count == reference.count
        assert solution.weight == reference.weight
        assert abs(solution.utility - reference.utility) < 1e-6 * max(1.0, abs(reference.utility))


@given(instance_and_moves(), st.randoms(use_true_random=False))
@settings(max_examples=80, deadline=None)
def test_swap_sequences_preserve_cardinality_and_cache(data, rnd):
    instance, moves = data
    if instance.num_shards < 2:
        return
    start = [i for i in range(instance.num_shards) if i % 2 == 0]
    solution = Solution.from_indices(instance, start)
    cardinality = solution.count
    for _ in range(min(len(moves), 30)):
        selected = solution.selected_positions()
        unselected = solution.unselected_positions()
        if len(selected) == 0 or len(unselected) == 0:
            break
        out = int(rnd.choice(list(selected)))
        into = int(rnd.choice(list(unselected)))
        predicted = solution.utility + solution.swap_delta(out, into)
        solution.swap(out, into)
        assert solution.count == cardinality
        assert abs(solution.utility - predicted) < 1e-6 * max(1.0, abs(predicted))


@given(instance_and_moves())
@settings(max_examples=80, deadline=None)
def test_utility_is_separable_sum(data):
    """U(f) == sum of selected values, for any mask reached by any moves."""
    instance, moves = data
    solution = Solution(instance)
    for index in moves:
        solution.flip(index)
    expected = float(instance.values[solution.mask].sum())
    assert abs(solution.utility - expected) < 1e-6 * max(1.0, abs(expected))


@given(shard_lists)
@settings(max_examples=100, deadline=None)
def test_ages_are_nonnegative_and_slowest_is_zero(shards):
    instance = build(shards)
    assert (instance.ages >= -1e-9).all()
    assert instance.ages.min() == 0.0  # the DDL-defining shard


@given(shard_lists)
@settings(max_examples=100, deadline=None)
def test_max_feasible_cardinality_is_tight(shards):
    """n_cap lightest shards fit; n_cap+1 lightest do not."""
    instance = build(shards)
    ordered = np.sort(instance.tx_counts)
    n_cap = instance.max_feasible_cardinality
    assert ordered[:n_cap].sum() <= instance.capacity
    if n_cap < instance.num_shards:
        assert ordered[: n_cap + 1].sum() > instance.capacity


@given(shard_lists, st.integers(min_value=0, max_value=23))
@settings(max_examples=80, deadline=None)
def test_without_then_rebase_drops_exactly_one(shards, position):
    instance = build(shards)
    if instance.num_shards < 2:
        return
    position = position % instance.num_shards
    shard_id = instance.shard_ids[position]
    solution = Solution(instance, np.ones(instance.num_shards, dtype=bool))
    smaller = instance.without(shard_id)
    rebased = solution.rebase(smaller)
    assert rebased.count == instance.num_shards - 1
    assert shard_id not in rebased.selected_ids()


@given(shard_lists)
@settings(max_examples=60, deadline=None)
def test_join_raises_every_age(shards):
    """A straggler join can only increase (never decrease) existing ages."""
    instance = build(shards)
    straggler_latency = float(instance.latencies.max()) + 123.0
    bigger = instance.with_shard(10_000, tx_count=10, latency=straggler_latency)
    assert np.all(bigger.ages[: instance.num_shards] >= instance.ages - 1e-9)
