"""Tests for SE's online join/leave handling (Alg. 1 lines 9-12, Fig. 9)."""

import numpy as np
import pytest

from repro.core.dynamics import (
    CommitteeEvent,
    DynamicSchedule,
    EventKind,
    consecutive_join_schedule,
    fail_and_recover_schedule,
)
from repro.core.se import SEConfig, StochasticExploration

from tests.conftest import random_instance


def solve(instance, schedule, **kwargs):
    defaults = dict(num_threads=3, max_iterations=2_500, convergence_window=2_500, seed=2)
    defaults.update(kwargs)
    return StochasticExploration(SEConfig(**defaults)).solve(instance, schedule=schedule)


class TestLeave:
    def test_failed_committee_never_in_final_solution(self):
        instance = random_instance(20, seed=4)
        victim = instance.shard_ids[int(np.argmax(instance.values))]
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=300, kind=EventKind.LEAVE, shard_id=victim)
        ])
        result = solve(instance, schedule)
        final_ids = [
            result.final_instance.shard_ids[i] for i in np.flatnonzero(result.best_mask)
        ]
        assert victim not in final_ids
        assert result.final_instance.num_shards == 19

    def test_leave_of_unknown_committee_tolerated(self):
        instance = random_instance(12, seed=4)
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=100, kind=EventKind.LEAVE, shard_id=999)
        ])
        result = solve(instance, schedule)
        assert result.final_instance.num_shards == 12

    def test_result_feasible_after_leave(self):
        instance = random_instance(20, seed=5)
        victim = instance.shard_ids[0]
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=200, kind=EventKind.LEAVE, shard_id=victim)
        ])
        result = solve(instance, schedule)
        final = result.final_instance
        assert final.weight(result.best_mask) <= final.capacity

    def test_events_recorded(self):
        instance = random_instance(12, seed=6)
        schedule = fail_and_recover_schedule(
            shard_id=instance.shard_ids[0],
            tx_count=int(instance.tx_counts[0]),
            latency=float(instance.latencies[0]),
            fail_at=200,
            recover_at=600,
        )
        result = solve(instance, schedule)
        assert [e.kind for e in result.events_applied] == [EventKind.LEAVE, EventKind.JOIN]


class TestJoin:
    def test_join_grows_instance(self):
        instance = random_instance(10, seed=7)
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=100, kind=EventKind.JOIN, shard_id=500,
                           tx_count=900, latency=float(instance.latencies.max()) + 50)
        ])
        result = solve(instance, schedule)
        assert result.final_instance.num_shards == 11
        assert 500 in result.final_instance.shard_ids

    def test_duplicate_join_tolerated(self):
        instance = random_instance(10, seed=7)
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=100, kind=EventKind.JOIN, shard_id=0,
                           tx_count=900, latency=10.0)
        ])
        result = solve(instance, schedule)
        assert result.final_instance.num_shards == 10

    def test_consecutive_joins_all_applied(self):
        instance = random_instance(10, seed=8)
        arrivals = [(100 + k, 800 + k, float(instance.latencies.max()) + k) for k in range(6)]
        schedule = consecutive_join_schedule(arrivals, start_iteration=100, spacing=150)
        result = solve(instance, schedule)
        assert len(result.events_applied) == 6
        assert result.final_instance.num_shards == 16

    def test_valuable_join_improves_utility(self):
        """A huge fresh committee joining must raise the achievable utility."""
        instance = random_instance(12, seed=9)
        baseline = solve(instance, schedule=None)
        schedule = DynamicSchedule(events=[
            CommitteeEvent(iteration=200, kind=EventKind.JOIN, shard_id=777,
                           tx_count=2_900, latency=float(instance.latencies.max()))
        ])
        result = solve(instance, schedule)
        assert result.best_utility > baseline.best_utility

    def test_fail_then_recover_roundtrip(self):
        """Fig. 9a: after recovery the committee is selectable again."""
        instance = random_instance(14, seed=10)
        star = int(np.argmax(instance.values))
        star_id = instance.shard_ids[star]
        schedule = fail_and_recover_schedule(
            shard_id=star_id,
            tx_count=int(instance.tx_counts[star]),
            latency=float(instance.latencies[star]),
            fail_at=300,
            recover_at=900,
        )
        result = solve(instance, schedule, max_iterations=3_000, convergence_window=3_000)
        assert star_id in result.final_instance.shard_ids
        final_ids = [
            result.final_instance.shard_ids[i] for i in np.flatnonzero(result.best_mask)
        ]
        # The most valuable committee should be re-adopted after recovery.
        assert star_id in final_ids
