"""Tests for exponential timer sampling (eq. 8)."""

import math

import numpy as np
import pytest

from repro.core.timers import (
    LOG_DURATION_MAX,
    LOG_DURATION_MIN,
    ArmedTimer,
    clamped_exp,
    log_timer_mean,
    sample_log_timer,
)


class TestLogTimerMean:
    def test_eq8_formula(self):
        """log mean = tau - beta/2 * delta - log(|I_j| - n)."""
        value = log_timer_mean(delta_utility=4.0, beta=2.0, tau=0.5, open_choices=10)
        assert value == pytest.approx(0.5 - 4.0 - math.log(10))

    def test_better_swap_means_shorter_timer(self):
        improving = log_timer_mean(10.0, 2.0, 0.0, 5)
        worsening = log_timer_mean(-10.0, 2.0, 0.0, 5)
        assert improving < worsening

    def test_more_choices_shorter_timer(self):
        few = log_timer_mean(1.0, 2.0, 0.0, 2)
        many = log_timer_mean(1.0, 2.0, 0.0, 200)
        assert many < few

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            log_timer_mean(1.0, 2.0, 0.0, 0)
        with pytest.raises(ValueError):
            log_timer_mean(1.0, 0.0, 0.0, 5)


class TestSampling:
    def test_sample_mean_matches_eq8(self):
        rng = np.random.default_rng(0)
        log_mean = log_timer_mean(0.5, 2.0, 0.0, 4)
        samples = [
            math.exp(sample_log_timer(rng, 0.5, 2.0, 0.0, 4)) for _ in range(20_000)
        ]
        assert np.mean(samples) == pytest.approx(math.exp(log_mean), rel=0.05)

    def test_samples_are_exponential(self):
        """CV of an exponential is 1."""
        rng = np.random.default_rng(1)
        samples = np.array([
            math.exp(sample_log_timer(rng, 0.0, 2.0, 0.0, 4)) for _ in range(20_000)
        ])
        assert np.std(samples) / np.mean(samples) == pytest.approx(1.0, rel=0.08)

    def test_extreme_deltas_stay_finite_in_log_space(self):
        rng = np.random.default_rng(2)
        huge = sample_log_timer(rng, -1e6, 2.0, 0.0, 4)   # hugely worsening
        tiny = sample_log_timer(rng, 1e6, 2.0, 0.0, 4)    # hugely improving
        assert math.isfinite(huge) and math.isfinite(tiny)
        assert huge > tiny


class TestClamping:
    def test_identity_in_range(self):
        assert clamped_exp(1.0) == pytest.approx(math.e)

    def test_clamps_extremes(self):
        assert clamped_exp(1e9) == math.exp(LOG_DURATION_MAX)
        assert clamped_exp(-1e9) == math.exp(LOG_DURATION_MIN)
        assert clamped_exp(-1e9) > 0.0

    def test_armed_timer_duration_uses_clamp(self):
        timer = ArmedTimer(index_out=0, index_in=1, log_duration=200.0)
        assert timer.duration == math.exp(LOG_DURATION_MAX)
