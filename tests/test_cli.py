"""Tests for the ``mvcom`` CLI."""

import pytest

from repro.harness.cli import RUNNERS, main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in ("fig02", "fig08", "fig10", "theory_mixing"):
        assert name in output


def test_runner_registry_covers_every_figure():
    assert set(RUNNERS) == {
        "fig02", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
        "theory_mixing", "theory_failure",
    }


def test_invalid_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_theory_failure_end_to_end(capsys):
    assert main(["theory_failure"]) == 0
    output = capsys.readouterr().out
    assert "tv_distance" in output
    assert "finished in" in output
