"""Tests for the exact solvers (ground truth)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import branch_and_bound_optimum, brute_force_optimum
from repro.core.problem import EpochInstance, MVComConfig

from tests.conftest import random_instance


class TestBruteForce:
    def test_finds_known_optimum(self, tiny_instance):
        result = brute_force_optimum(tiny_instance)
        assert result.utility == pytest.approx(tiny_instance.utility(result.mask))
        assert tiny_instance.is_feasible(result.mask)

    def test_respects_capacity(self, tiny_instance):
        result = brute_force_optimum(tiny_instance)
        assert result.weight <= tiny_instance.capacity

    def test_respects_n_min(self):
        # All values negative -> unconstrained optimum would be empty, but
        # n_min forces two picks.
        config = MVComConfig(alpha=0.001, capacity=10_000, n_min_fraction=0.5)
        instance = EpochInstance([10, 20, 30, 40], [1.0, 2.0, 3.0, 1000.0], config)
        assert (instance.values[:3] < 0).all()
        result = brute_force_optimum(instance)
        assert result.count >= instance.n_min == 2

    def test_too_large_rejected(self):
        instance = random_instance(30, seed=1)
        with pytest.raises(ValueError):
            brute_force_optimum(instance)

    def test_infeasible_rejected(self):
        config = MVComConfig(alpha=1.5, capacity=5)
        instance = EpochInstance([100, 100], [1.0, 2.0], config)
        # n_min relaxes to 0 here, so the empty set is the only candidate
        result = brute_force_optimum(instance)
        assert result.count == 0


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        instance = random_instance(12, seed=seed)
        exact = brute_force_optimum(instance)
        bnb = branch_and_bound_optimum(instance)
        assert bnb.utility == pytest.approx(exact.utility)
        assert instance.is_feasible(bnb.mask)

    def test_handles_medium_instances(self):
        instance = random_instance(40, seed=3)
        result = branch_and_bound_optimum(instance)
        assert instance.is_feasible(result.mask)
        assert result.utility == pytest.approx(instance.utility(result.mask))

    def test_node_limit_raises(self):
        instance = random_instance(40, seed=3)
        with pytest.raises(RuntimeError):
            branch_and_bound_optimum(instance, node_limit=5)

    def test_result_as_solution(self, tiny_instance):
        result = branch_and_bound_optimum(tiny_instance)
        solution = result.as_solution(tiny_instance)
        assert solution.utility == pytest.approx(result.utility)


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=500),
                  st.floats(min_value=0, max_value=1000, allow_nan=False)),
        min_size=2, max_size=10,
    ),
    st.floats(min_value=0.5, max_value=5.0),
)
@settings(max_examples=60, deadline=None)
def test_property_bnb_equals_brute_force(shards, alpha):
    tx_counts = [s[0] for s in shards]
    latencies = [s[1] for s in shards]
    config = MVComConfig(alpha=alpha, capacity=max(sum(tx_counts) // 2, 1))
    instance = EpochInstance(tx_counts, latencies, config)
    exact = brute_force_optimum(instance)
    bnb = branch_and_bound_optimum(instance)
    assert abs(bnb.utility - exact.utility) < 1e-6 * max(1.0, abs(exact.utility))
