# Canonical workflows for the MVCom reproduction.

.PHONY: install test lint lint-fix bench figures examples storm serve clean

install:
	pip install -e . || python setup.py develop   # offline envs lack wheel

test:
	pytest tests/

# Determinism & contract linter (rules MV001-MV104, incl. the whole-program
# stream/taint/pickling/telemetry passes); non-zero on findings.
lint:
	PYTHONPATH=src python -m repro.analysis src/

# Apply the MV004/MV005 mechanical autofixes in place (preview with
# `python -m repro.analysis --fix --dry-run src/`).
lint-fix:
	PYTHONPATH=src python -m repro.analysis --fix src/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper figure + CSV/JSON artifacts under results/.
figures:
	python -m repro.harness.cli all

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

# Churn-storm fault injection with event-boundary invariants armed
# (repro.faultinject); non-zero exit + shrunk reproducer on a violation.
storm:
	REPRO_CONTRACTS=1 PYTHONPATH=src python -m repro.harness.cli storm \
		--seed 0 --events 200 --committees 40 --gamma 4 --iterations 1200 \
		--shrink --out storm_reproducer.json

# Steady-state scheduling service: warm-started epoch chaining over the
# Bitcoin-trace mempool feeder, with live metrics/SLO sinks attached.
serve:
	REPRO_CONTRACTS=1 PYTHONPATH=src python -m repro.harness.cli serve \
		--epochs 8 --committees 60 --gamma 10 --iterations 1500 \
		--out serve_report.json

clean:
	rm -rf results/*.csv results/*.json .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
