"""Spectral analysis of the designed chain (the route behind Theorem 1).

The paper's Theorem 1 proof sketch cites the uniformisation technique and
Diaconis & Stroock's geometric eigenvalue bounds [19].  This module makes
that machinery concrete for the explicitly-built chains of
:mod:`repro.core.markov`:

* :func:`spectral_gap` -- the gap :math:`\\lambda_1` of the reversible
  generator (the second-smallest eigenvalue of :math:`-Q` under the
  :math:`\\pi`-inner product);
* :func:`relaxation_time` -- :math:`t_{rel} = 1/\\lambda_1`;
* :func:`mixing_time_spectral_bounds` -- the standard sandwich
  :math:`(t_{rel} - 1)\\ln\\frac{1}{2\\epsilon} \\le t_{mix}(\\epsilon) \\le
  t_{rel}\\,\\ln\\frac{1}{2\\epsilon\\,\\pi_{min}}` (Levin & Peres Thm. 20.6 /
  12.5, continuous-time form), which is dramatically tighter than
  Theorem 1's worst-case eqs. (12)-(13) and sandwiches the same measured
  mixing time.

Reversibility (Lemma 3) is what makes the symmetrised eigenproblem valid:
with :math:`S = D_\\pi^{1/2} Q D_\\pi^{-1/2}` symmetric, all eigenvalues are
real and the gap is well-defined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.markov import ExactChain


@dataclass(frozen=True)
class SpectralSummary:
    """Spectral quantities of one reversible chain."""

    gap: float
    relaxation_time: float
    pi_min: float
    eigenvalues: tuple  # of -Q, sorted ascending; [0] ~ 0


def _symmetrized_spectrum(chain: ExactChain) -> np.ndarray:
    """Eigenvalues of -Q via the pi-symmetrised form (real by Lemma 3)."""
    pi = chain.stationary()
    if (pi <= 0).any():
        raise ValueError("stationary distribution must be strictly positive")
    root = np.sqrt(pi)
    symmetric = (root[:, None] * (-chain.generator)) / root[None, :]
    # Numerical symmetrisation: S should be symmetric up to rounding.
    symmetric = 0.5 * (symmetric + symmetric.T)
    return np.sort(np.linalg.eigvalsh(symmetric))


def spectral_summary(chain: ExactChain) -> SpectralSummary:
    """Compute the spectral gap and relaxation time of an exact chain."""
    eigenvalues = _symmetrized_spectrum(chain)
    if len(eigenvalues) < 2:
        raise ValueError("a one-state chain has no spectral gap")
    gap = float(eigenvalues[1])
    if gap <= 0:
        raise ValueError("chain is not irreducible (zero spectral gap)")
    pi = chain.stationary()
    return SpectralSummary(
        gap=gap,
        relaxation_time=1.0 / gap,
        pi_min=float(pi.min()),
        eigenvalues=tuple(float(v) for v in eigenvalues),
    )


def spectral_gap(chain: ExactChain) -> float:
    """The gap lambda_1 of the reversible generator."""
    return spectral_summary(chain).gap


def relaxation_time(chain: ExactChain) -> float:
    """1 / spectral gap."""
    return spectral_summary(chain).relaxation_time


def mixing_time_spectral_bounds(chain: ExactChain, epsilon: float) -> tuple:
    """(lower, upper) sandwich on :math:`t_{mix}(\\epsilon)` from the gap.

    Continuous-time reversible chains satisfy

    .. math:: (t_{rel} - 1)\\,\\ln\\tfrac{1}{2\\epsilon}
              \\;\\le\\; t_{mix}(\\epsilon) \\;\\le\\;
              t_{rel}\\,\\ln\\tfrac{1}{2\\epsilon\\,\\sqrt{\\pi_{min}}} .

    (The lower bound is clamped at 0; for fast chains ``t_rel < 1``.)
    """
    if not 0 < epsilon < 0.5:
        raise ValueError("epsilon must lie in (0, 1/2)")
    summary = spectral_summary(chain)
    lower = max(summary.relaxation_time - 1.0, 0.0) * math.log(1.0 / (2.0 * epsilon))
    upper = summary.relaxation_time * math.log(
        1.0 / (2.0 * epsilon * math.sqrt(summary.pi_min))
    )
    return lower, upper


def conductance_lower_bound_on_gap(chain: ExactChain) -> float:
    """Cheeger-style bound: :math:`\\lambda_1 \\ge \\Phi^2 / 2`.

    The conductance :math:`\\Phi` is minimised over all cuts; this is
    exponential in the state count, so it is exposed only for the small
    chains the tests enumerate (used to cross-validate the eigensolve).
    """
    pi = chain.stationary()
    size = chain.num_states
    if size > 18:
        raise ValueError("conductance enumeration limited to <= 18 states")
    flow = pi[:, None] * chain.generator  # ergodic flow matrix
    best = math.inf
    for cut in range(1, 2 ** (size - 1)):
        members = [i for i in range(size) if cut >> i & 1]
        mass = float(pi[members].sum())
        if mass == 0.0:
            continue
        complement = [i for i in range(size) if not cut >> i & 1]
        crossing = float(flow[np.ix_(members, complement)].sum())
        conductance = crossing / min(mass, 1.0 - mass)
        best = min(best, conductance)
    return best * best / 2.0
