"""Exponential timers for the SE algorithm (Alg. 3 / eq. 8).

Each solution thread ``f_n`` arms a countdown timer whose value is
exponentially distributed with mean

.. math:: \\mathbb E[T_n] = \\frac{\\exp(\\tau - \\frac{\\beta}{2}(U_{f'} - U_f))}{|I_j| - n}

so a thread whose pre-chosen swap would *improve* utility fires almost
immediately, while a worsening swap waits (in expectation) exponentially
long.  With the paper's utility scales (:math:`|U_{f'} - U_f|` in the
thousands and :math:`\\beta = 2`) the mean spans thousands of orders of
magnitude, far beyond float64.  We therefore sample timers in **log space**:

``T = mean * E`` with ``E ~ Exp(1)``, so ``log T = log mean + log E`` --
both terms are well-conditioned floats, and the *comparison* between
threads (all the algorithm needs to pick the next transition) is exact.

:func:`clamped_exp` converts log-durations back to finite virtual-time
advances for trace recording; the clamp is the practical realisation of the
paper's :math:`\\tau` "conditional constant used to avoid the zero-floored
computing error of the exp function".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: log-duration clamp: keeps exp() finite while preserving ordering of any
#: realistically observable timer.
LOG_DURATION_MIN = -80.0
LOG_DURATION_MAX = 80.0


def log_timer_mean(
    delta_utility: float,
    beta: float,
    tau: float,
    open_choices: int,
) -> float:
    """Log of eq. (8)'s mean: ``tau - beta/2 * delta - log(|I_j| - n)``.

    ``delta_utility`` is :math:`U_{f'} - U_f` for the pre-chosen swap and
    ``open_choices`` is :math:`|I_j| - n`, the number of unselected shards.
    """
    if open_choices <= 0:
        raise ValueError("open_choices must be positive")
    if beta <= 0:
        raise ValueError("beta must be positive")
    return tau - 0.5 * beta * delta_utility - math.log(open_choices)


def sample_log_timer(
    rng: np.random.Generator,
    delta_utility: float,
    beta: float,
    tau: float,
    open_choices: int,
) -> float:
    """Sample ``log T`` for a timer with eq. (8)'s mean.

    Uses ``log(E)`` with ``E ~ Exp(1)`` drawn via the inverse CDF from a
    uniform, so extreme quantiles stay finite in log space.
    """
    uniform = rng.random()
    # E = -log(1-U); log E computed stably via log(-log1p(-u)).
    log_e = math.log(max(-math.log1p(-uniform), 1e-300))
    return log_timer_mean(delta_utility, beta, tau, open_choices) + log_e


def clamped_exp(log_value: float) -> float:
    """``exp(log_value)`` clamped into a finite, positive float range."""
    return math.exp(min(max(log_value, LOG_DURATION_MIN), LOG_DURATION_MAX))


@dataclass
class ArmedTimer:
    """A countdown armed for one thread: the chosen swap and its log-duration."""

    index_out: int
    index_in: int
    log_duration: float

    @property
    def duration(self) -> float:
        """Finite virtual-time duration (clamped; ordering uses log_duration)."""
        return clamped_exp(self.log_duration)
