"""The Online Distributed Stochastic-Exploration algorithm (Algs. 1-3).

Structure (Section IV-D, Fig. 5): the algorithm runs Γ *distributed
parallel execution threads*; each executor hosts the full family of
solution threads :math:`\\{f_n\\}` -- one per feasible cardinality ``n``
(Alg. 1 line 3) -- together with their timers :math:`\\{T_n\\}`.  Within an
executor the solutions race: every solution holds an armed exponential
timer (Alg. 3) for a pre-chosen swap pair :math:`(\\tilde i, \\ddot i)`
whose mean follows eq. (8); the first timer to expire performs its swap
("State Transit") and broadcasts RESET, so every solution re-draws its pair
and timer against the new utilities.  Across executors the replicas explore
independently and the final committee takes the best converged solution
(Alg. 1 lines 22-27) -- which is exactly why Fig. 8 shows larger Γ
converging faster per iteration and to a higher utility, saturating once
additional replicas stop finding new basins.

One race round is simulated exactly: timers are independent exponentials,
so (i) drawing each solution's pair uniformly and its log-duration from
eq. (8), then (ii) firing the minimum, reproduces the race's distribution;
the RESET broadcast is the re-draw at the top of the next round.

Numerics: timer arithmetic runs in log space (:mod:`repro.core.timers`)
because :math:`\\beta\\,\\Delta U` routinely exceeds float range on the
paper's workloads; durations are clamped into a finite range only when
added to the virtual clock -- the practical realisation of the paper's
:math:`\\tau` "conditional constant [avoiding] the zero-floored computing
error of the exp function".

Dynamic events (Alg. 1 lines 9-12): a LEAVE re-initialises every solution
that contained the failed committee (the trimmed-space behaviour of
Section V) and rebases the rest; a JOIN rebases all solutions onto the
grown instance -- the DDL, and therefore every shard's value, re-evaluates.
Both reset the convergence detector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.dynamics import CommitteeEvent, DynamicSchedule, EventKind
from repro.core.problem import DEFAULT_BETA, DEFAULT_TAU, EpochInstance
from repro.core.repair import (
    greedy_swap_improve,
    repair_feasibility,
    resize_to_cardinality,
)
from repro.core.solution import Solution
from repro.core.timers import clamped_exp
from repro.analysis.contracts import feasible_result
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry
from repro.sim.rng import RandomStreams, spawn_fast_rng


class InfeasibleEpochError(ValueError):
    """Raised when an epoch admits no feasible selection at all."""


@dataclass(frozen=True)
class SEConfig:
    """Tunables of the SE algorithm (paper defaults: β=2, τ=0).

    ``num_threads`` is the paper's Γ, the number of executor replicas.
    ``max_solution_threads`` caps how many per-cardinality solution threads
    :math:`f_n` each replica instantiates (the feasible cardinality range
    is subsampled evenly when wider); ``None`` means one per feasible
    cardinality, exactly as in Alg. 1.  ``pair_tries`` bounds the rejection
    sampling used to find a capacity-feasible swap pair in Set-timer();
    ``init_tries`` bounds Alg. 2's "re-pick until Cons. (4) holds" loop.

    ``engine`` selects the execution engine (:mod:`repro.core.engine`):
    the default ``"auto"`` resolves per solve via
    :func:`repro.core.engine.select_engine` (machine-independent
    scalar-vs-batched split, so seeded trajectories reproduce everywhere);
    ``"serial"`` is the reference scalar loop, ``"parallel"`` fans the Γ
    replicas across a spawn-safe process pool (``num_workers`` processes,
    clamped to ``os.cpu_count()``) with byte-identical results, and
    ``"vectorized"`` runs the fully-batched Γ×thread race kernel validated
    distributionally.
    """

    beta: float = DEFAULT_BETA
    tau: float = DEFAULT_TAU
    num_threads: int = 10
    max_iterations: int = 10_000
    convergence_window: int = 1_000
    tolerance: float = 1e-9
    seed: int = 0
    pair_tries: int = 16
    init_tries: int = 200
    include_full_solution: bool = True
    max_solution_threads: Optional[int] = 64
    engine: str = "auto"
    num_workers: int = 4

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.num_threads <= 0:
            raise ValueError("num_threads (Gamma) must be positive")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.pair_tries <= 0 or self.init_tries <= 0:
            raise ValueError("retry budgets must be positive")
        if self.max_solution_threads is not None and self.max_solution_threads <= 0:
            raise ValueError("max_solution_threads must be positive or None")
        # Mirrors repro.core.engine.SELECTABLE_ENGINES (engine imports se,
        # so validating against the literal avoids the circular import).
        if self.engine not in ("auto", "serial", "parallel", "vectorized"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected auto, serial, "
                "parallel or vectorized"
            )
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")


@dataclass
class SEResult:
    """Outcome of one SE run.

    ``utility_trace[k]`` is the best utility seen up to race round ``k``;
    ``current_trace[k]`` is the best *current* solution utility across
    replicas at round ``k`` -- the series that dips when a committee fails
    (Fig. 9a).  ``virtual_time_trace`` is cumulative virtual seconds (the
    parallel executors' wall clock, i.e. the slowest replica's race time).
    """

    best_mask: np.ndarray
    best_utility: float
    best_weight: int
    best_count: int
    iterations: int
    converged: bool
    utility_trace: np.ndarray
    current_trace: np.ndarray
    virtual_time_trace: np.ndarray
    thread_cardinalities: List[int]
    num_replicas: int = 1
    events_applied: List[CommitteeEvent] = field(default_factory=list)
    final_instance: Optional[EpochInstance] = None
    warm_state: Optional["SEWarmState"] = None

    @property
    def valuable_degree_inputs(self) -> tuple:
        """(mask, instance) pair for metrics; instance reflects final dynamics."""
        return self.best_mask, self.final_instance


@dataclass
class SEWarmState:
    """Carryable solver state: everything epoch *e+1* can reuse from epoch *e*.

    ``replicas`` are the live executor replicas with their per-thread
    solutions and named RNG streams; ``streams`` is the run's
    :class:`~repro.sim.rng.RandomStreams` registry, whose cached generators
    *continue* (init/leave/vectorized-race streams resume mid-sequence
    rather than restarting); ``best`` is the incumbent λ and ``instance``
    the epoch it was scored against.  ``generation`` counts warm handoffs
    and namespaces the streams of threads spawned after the first epoch, so
    cross-epoch spawns never correlate.

    A warm state is *consumed* by ``solve(warm=...)``: the adopting run
    re-seats these replica objects in place and races them, so reusing one
    warm state for two solves is undefined.  Chain linearly — each result's
    ``warm_state`` seeds exactly the next solve (the serve loop's usage).
    """

    replicas: List["_Replica"]
    streams: RandomStreams
    best: Solution
    instance: EpochInstance
    generation: int = 1


class _ThreadRng:
    """Per-thread random stream for the race hot path.

    The race needs tens of millions of scalar draws; the stdlib Mersenne
    Twister's C-level ``random()`` is an order of magnitude cheaper per
    call than a ``numpy.random.Generator`` scalar draw, and each thread
    owning its own named stream (via :func:`repro.sim.rng.spawn_fast_rng`)
    preserves stream isolation.
    """

    __slots__ = ("_rnd",)

    def __init__(self, root_seed: int, name: str) -> None:
        self._rnd = spawn_fast_rng(root_seed, name)

    @property
    def uniform(self):
        """The bound ``random()`` method (bind once per hot loop)."""
        return self._rnd.random


# A thread's armed timer is the tuple (log_duration, index_out, index_in);
# plain tuples keep the race's per-round allocation cost negligible.
class _SolutionThread:
    """One solution thread :math:`f_n` (state machine of Fig. 6)."""

    __slots__ = ("cardinality", "rng", "config", "solution", "timer", "active", "sel", "unsel", "loc", "last_swap")

    def __init__(self, cardinality: int, thread_rng: _ThreadRng, config: SEConfig) -> None:
        self.cardinality = cardinality
        self.rng = thread_rng
        self.config = config
        self.solution: Optional[Solution] = None
        self.timer: Optional[tuple] = None
        self.active = False
        # Index bookkeeping for O(1) uniform pair sampling: ``sel``/``unsel``
        # list the selected/unselected positions and ``loc[p]`` is position
        # p's slot in whichever list currently holds it.
        self.sel: list = []
        self.unsel: list = []
        self.loc: list = []
        self.last_swap: Optional[tuple] = None

    def set_solution(self, solution: Optional[Solution]) -> None:
        """Install a solution and rebuild the pair-sampling index lists.

        Vectorised: ``flatnonzero`` yields the same ascending position
        order the original scalar scan produced, so serial trajectories
        (which draw pairs by list slot) are byte-identical either way.
        This runs Γ×T times at spawn and at every engine sync-back, which
        made the scalar scan a measurable fixed cost for the batched
        kernel on thread-rich instances.
        """
        self.solution = solution
        self.timer = None
        if solution is None:
            self.sel, self.unsel, self.loc = [], [], []
            self.active = False
            return
        mask = solution.mask
        sel_arr = np.flatnonzero(mask)
        unsel_arr = np.flatnonzero(~mask)
        loc = np.empty(mask.size, dtype=np.int64)
        loc[sel_arr] = np.arange(sel_arr.size)
        loc[unsel_arr] = np.arange(unsel_arr.size)
        self.sel = sel_arr.tolist()
        self.unsel = unsel_arr.tolist()
        self.loc = loc.tolist()
        self.active = True

    # -------------------------------------------------------------- #
    # Alg. 2: Initialization()
    # -------------------------------------------------------------- #
    def initialize(self, instance: EpochInstance, np_rng: np.random.Generator) -> bool:
        """Random feasible solution with exactly ``self.cardinality`` shards.

        Alg. 2 re-picks random ``n``-subsets until Cons. (4) holds; we
        realise the same distribution's support in one vectorised pass: a
        uniform random ``n``-subset, repaired (when over capacity) by
        swapping its heaviest members for the lightest outsiders until the
        capacity holds.  Falls back to the ``n`` lightest shards, so a
        feasible cardinality never deactivates.
        """
        n = self.cardinality
        self.timer = None
        if not 0 < n <= instance.num_shards:
            self.set_solution(None)
            return False
        tx_counts = instance.tx_counts
        permutation = np_rng.permutation(instance.num_shards)
        chosen, outside = permutation[:n], permutation[n:]
        weight = int(tx_counts[chosen].sum())
        if weight > instance.capacity and len(outside):
            heavy_first = chosen[np.argsort(-tx_counts[chosen], kind="stable")]
            light_first = outside[np.argsort(tx_counts[outside], kind="stable")]
            swaps = min(len(heavy_first), len(light_first))
            # relief[k] = weight shed by the first k+1 swaps.  Its increments
            # (heaviest-in minus lightest-out) are non-increasing and can go
            # *negative* once the remaining outsiders outweigh the remaining
            # picks, so relief itself is NOT sorted — searchsorted on it is
            # undefined and used to collapse repairable draws to lightest-n.
            # The running maximum is sorted and crosses the deficit at the
            # same minimal k, so search that instead.
            relief = np.cumsum(tx_counts[heavy_first[:swaps]] - tx_counts[light_first[:swaps]])
            best_relief = np.maximum.accumulate(relief)
            deficit = weight - instance.capacity
            needed = int(np.searchsorted(best_relief, deficit, side="left")) + 1
            if needed <= swaps and best_relief[needed - 1] >= deficit:
                chosen = np.concatenate([heavy_first[needed:], light_first[:needed]])
            else:
                chosen = np.argsort(tx_counts, kind="stable")[:n]  # lightest-n fallback
        candidate = Solution.from_indices(instance, chosen)
        if candidate.capacity_feasible:
            self.set_solution(candidate)
            return True
        self.set_solution(None)
        return False

    # -------------------------------------------------------------- #
    # Alg. 3: Set-timer()
    # -------------------------------------------------------------- #
    def set_timer(self) -> None:
        """Choose a random swap pair and arm an exponential timer (eq. 8).

        Pairs whose swap would violate the capacity are rejected and
        redrawn; if no feasible pair surfaces within the retry budget the
        thread parks (no timer) until the next RESET re-arms it.

        Hot path: the pair is drawn uniformly from the maintained
        selected/unselected index lists (two draws, no rejection against
        the mask) and scalar reads go through the instance's plain-list
        mirrors.
        """
        self.timer = None
        solution = self.solution
        if not self.active or solution is None:
            return
        sel, unsel = self.sel, self.unsel
        len_sel, len_unsel = len(sel), len(unsel)
        if len_sel == 0 or len_unsel == 0:
            return
        uniform = self.rng.uniform
        instance = solution.instance
        slack = instance.capacity - solution.weight
        tx_counts = instance.tx_counts_list
        values = instance.values_list
        half_beta = 0.5 * self.config.beta
        log_mean_base = self.config.tau - math.log(len_unsel)
        for _ in range(self.config.pair_tries):
            index_out = sel[int(uniform() * len_sel)]
            index_in = unsel[int(uniform() * len_unsel)]
            if tx_counts[index_in] - tx_counts[index_out] > slack:
                continue
            delta = values[index_in] - values[index_out]
            # log T = log(mean) + log(Exp(1) sample), computed stably
            # (log_timer_mean inlined: tau - beta/2*delta - log(open)).
            log_exp1 = math.log(max(-math.log1p(-uniform()), 1e-300))
            self.timer = (log_mean_base - half_beta * delta + log_exp1, index_out, index_in)
            return

    # -------------------------------------------------------------- #
    # Alg. 1: State Transit
    # -------------------------------------------------------------- #
    def fire(self) -> None:
        """Apply the armed swap: :math:`x_{\\tilde i} \\to 0`, :math:`x_{\\ddot i} \\to 1`."""
        if self.timer is None or self.solution is None:
            raise RuntimeError("fire() called with no armed timer")
        _, index_out, index_in = self.timer
        self.solution.swap(index_out, index_in)
        # Keep the pair-sampling lists in sync: out joins unsel in in's old
        # slot; in joins sel in out's old slot.
        loc = self.loc
        slot_out, slot_in = loc[index_out], loc[index_in]
        self.sel[slot_out] = index_in
        self.unsel[slot_in] = index_out
        loc[index_in], loc[index_out] = slot_out, slot_in
        self.last_swap = (index_out, index_in)
        self.timer = None

    @property
    def utility(self) -> float:
        """Current solution utility (-inf when uninitialised)."""
        return self.solution.utility if self.solution is not None else float("-inf")


class _Replica:
    """One executor hosting the full solution-thread family (Fig. 5).

    ``replica_id`` is the executor's stable identity: every named stream the
    replica consumes (init, dynamic re-init, leave re-init) is keyed by it,
    never by the replica's position in a list — so the Γ replicas stay
    independent regardless of iteration order (the premise behind Fig. 8).
    """

    __slots__ = ("replica_id", "threads", "virtual_time", "current_utility")

    def __init__(self, replica_id: int, threads: List[_SolutionThread]) -> None:
        self.replica_id = replica_id
        self.threads = threads
        self.virtual_time = 0.0
        self.current_utility = float("-inf")
        self.recompute_current()

    def recompute_current(self) -> None:
        """Rebuild the running current-utility max from a full thread scan.

        Only needed at bootstrap and dynamic-event boundaries; inside the
        race :meth:`race_round` maintains the max incrementally (exactly one
        thread mutates per round, so a full ``O(threads)`` rescan per round
        was pure overhead).
        """
        best = float("-inf")
        for thread in self.threads:
            solution = thread.solution
            if solution is not None and solution.utility > best:
                best = solution.utility
        self.current_utility = best

    def race_round(self) -> Optional[_SolutionThread]:
        """Arm every solution (the RESET re-draw), fire the earliest timer.

        Returns the fired thread, or ``None`` when no solution could arm a
        feasible pair this round.
        """
        winner: Optional[_SolutionThread] = None
        winner_log = math.inf
        for thread in self.threads:
            thread.set_timer()
            timer = thread.timer
            if timer is not None and timer[0] < winner_log:
                winner_log = timer[0]
                winner = thread
        if winner is None:
            return None
        self.virtual_time += clamped_exp(winner_log)
        before = winner.solution.utility
        winner.fire()
        after = winner.solution.utility
        # Incremental current-utility maintenance: the fired thread is the
        # only mutation this round.  Its rise can only raise the max; its
        # fall forces a rescan only when it held the max alone.
        if after > self.current_utility:
            self.current_utility = after
        elif before == self.current_utility and after < before:
            self.recompute_current()
        return winner

    def best_solution(self) -> Optional[Solution]:
        """This replica's best current solution (None if none live)."""
        best = None
        for thread in self.threads:
            if thread.solution is not None:
                if best is None or thread.solution.utility > best.utility:
                    best = thread.solution
        return best


def instances_match(a: EpochInstance, b: EpochInstance) -> bool:
    """True when two instances are interchangeable for a warm start.

    Value equality over everything a thread's cached scores depend on:
    membership (ids *and* positions), tx counts, latencies, the DDL (hence
    ages/values) and the constraint parameters.  Used to pick the
    cache-verbatim zero-drift adoption path, so it must be exact — a single
    changed value forces the re-score path.
    """
    return (
        a is b
        or (
            a.shard_ids == b.shard_ids
            and a.capacity == b.capacity
            and a.n_min == b.n_min
            and a.ddl == b.ddl
            and a.config.alpha == b.config.alpha
            and np.array_equal(a.tx_counts, b.tx_counts)
            and np.array_equal(a.latencies, b.latencies)
        )
    )


def should_bootstrap(instance: EpochInstance) -> bool:
    """Alg. 1 line 1's trigger condition.

    The algorithm only starts once (a) enough member committees have
    arrived to satisfy the cardinality floor and (b) the submitted shards
    overflow the final block (otherwise everything fits and there is
    nothing to schedule).
    """
    return (
        instance.num_shards >= instance.n_min
        and int(instance.tx_counts.sum()) > instance.capacity
    )


class StochasticExploration:
    """Driver implementing Alg. 1's event loop over Γ executor replicas.

    ``telemetry`` is an injected :class:`repro.obs.telemetry.NullTelemetry`
    hub (rule MV007: core never constructs its own -- that would smuggle a
    clock into replayable code).  With the default ``NULL_TELEMETRY`` the
    race loop pays only a hoisted boolean check, and :meth:`solve` produces
    byte-identical results either way: the instrumentation draws no
    randomness and never branches on telemetry state.
    """

    def __init__(
        self,
        config: SEConfig = SEConfig(),
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> None:
        self.config = config
        self.telemetry = telemetry

    # -------------------------------------------------------------- #
    # public API
    # -------------------------------------------------------------- #
    @feasible_result
    def solve(
        self,
        instance: EpochInstance,
        schedule: Optional[DynamicSchedule] = None,
        probe: Optional[Callable[..., None]] = None,
        warm: Optional[object] = None,
    ) -> SEResult:
        """Run SE on one epoch, optionally with a dynamic event schedule.

        The returned best solution satisfies const. (3) ``count >= N_min``
        and const. (4) ``weight <= Ĉ`` with a finite utility; set
        ``REPRO_CONTRACTS=1`` to assert this at the boundary.

        ``warm`` seeds the run from a prior epoch: pass the previous
        :class:`SEResult` (its ``warm_state``) or an :class:`SEWarmState`
        directly.  Instead of re-bootstrapping the Γ replicas from scratch,
        the run adopts the carried thread population — retained committees
        are re-scored against the new instance, only invalidated threads
        (departed member, or the re-valued weight busting Ĉ) re-seat from
        the continued init streams, and the incumbent is rebased and
        repaired via :mod:`repro.core.repair`.  With zero drift (an
        unchanged instance) adoption is cache-verbatim, so a warm scalar
        solve is byte-identical to continuing the same solve.  Warm states
        are consumed; chain them linearly (see :class:`SEWarmState`).

        ``probe``, when given, is invoked at every dynamic-event boundary —
        after the events are applied, the replicas re-seated and the
        incumbent rebased — as ``probe(iteration=..., events=...,
        instance=..., best=..., replicas=...)``.  It may raise to abort the
        run; :mod:`repro.faultinject` uses it to arm feasibility /
        conservation invariants during churn storms.  The probe draws no
        randomness, so passing one never perturbs the seeded trajectory.

        The race itself executes on the engine selected by
        ``config.engine`` (:mod:`repro.core.engine`): the serial reference
        loop, the byte-identical parallel replica pool, or the batched
        vectorized kernel.  Probes and telemetry always run on this driver
        process regardless of engine.
        """
        from repro.core import engine as engine_module  # deferred: engine imports se

        if isinstance(warm, SEResult):
            warm = warm.warm_state
        if warm is not None and not isinstance(warm, SEWarmState):
            raise TypeError(
                f"warm must be an SEResult or SEWarmState, got {type(warm).__name__}"
            )
        return engine_module.run_engine(self, instance, schedule, probe, warm=warm)

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def thread_cardinalities(self, instance: EpochInstance) -> List[int]:
        """Cardinalities instantiated per replica (Alg. 1 line 3).

        The feasible range is ``[n_lo, n_hi]`` with ``n_lo`` the (effective)
        ``n_min`` floor and ``n_hi`` the capacity cardinality cap --
        cardinalities outside it can never satisfy constraints (3)-(4), so
        their :math:`f_n` could never enter the candidate set λ.  When
        ``max_solution_threads`` caps the count, the range is subsampled
        evenly (always keeping both endpoints).
        """
        n_hi = max(instance.max_feasible_cardinality, 1)
        n_hi = min(n_hi, instance.num_shards)
        n_lo = max(1, min(instance.n_min, n_hi))
        cardinalities = list(range(n_lo, n_hi + 1))
        cap = self.config.max_solution_threads
        if cap is not None and len(cardinalities) > cap:
            positions = np.linspace(0, len(cardinalities) - 1, num=cap)
            cardinalities = sorted({cardinalities[int(round(p))] for p in positions})
        return cardinalities

    def _spawn_replicas(self, instance: EpochInstance, streams: RandomStreams) -> List[_Replica]:
        cardinalities = self.thread_cardinalities(instance)
        replicas = []
        for replica_id in range(self.config.num_threads):
            init_rng = streams.get(f"replica-{replica_id}-init")
            threads = []
            for cardinality in cardinalities:
                rng = _ThreadRng(streams.seed, f"replica-{replica_id}-n{cardinality}")
                thread = _SolutionThread(cardinality=cardinality, thread_rng=rng, config=self.config)
                thread.initialize(instance, init_rng)
                threads.append(thread)
            replicas.append(_Replica(replica_id, threads))
        return replicas

    def _adopt_replicas(
        self, warm: SEWarmState, instance: EpochInstance
    ) -> dict:
        """Re-seat a prior run's replicas onto ``instance`` (warm start).

        The generalisation of :meth:`_apply_events`'s join/leave re-seating
        to "the whole population drifted": every retained thread's solution
        is *re-scored* by rebasing it onto the new instance (shard ids are
        stable across epochs; tx counts, latencies, the DDL and therefore
        every value may all have changed), and only *invalidated* threads —
        a selected committee departed (cardinality broke const. 3's exact-n
        family shape) or the re-valued weight busted Ĉ (const. 4) —
        re-initialise, drawing from the replica's *continued* init stream.
        The feasible cardinality range is recomputed for the new instance;
        threads whose cardinality fell out of range are dropped and missing
        cardinalities spawn with generation-namespaced streams so the
        Mersenne sequences of different epochs' spawns never coincide.

        With zero drift (a value-equal instance) adoption is cache-verbatim:
        solutions keep their incrementally-maintained utility/weight caches
        (recomputing from the mask can differ in the last bit), which is
        what makes a warm scalar solve byte-identical to continuing the
        same solve.  Mutates ``warm.replicas`` in place; returns re-seat
        stats for the ``se.warm_start`` event.
        """
        replicas = warm.replicas
        if len(replicas) != self.config.num_threads:
            raise ValueError(
                f"warm state carries {len(replicas)} replicas but config.num_threads "
                f"(Gamma) is {self.config.num_threads}; warm starts cannot resize Gamma"
            )
        streams = warm.streams
        if instances_match(warm.instance, instance):
            for replica in replicas:
                for thread in replica.threads:
                    thread.timer = None
                    if thread.solution is not None:
                        # Identity rebind only: the caller's instance is
                        # value-equal, so every cache stays bit-valid.
                        thread.solution.instance = instance
            return {"retained": sum(len(r.threads) for r in replicas),
                    "reseated": 0, "spawned": 0, "zero_drift": True}
        cardinalities = self.thread_cardinalities(instance)
        retained = reseated = spawned = 0
        for replica in replicas:
            replica_id = replica.replica_id
            # The init stream continues across epochs, exactly as it does
            # across dynamic events within one solve (see _apply_events).
            # repro: ignore[MV101]
            init_rng = streams.get(f"replica-{replica_id}-init")
            existing = {thread.cardinality: thread for thread in replica.threads}
            threads = []
            for cardinality in cardinalities:
                thread = existing.pop(cardinality, None)
                if thread is None:
                    rng = _ThreadRng(
                        streams.seed,
                        f"replica-{replica_id}-gen{warm.generation}-n{cardinality}",
                    )
                    thread = _SolutionThread(
                        cardinality=cardinality, thread_rng=rng, config=self.config
                    )
                    thread.initialize(instance, init_rng)
                    spawned += 1
                else:
                    rebased = (
                        thread.solution.rebase(instance)
                        if thread.solution is not None
                        else None
                    )
                    if rebased is not None and resize_to_cardinality(
                        instance, rebased, cardinality
                    ):
                        # Departed members are padded back deterministically
                        # (resize) and the stale membership re-anchored with
                        # a few cardinality-preserving improving swaps; each
                        # thread keeps its own carried base, so the
                        # population keeps its diversity.
                        greedy_swap_improve(instance, rebased)
                        thread.set_solution(rebased)  # re-scored, still valid
                        retained += 1
                    else:
                        thread.initialize(instance, init_rng)
                        reseated += 1
                thread.timer = None
                threads.append(thread)
            replica.threads = threads
            replica.recompute_current()
        return {"retained": retained, "reseated": reseated, "spawned": spawned,
                "zero_drift": False}

    @staticmethod
    def _best_current(replicas: Sequence[_Replica]) -> Solution:
        best = None
        for replica in replicas:
            candidate = replica.best_solution()
            if candidate is not None and (best is None or candidate.utility > best.utility):
                best = candidate
        if best is None:
            raise InfeasibleEpochError("all solution threads are inactive")
        return best.copy()

    @staticmethod
    def _current_utility(replicas: Sequence[_Replica]) -> float:
        """Best current utility across replicas (cached running maxes)."""
        return max(replica.current_utility for replica in replicas)

    @staticmethod
    def _pick_better(best: Solution, candidate: Optional[Solution]) -> Solution:
        if candidate is not None and candidate.utility > best.utility:
            return candidate.copy()
        return best

    def _maybe_full_solution(self, instance: EpochInstance, best: Solution) -> Solution:
        """Alg. 1 line 25: also consider :math:`f_{|I_j|}` when Ĉ allows it."""
        if not self.config.include_full_solution:
            return best
        full = Solution(instance, np.ones(instance.num_shards, dtype=bool))
        if full.capacity_feasible:
            return self._pick_better(best, full)
        return best

    def _rebase_best(self, best: Solution, instance: EpochInstance) -> Solution:
        """Carry the incumbent across a dynamic event, restoring const. (3)-(4).

        Rebasing by shard id can break both constraints: a LEAVE drops
        selected shards (cardinality can fall below ``N_min``) and a
        DDL-shifting JOIN re-values everything (the carried weight can
        exceed Ĉ).  Trimming alone used to leave the incumbent
        cardinality-infeasible yet still able to win ``_pick_better`` on raw
        utility; the shared :func:`repro.core.repair.repair_feasibility`
        re-establishes the capacity trim *and* the ``N_min`` pad.
        """
        rebased = best.rebase(instance)
        if not rebased.feasible:
            repair_feasibility(instance, rebased)
        return rebased

    def _apply_events(
        self,
        instance: EpochInstance,
        replicas: Sequence[_Replica],
        events: Sequence[CommitteeEvent],
        streams: RandomStreams,
        generation: int = 0,
    ) -> EpochInstance:
        """Alg. 1 lines 9-12: update ``I_j`` and re-seat every solution.

        ``generation`` namespaces the streams of threads spawned mid-run:
        generation 0 (a cold solve) keeps the original ``dyn`` names, so
        pre-warm trajectories replay byte-identically; warm runs
        (generation >= 1) prefix theirs so a cardinality that disappears
        and reappears across epochs never re-reads the same sequence.
        """
        for event in events:
            if event.kind is EventKind.LEAVE:
                instance = self._apply_leave(instance, replicas, event, streams)
            else:
                instance = self._apply_join(instance, replicas, event)
        # Re-spread cardinalities over the (possibly resized) feasible range.
        cardinalities = self.thread_cardinalities(instance)
        spawned = reinitialised = 0
        for replica in replicas:
            replica_id = replica.replica_id
            # Intentionally the same stream as _spawn_replicas: a reseated
            # replica *continues* its init sequence rather than restarting
            # it, so replay stays byte-identical across dynamic events.
            # repro: ignore[MV101]
            init_rng = streams.get(f"replica-{replica_id}-init")
            existing = {thread.cardinality: thread for thread in replica.threads}
            reseated = []
            for cardinality in cardinalities:
                thread = existing.pop(cardinality, None)
                if thread is None:
                    stream_name = (
                        f"replica-{replica_id}-dyn-n{cardinality}"
                        if generation == 0
                        else f"replica-{replica_id}-gen{generation}-dyn-n{cardinality}"
                    )
                    rng = _ThreadRng(streams.seed, stream_name)
                    thread = _SolutionThread(cardinality=cardinality, thread_rng=rng, config=self.config)
                    thread.initialize(instance, init_rng)
                    spawned += 1
                elif thread.solution is None or not thread.active:
                    thread.initialize(instance, init_rng)
                    reinitialised += 1
                thread.timer = None
                reseated.append(thread)
            replica.threads = reseated
            replica.recompute_current()
        if self.telemetry.enabled:
            self.telemetry.event(
                "se.reseat",
                events=len(events),
                threads_spawned=spawned,
                threads_reinitialised=reinitialised,
                num_shards=instance.num_shards,
            )
        return instance

    @staticmethod
    def _apply_leave(
        instance: EpochInstance,
        replicas: Sequence[_Replica],
        event: CommitteeEvent,
        streams: RandomStreams,
    ) -> EpochInstance:
        if event.shard_id not in instance.shard_ids:
            return instance  # committee already gone; tolerate duplicates
        if instance.num_shards <= 1:
            raise InfeasibleEpochError(
                f"LEAVE of shard {event.shard_id} would empty the epoch; "
                "no committee remains to schedule"
            )
        new_instance = instance.without(event.shard_id)
        for replica in replicas:
            # Per-replica named stream: a shared "leave-reinit" stream would
            # correlate post-failure exploration across the Γ replicas and
            # make it depend on replica iteration order, breaking the
            # replica-independence premise behind Fig. 8.
            init_rng = streams.get(f"replica-{replica.replica_id}-leave")
            for thread in replica.threads:
                if thread.solution is None:
                    continue
                if event.shard_id in thread.solution.selected_ids():
                    # Section V: solutions containing the failed committee
                    # are trimmed out of the space -- re-initialise.
                    thread.initialize(new_instance, init_rng)
                else:
                    thread.set_solution(thread.solution.rebase(new_instance))
        return new_instance

    @staticmethod
    def _apply_join(
        instance: EpochInstance,
        replicas: Sequence[_Replica],
        event: CommitteeEvent,
    ) -> EpochInstance:
        if event.shard_id in instance.shard_ids:
            return instance
        new_instance = instance.with_shard(event.shard_id, event.tx_count, event.latency)
        for replica in replicas:
            for thread in replica.threads:
                if thread.solution is not None:
                    thread.set_solution(thread.solution.rebase(new_instance))
        return new_instance
