"""Feasibility repair moves shared by SE and the baselines.

The paper's constraints — :math:`\\sum_i x_i \\ge N_{min}` (const. 3) and
:math:`\\sum_i x_i s_i \\le \\hat C` (const. 4) — can both be broken by
dynamic events: a LEAVE removes selected shards (cardinality drops), a JOIN
re-values every shard (the carried incumbent may suddenly exceed Ĉ after a
rebase).  This module holds the deterministic repair used everywhere a
solution must be coerced back into the feasible region without discarding
the exploration state that produced it.

Historically :func:`repair_cardinality` lived in ``repro.baselines.base``;
it moved here so :mod:`repro.core.se` can repair carried incumbents after
dynamic events without ``core`` importing ``baselines`` (the import must
flow the other way).  ``repro.baselines.base`` re-exports it for
compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EpochInstance
from repro.core.solution import Solution


def repair_cardinality(instance: EpochInstance, solution: Solution) -> None:
    """Enforce const. (3) ``count >= N_min`` in place, keeping const. (4).

    Pads with the highest-value unselected shard that still fits the
    capacity Ĉ; when no shard fits, swaps the heaviest selected shard for
    the lightest outsider (strictly reducing weight) and retries.
    Terminates because weight is a strictly decreasing integer across
    consecutive swaps, and always succeeds when ``n_min <=
    max_feasible_cardinality`` — which :class:`EpochInstance` guarantees by
    construction.
    """
    tx_counts = instance.tx_counts
    values = instance.values
    while solution.count < instance.n_min:
        unselected = solution.unselected_positions()
        if len(unselected) == 0:
            break
        slack = instance.capacity - solution.weight
        fitting = unselected[tx_counts[unselected] <= slack]
        if len(fitting):
            solution.flip(int(fitting[np.argmax(values[fitting])]))
            continue
        selected = solution.selected_positions()
        if len(selected) == 0:
            break  # nothing fits at all: n_cap = 0, so n_min = 0 too
        heaviest = int(selected[np.argmax(tx_counts[selected])])
        lightest = int(unselected[np.argmin(tx_counts[unselected])])
        if int(tx_counts[lightest]) >= int(tx_counts[heaviest]):
            break  # cannot reduce weight further
        solution.swap(heaviest, lightest)


def repair_capacity(instance: EpochInstance, solution: Solution) -> None:
    """Enforce const. (4) ``weight <= Ĉ`` in place by trimming worst picks.

    Drops the lowest-value selected shard until the packed TXs fit the
    capacity Ĉ.  May leave the cardinality below ``N_min`` (const. 3);
    callers that need both constraints follow up with
    :func:`repair_cardinality`, whose pad-or-swap loop never re-breaks the
    capacity.
    """
    while not solution.capacity_feasible and solution.count > 0:
        selected = solution.selected_positions()
        worst = selected[np.argmin(instance.values[selected])]
        solution.flip(int(worst))


def repair_feasibility(instance: EpochInstance, solution: Solution) -> None:
    """Re-establish const. (3) *and* (4) in place after a rebase.

    Order matters: the capacity trim first (it only removes shards), then
    the cardinality pad (it only adds shards that fit the remaining Ĉ
    slack, or performs weight-reducing swaps) — so the composition lands in
    the feasible region whenever the instance admits one at all.
    """
    repair_capacity(instance, solution)
    repair_cardinality(instance, solution)


def greedy_improve(instance: EpochInstance, solution: Solution) -> None:
    """One deterministic local-improvement pass in place (feasible → feasible).

    Used when a *carried* incumbent is rebased onto a drifted epoch
    instance (warm starts): the old membership is a base worth keeping,
    but the instance's values have moved under it.  Two monotone phases,
    each strictly utility-improving:

    1. drop every negative-value member, most negative first, while
       const. (3) ``count > N_min`` holds (dropping also frees Ĉ slack);
    2. add unselected positive-value shards, best value first, whenever
       the remaining slack fits them (const. 4).

    Draws no randomness and never worsens the solution, so applying it to
    a warm incumbent cannot break the feasibility contract — it just turns
    carried knowledge into an actual head start.
    """
    values = instance.values
    tx_counts = instance.tx_counts
    selected = solution.selected_positions()
    negative = selected[values[selected] < 0]
    for position in negative[np.argsort(values[negative])]:
        if solution.count <= instance.n_min:
            break
        solution.flip(int(position))
    unselected = solution.unselected_positions()
    gains = unselected[values[unselected] > 0]
    for position in gains[np.argsort(-values[gains])]:
        if int(tx_counts[position]) <= instance.capacity - solution.weight:
            solution.flip(int(position))


def resize_to_cardinality(
    instance: EpochInstance, solution: Solution, cardinality: int
) -> bool:
    """Coerce ``solution`` to exactly ``cardinality`` members, under Ĉ.

    The repair a warm-started solution thread :math:`f_n` needs when
    committee churn broke its exact-``n`` family shape: departed members
    leave the rebased count short (or a shrunken range leaves it long).
    Trims the lowest-value members while over; pads with the best-value
    fitting outsider while short, falling back to weight-reducing swaps
    (heaviest member for lightest outsider) when nothing fits; finishes
    with the same swap loop until const. (4) holds.  Returns ``True`` on
    success — the caller keeps the repaired carried solution — and
    ``False`` when the target shape is unreachable, in which case the
    solution should be discarded and re-initialised instead.
    """
    values = instance.values
    tx_counts = instance.tx_counts
    while solution.count > cardinality:
        selected = solution.selected_positions()
        solution.flip(int(selected[np.argmin(values[selected])]))
    while solution.count < cardinality:
        unselected = solution.unselected_positions()
        if not len(unselected):
            return False
        slack = instance.capacity - solution.weight
        fitting = unselected[tx_counts[unselected] <= slack]
        if len(fitting):
            solution.flip(int(fitting[np.argmax(values[fitting])]))
            continue
        selected = solution.selected_positions()
        if not len(selected):
            return False
        heaviest = int(selected[np.argmax(tx_counts[selected])])
        lightest = int(unselected[np.argmin(tx_counts[unselected])])
        if int(tx_counts[lightest]) >= int(tx_counts[heaviest]):
            return False
        solution.swap(heaviest, lightest)
    while not solution.capacity_feasible:
        selected = solution.selected_positions()
        unselected = solution.unselected_positions()
        if not len(selected) or not len(unselected):
            return False
        heaviest = int(selected[np.argmax(tx_counts[selected])])
        lighter = unselected[tx_counts[unselected] < int(tx_counts[heaviest])]
        if not len(lighter):
            return False
        solution.swap(heaviest, int(lighter[np.argmax(values[lighter])]))
    return True


def greedy_swap_improve(
    instance: EpochInstance, solution: Solution, max_swaps: int = 4
) -> None:
    """Cardinality-preserving improving swaps in place (at most ``max_swaps``).

    The fixed-cardinality counterpart of :func:`greedy_improve`, for
    retained solution threads :math:`f_n` whose cardinality contract must
    survive a warm-start rebase: repeatedly swap the lowest-value member
    for the best-value outsider that fits the freed capacity, stopping at
    the first non-improving exchange.  ``max_swaps`` is deliberately small
    — the pass re-anchors a stale thread to the drifted instance without
    collapsing the Γ replicas' population diversity onto one greedy point.
    """
    values = instance.values
    tx_counts = instance.tx_counts
    for _ in range(max_swaps):
        selected = solution.selected_positions()
        unselected = solution.unselected_positions()
        if not len(selected) or not len(unselected):
            return
        worst = int(selected[np.argmin(values[selected])])
        slack = instance.capacity - solution.weight + int(tx_counts[worst])
        fitting = unselected[tx_counts[unselected] <= slack]
        if not len(fitting):
            return
        best = int(fitting[np.argmax(values[fitting])])
        if values[best] <= values[worst]:
            return
        solution.swap(worst, best)
