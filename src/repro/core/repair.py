"""Feasibility repair moves shared by SE and the baselines.

The paper's constraints — :math:`\\sum_i x_i \\ge N_{min}` (const. 3) and
:math:`\\sum_i x_i s_i \\le \\hat C` (const. 4) — can both be broken by
dynamic events: a LEAVE removes selected shards (cardinality drops), a JOIN
re-values every shard (the carried incumbent may suddenly exceed Ĉ after a
rebase).  This module holds the deterministic repair used everywhere a
solution must be coerced back into the feasible region without discarding
the exploration state that produced it.

Historically :func:`repair_cardinality` lived in ``repro.baselines.base``;
it moved here so :mod:`repro.core.se` can repair carried incumbents after
dynamic events without ``core`` importing ``baselines`` (the import must
flow the other way).  ``repro.baselines.base`` re-exports it for
compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EpochInstance
from repro.core.solution import Solution


def repair_cardinality(instance: EpochInstance, solution: Solution) -> None:
    """Enforce const. (3) ``count >= N_min`` in place, keeping const. (4).

    Pads with the highest-value unselected shard that still fits the
    capacity Ĉ; when no shard fits, swaps the heaviest selected shard for
    the lightest outsider (strictly reducing weight) and retries.
    Terminates because weight is a strictly decreasing integer across
    consecutive swaps, and always succeeds when ``n_min <=
    max_feasible_cardinality`` — which :class:`EpochInstance` guarantees by
    construction.
    """
    tx_counts = instance.tx_counts
    values = instance.values
    while solution.count < instance.n_min:
        unselected = solution.unselected_positions()
        if len(unselected) == 0:
            break
        slack = instance.capacity - solution.weight
        fitting = unselected[tx_counts[unselected] <= slack]
        if len(fitting):
            solution.flip(int(fitting[np.argmax(values[fitting])]))
            continue
        selected = solution.selected_positions()
        if len(selected) == 0:
            break  # nothing fits at all: n_cap = 0, so n_min = 0 too
        heaviest = int(selected[np.argmax(tx_counts[selected])])
        lightest = int(unselected[np.argmin(tx_counts[unselected])])
        if int(tx_counts[lightest]) >= int(tx_counts[heaviest]):
            break  # cannot reduce weight further
        solution.swap(heaviest, lightest)


def repair_capacity(instance: EpochInstance, solution: Solution) -> None:
    """Enforce const. (4) ``weight <= Ĉ`` in place by trimming worst picks.

    Drops the lowest-value selected shard until the packed TXs fit the
    capacity Ĉ.  May leave the cardinality below ``N_min`` (const. 3);
    callers that need both constraints follow up with
    :func:`repair_cardinality`, whose pad-or-swap loop never re-breaks the
    capacity.
    """
    while not solution.capacity_feasible and solution.count > 0:
        selected = solution.selected_positions()
        worst = selected[np.argmin(instance.values[selected])]
        solution.flip(int(worst))


def repair_feasibility(instance: EpochInstance, solution: Solution) -> None:
    """Re-establish const. (3) *and* (4) in place after a rebase.

    Order matters: the capacity trim first (it only removes shards), then
    the cardinality pad (it only adds shards that fit the remaining Ĉ
    slack, or performs weight-reducing swaps) — so the composition lands in
    the feasible region whenever the instance admits one at all.
    """
    repair_capacity(instance, solution)
    repair_cardinality(instance, solution)
