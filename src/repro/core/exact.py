"""Exact MVCom solvers, used as ground truth in tests and small benches.

The MVCom epoch subproblem is a 0/1 knapsack with a minimum-cardinality side
constraint, so exact answers are only tractable for small ``|I_j|``:

* :func:`brute_force_optimum` -- full enumeration, ``n <= ~22``;
* :func:`branch_and_bound_optimum` -- LP-relaxation-bounded search that
  comfortably reaches ``n ~ 40`` on the paper's instance shapes.

Both enforce constraints (3) and (4) exactly (using the instance's
*effective* ``n_min``) and return the same certified optimum; the tests
cross-validate them against each other and against SE/baseline results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.problem import EpochInstance
from repro.core.solution import Solution


@dataclass(frozen=True)
class ExactResult:
    """A certified optimum."""

    mask: np.ndarray
    utility: float
    weight: int
    count: int

    def as_solution(self, instance: EpochInstance) -> Solution:
        """Materialise the certified mask as a Solution (utility in paper units)."""
        return Solution(instance, self.mask)


def brute_force_optimum(instance: EpochInstance, max_shards: int = 22) -> ExactResult:
    """Enumerate every subset satisfying const. (3)-(4); certified optimum.

    Only cardinalities >= N_min are visited and subsets over the capacity
    Ĉ are skipped, so the maximiser of eq. (5) is exact for small epochs.
    """
    n = instance.num_shards
    if n > max_shards:
        raise ValueError(f"brute force limited to {max_shards} shards, got {n}")

    best_mask: Optional[np.ndarray] = None
    best_utility = -np.inf
    values = instance.values
    weights = instance.tx_counts
    for size in range(instance.n_min, n + 1):
        for combo in itertools.combinations(range(n), size):
            idx = list(combo)
            if int(weights[idx].sum()) > instance.capacity:
                continue
            utility = float(values[idx].sum())
            if utility > best_utility:
                best_utility = utility
                mask = np.zeros(n, dtype=bool)
                mask[idx] = True
                best_mask = mask
    if best_mask is None:
        raise ValueError("instance has no feasible solution")
    return ExactResult(
        mask=best_mask,
        utility=best_utility,
        weight=int(weights[best_mask].sum()),
        count=int(best_mask.sum()),
    )


def _fractional_upper_bound(
    order: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray,
    start: int,
    remaining_capacity: int,
    base_utility: float,
) -> float:
    """LP-relaxation bound: greedily take items by value density, last one fractional.

    Negative-value items are never profitable for the bound (the cardinality
    constraint is relaxed here, which only loosens the bound -- still valid).
    """
    bound = base_utility
    capacity = remaining_capacity
    for position in order[start:]:
        value = values[position]
        if value <= 0:
            break  # density-sorted, so everything after is worse
        weight = weights[position]
        if weight <= capacity:
            bound += value
            capacity -= weight
        else:
            if weight > 0:
                bound += value * (capacity / weight)
            break
    return bound


def _greedy_incumbent(instance: EpochInstance, order: np.ndarray) -> Optional[np.ndarray]:
    """Density-greedy packing padded to the cardinality floor (may be None)."""
    mask = np.zeros(instance.num_shards, dtype=bool)
    weight = 0
    for position in order:
        position = int(position)
        if instance.values[position] <= 0 and int(mask.sum()) >= instance.n_min:
            break
        if weight + int(instance.tx_counts[position]) <= instance.capacity:
            mask[position] = True
            weight += int(instance.tx_counts[position])
    if int(mask.sum()) < instance.n_min:
        # Pad with the least-bad (highest-value) remaining items that fit.
        remaining = [i for i in np.argsort(-instance.values, kind="stable") if not mask[int(i)]]
        for position in remaining:
            position = int(position)
            if weight + int(instance.tx_counts[position]) > instance.capacity:
                continue
            mask[position] = True
            weight += int(instance.tx_counts[position])
            if int(mask.sum()) >= instance.n_min:
                break
    if int(mask.sum()) < instance.n_min:
        return None
    return mask


def branch_and_bound_optimum(instance: EpochInstance, node_limit: int = 2_000_000) -> ExactResult:
    """Depth-first branch and bound with an LP-relaxation upper bound.

    Items are explored in decreasing value-density order.  The cardinality
    floor (const. 3) is handled by a reachability prune: a branch dies when
    even selecting every remaining item cannot reach ``n_min``.
    """
    n = instance.num_shards
    values = instance.values.astype(np.float64)
    weights = instance.tx_counts.astype(np.int64)
    density = np.where(weights > 0, values / np.maximum(weights, 1), np.where(values > 0, np.inf, -np.inf))
    order = np.argsort(-density, kind="stable")

    # Seed the incumbent with a greedy feasible solution: a strong initial
    # lower bound is what lets the LP bound prune aggressively when the
    # cardinality floor forces negative-value picks.
    greedy_mask = _greedy_incumbent(instance, order)
    if greedy_mask is not None:
        best_utility = float(values[greedy_mask].sum())
        best_mask: Optional[np.ndarray] = greedy_mask
    else:
        best_utility = -np.inf
        best_mask = None
    chosen = np.zeros(n, dtype=bool)
    nodes = 0

    def visit(depth: int, utility: float, weight: int, count: int) -> None:
        """Depth-first branch step over item ``order[depth]``."""
        nonlocal best_utility, best_mask, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("branch-and-bound node limit exceeded")
        remaining = n - depth
        if count + remaining < instance.n_min:
            return  # cannot reach the cardinality floor any more
        if depth == n:
            if count >= instance.n_min and utility > best_utility:
                best_utility = utility
                best_mask = chosen.copy()
            return
        # The fractional bound relaxes BOTH the integrality and the
        # cardinality floor, so it upper-bounds every completion of this
        # branch; pruning is valid even before n_min is reached.
        bound = _fractional_upper_bound(
            order, values, weights, depth, instance.capacity - weight, utility
        )
        if bound <= best_utility:
            return
        position = int(order[depth])
        # Branch 1: take the item (if it fits).
        if weight + weights[position] <= instance.capacity:
            chosen[position] = True
            visit(depth + 1, utility + values[position], weight + int(weights[position]), count + 1)
            chosen[position] = False
        # Branch 2: skip the item.
        visit(depth + 1, utility, weight, count)

    visit(0, 0.0, 0, 0)
    if best_mask is None:
        raise ValueError("instance has no feasible solution")
    return ExactResult(
        mask=best_mask,
        utility=float(best_utility),
        weight=int(weights[best_mask].sum()),
        count=int(best_mask.sum()),
    )
