"""Incremental solution representation.

A :class:`Solution` is a selection of shards over an epoch instance with
cached aggregates (utility, packed TXs, cardinality) that update in O(1)
per move.  The SE algorithm performs tens of millions of swap evaluations
at ``|I_j| = 1000``, so the selection is stored as a ``bytearray`` (fast
scalar membership tests) with a NumPy view materialised on demand for the
vectorised consumers (metrics, exact solvers, tests).

Invariant: ``utility == instance.utility(mask)`` and
``weight == instance.weight(mask)`` at all times.  The property-based tests
in ``tests/test_solution_properties.py`` hammer this invariant through
random move sequences.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.problem import EpochInstance


class Solution:
    """A mutable selection of shards with O(1) move updates."""

    __slots__ = ("instance", "selected", "_utility", "_weight", "_count")

    def __init__(self, instance: EpochInstance, mask: Optional[np.ndarray] = None) -> None:
        self.instance = instance
        if mask is None:
            self.selected = bytearray(instance.num_shards)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (instance.num_shards,):
                raise ValueError("mask length does not match instance")
            self.selected = bytearray(mask.astype(np.uint8).tobytes())
        self.recompute()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_indices(cls, instance: EpochInstance, indices: Iterable[int]) -> "Solution":
        """Build a selection from an iterable of positions.

        The cached utility/weight aggregates (eq. 2 and const. 4 terms)
        are computed once here and maintained in O(1) per move after.
        """
        mask = np.zeros(instance.num_shards, dtype=bool)
        mask[np.asarray(list(indices), dtype=np.int64)] = True
        return cls(instance, mask)

    @classmethod
    def from_cached(
        cls,
        instance: EpochInstance,
        selected: "bytes | bytearray",
        utility: float,
        weight: int,
        count: int,
    ) -> "Solution":
        """Rehydrate a selection whose aggregates are already known.

        The engines' hot paths (worker segment logs, the batched race
        kernel's array rows) carry the incremental float caches alongside
        the mask; recomputing utility from the mask can differ in the last
        bit, so this constructor installs the caches verbatim instead of
        calling :meth:`recompute`.  The caller owns the invariant that the
        aggregates match the mask.
        """
        solution = cls.__new__(cls)
        solution.instance = instance
        solution.selected = bytearray(selected)
        solution._utility = utility
        solution._weight = weight
        solution._count = count
        return solution

    def copy(self) -> "Solution":
        """Independent deep copy (shares only the immutable instance).

        Cached utility/weight/cardinality aggregates carry over verbatim,
        so the copy's feasibility (const. 3-4) matches the original's.
        """
        clone = Solution.__new__(Solution)
        clone.instance = self.instance
        clone.selected = bytearray(self.selected)
        clone._utility = self._utility
        clone._weight = self._weight
        clone._count = self._count
        return clone

    # ------------------------------------------------------------------ #
    # cached aggregates
    # ------------------------------------------------------------------ #
    @property
    def mask(self) -> np.ndarray:
        """Boolean selection mask (freshly materialised NumPy array).

        The comparison materialises a new bool array directly from the
        ``bytearray`` buffer -- one allocation, no intermediate ``bytes``
        copy (this is called per round in traced runs and per result in
        the harness).
        """
        return np.frombuffer(self.selected, dtype=np.uint8) != 0

    @property
    def utility(self) -> float:
        """Cached utility U(f)."""
        return self._utility

    @property
    def weight(self) -> int:
        """Cached packed-TX total."""
        return self._weight

    @property
    def count(self) -> int:
        """Cached number of selected shards."""
        return self._count

    @property
    def capacity_feasible(self) -> bool:
        """Constraint (4): packed TXs within the capacity."""
        return self._weight <= self.instance.capacity

    @property
    def feasible(self) -> bool:
        """Constraints (3) and (4) together."""
        return self.capacity_feasible and self._count >= self.instance.n_min

    # ------------------------------------------------------------------ #
    # moves
    # ------------------------------------------------------------------ #
    def flip(self, index: int) -> None:
        """Toggle one shard in or out."""
        if self.selected[index]:
            self.selected[index] = 0
            sign = -1
        else:
            self.selected[index] = 1
            sign = 1
        self._utility += sign * self.instance.values_list[index]
        self._weight += sign * self.instance.tx_counts_list[index]
        self._count += sign

    def swap(self, index_out: int, index_in: int) -> None:
        """The paper's transition move: deselect ``index_out``, select ``index_in``.

        Keeps the cardinality fixed (Section IV-C conditions a/b).
        """
        if not self.selected[index_out]:
            raise ValueError(f"shard position {index_out} is not selected")
        if self.selected[index_in]:
            raise ValueError(f"shard position {index_in} is already selected")
        self.flip(index_out)
        self.flip(index_in)

    def swap_delta(self, index_out: int, index_in: int) -> float:
        """Utility change a :meth:`swap` would cause, without applying it."""
        return self.instance.values_list[index_in] - self.instance.values_list[index_out]

    def swap_weight(self, index_out: int, index_in: int) -> int:
        """Packed-TX total after a hypothetical swap."""
        return self._weight + (
            self.instance.tx_counts_list[index_in] - self.instance.tx_counts_list[index_out]
        )

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def selected_positions(self) -> np.ndarray:
        """Positions currently selected (ascending)."""
        return np.flatnonzero(self.mask)

    def unselected_positions(self) -> np.ndarray:
        """Positions currently unselected (ascending)."""
        return np.flatnonzero(~self.mask)

    def selected_ids(self) -> tuple:
        """Stable shard ids of the selection (survives rebasing)."""
        return tuple(
            shard_id
            for shard_id, chosen in zip(self.instance.shard_ids, self.selected)
            if chosen
        )

    def recompute(self) -> None:
        """Recompute caches from scratch (used by tests and constructors)."""
        mask = self.mask
        self._utility = float(self.instance.values[mask].sum())
        self._weight = int(self.instance.tx_counts[mask].sum())
        self._count = int(mask.sum())

    def rebase(self, instance: EpochInstance) -> "Solution":
        """Project this solution onto a *different* instance by shard id.

        Used when committees join or leave: positions shift, ids survive.
        Shards that no longer exist are dropped silently, and the utility/
        weight caches recompute against the new instance's values — so
        feasibility (N_min, Ĉ) must be re-checked by the caller.
        """
        chosen = set(self.selected_ids())
        mask = np.array([sid in chosen for sid in instance.shard_ids], dtype=bool)
        return Solution(instance, mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Solution):
            return NotImplemented
        return self.instance is other.instance and self.selected == other.selected

    def __hash__(self) -> int:
        return hash((id(self.instance), bytes(self.selected)))

    def key(self) -> int:
        """Canonical integer encoding of the selection (LSB = position 0)."""
        key = 0
        for position, chosen in enumerate(self.selected):
            if chosen:
                key |= 1 << position
        return key

    def __repr__(self) -> str:
        return (
            f"Solution(count={self._count}, weight={self._weight}, "
            f"utility={self._utility:.1f}, feasible={self.feasible})"
        )
