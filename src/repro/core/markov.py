"""The designed Markov chain, verified exactly on small instances.

Section IV-C constructs a continuous-time Markov chain whose states are
feasible solutions and whose transitions swap one selected shard for one
unselected shard (conditions a/b), with rate

.. math:: q_{f,f'} = \\exp(-\\tau)\\,\\exp(\\tfrac{\\beta}{2}(U_{f'} - U_f))

(eq. 10).  Swaps preserve cardinality, so the chain decomposes into one
irreducible component per cardinality ``n`` -- exactly the per-``n``
solution threads :math:`f_n` of Alg. 1.  This module builds those chains
explicitly for small instances so the paper's structural claims can be
*checked* rather than trusted:

* Lemma 2 (irreducibility within a cardinality class),
* Lemma 3 (detailed balance w.r.t. the Gibbs distribution of eq. 6),
* Theorem 1 (mixing-time bounds, eqs. 12-13) against empirically measured
  mixing times of the uniformised chain.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.logsumexp import stationary_distribution
from repro.core.problem import EpochInstance

#: Exponent clamp for explicit rate matrices (tests use small-β instances so
#: the clamp never binds there; it only guards degenerate inputs).
_RATE_EXP_CLAMP = 500.0


def enumerate_states(instance: EpochInstance, cardinality: int) -> List[Tuple[int, ...]]:
    """All capacity-feasible selections of exactly ``cardinality`` shards.

    States are tuples of selected *positions*, sorted ascending.  Only
    practical for small instances (tests use ``num_shards <= 12``).
    """
    if not 0 <= cardinality <= instance.num_shards:
        raise ValueError("cardinality out of range")
    states = []
    for combo in itertools.combinations(range(instance.num_shards), cardinality):
        weight = int(instance.tx_counts[list(combo)].sum())
        if weight <= instance.capacity:
            states.append(tuple(combo))
    return states


def state_utility(instance: EpochInstance, state: Tuple[int, ...]) -> float:
    """Utility of a positions-tuple state."""
    return float(instance.values[list(state)].sum())


def are_neighbors(state_a: Tuple[int, ...], state_b: Tuple[int, ...]) -> bool:
    """Condition a/b of Section IV-C: states differ by exactly one swap."""
    set_a, set_b = set(state_a), set(state_b)
    if len(set_a) != len(set_b):
        return False
    return len(set_a ^ set_b) == 2


def transition_rate(utility_from: float, utility_to: float, beta: float, tau: float) -> float:
    """Eq. (10): ``exp(-tau + beta/2 * (U_to - U_from))``, clamped finite."""
    exponent = -tau + 0.5 * beta * (utility_to - utility_from)
    return math.exp(min(max(exponent, -_RATE_EXP_CLAMP), _RATE_EXP_CLAMP))


@dataclass
class ExactChain:
    """An explicitly constructed per-cardinality chain."""

    states: List[Tuple[int, ...]]
    utilities: np.ndarray
    generator: np.ndarray  # Q matrix: off-diagonal rates, rows sum to zero
    beta: float
    tau: float

    @property
    def num_states(self) -> int:
        """Size of this cardinality class's state space."""
        return len(self.states)

    def stationary(self) -> np.ndarray:
        """Gibbs distribution over this chain's states (eq. 6)."""
        return stationary_distribution(self.beta, self.utilities)


def build_chain(
    instance: EpochInstance,
    cardinality: int,
    beta: float,
    tau: float = 0.0,
) -> ExactChain:
    """Build the explicit generator matrix for one cardinality class."""
    states = enumerate_states(instance, cardinality)
    if not states:
        raise ValueError(f"no capacity-feasible states at cardinality {cardinality}")
    utilities = np.array([state_utility(instance, state) for state in states])
    size = len(states)
    generator = np.zeros((size, size), dtype=np.float64)
    for a in range(size):
        for b in range(size):
            if a != b and are_neighbors(states[a], states[b]):
                generator[a, b] = transition_rate(utilities[a], utilities[b], beta, tau)
    np.fill_diagonal(generator, -generator.sum(axis=1))
    return ExactChain(states=states, utilities=utilities, generator=generator, beta=beta, tau=tau)


def is_irreducible(chain: ExactChain) -> bool:
    """Lemma 2 check: every state reaches every other (BFS on positive rates)."""
    size = chain.num_states
    if size == 0:
        return False
    adjacency = chain.generator > 0
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for neighbor in np.flatnonzero(adjacency[node]):
            if int(neighbor) not in seen:
                seen.add(int(neighbor))
                frontier.append(int(neighbor))
    return len(seen) == size


def detailed_balance_residual(chain: ExactChain) -> float:
    """Lemma 3 check: max relative violation of ``p*_f q_ff' = p*_f' q_f'f``."""
    probabilities = chain.stationary()
    worst = 0.0
    for a in range(chain.num_states):
        for b in range(a + 1, chain.num_states):
            flow_ab = probabilities[a] * chain.generator[a, b]
            flow_ba = probabilities[b] * chain.generator[b, a]
            scale = max(flow_ab, flow_ba, 1e-300)
            worst = max(worst, abs(flow_ab - flow_ba) / scale)
    return worst


def stationary_from_generator(chain: ExactChain) -> np.ndarray:
    """Solve ``pi Q = 0`` directly (independent of the Gibbs formula).

    Tests compare this against :meth:`ExactChain.stationary` to confirm the
    designed rates actually realise eq. (6).
    """
    size = chain.num_states
    system = np.vstack([chain.generator.T, np.ones(size)])
    target = np.zeros(size + 1)
    target[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, target, rcond=None)
    return np.clip(solution, 0.0, None) / max(solution.sum(), 1e-300)


# --------------------------------------------------------------------- #
# mixing time: empirical and Theorem 1 bounds
# --------------------------------------------------------------------- #
def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """:math:`d_{TV}(p, q) = \\frac12 \\sum |p - q|`."""
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def empirical_mixing_time(
    chain: ExactChain,
    epsilon: float,
    max_steps: int = 200_000,
) -> float:
    """Mixing time of the uniformised chain, in continuous-time units.

    Uniformisation: with ``Lambda = max_f |Q_ff|``, the DTMC
    ``P = I + Q / Lambda`` observed at Poisson(Lambda) arrivals reproduces
    the CTMC, so ``t_mix = k_mix / Lambda`` where ``k_mix`` is the first
    discrete step at which the worst-start TV distance drops below
    ``epsilon`` (definition 11).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rate_scale = float(np.max(-np.diag(chain.generator)))
    if rate_scale == 0.0:  # single absorbing state: already mixed
        return 0.0
    transition = np.eye(chain.num_states) + chain.generator / rate_scale
    target = chain.stationary()
    distributions = np.eye(chain.num_states)  # row s = distribution starting at s
    for step in range(1, max_steps + 1):
        distributions = distributions @ transition
        worst = max(
            total_variation(distributions[start], target)
            for start in range(chain.num_states)
        )
        if worst <= epsilon:
            return step / rate_scale
    raise RuntimeError(f"chain did not mix within {max_steps} uniformised steps")


def mixing_time_lower_bound(
    num_shards: int,
    beta: float,
    tau: float,
    u_max: float,
    u_min: float,
    epsilon: float,
) -> float:
    """Theorem 1, eq. (12)."""
    _check_bound_args(num_shards, beta, epsilon)
    numerator = math.exp(tau - 0.5 * beta * (u_max - u_min))
    return numerator / (num_shards**2 - num_shards) * math.log(1.0 / (2.0 * epsilon))


def mixing_time_upper_bound(
    num_shards: int,
    beta: float,
    tau: float,
    u_max: float,
    u_min: float,
    epsilon: float,
) -> float:
    """Theorem 1, eq. (13)."""
    _check_bound_args(num_shards, beta, epsilon)
    leading = (
        4.0 ** num_shards
        * (num_shards**2 - num_shards)
        * math.exp(min(1.5 * beta * (u_max - u_min) + tau, _RATE_EXP_CLAMP))
    )
    bracket = (
        math.log(1.0 / (2.0 * epsilon))
        + 0.5 * num_shards * math.log(2.0)
        + 0.5 * beta * (u_max - u_min)
    )
    return leading * bracket


def _check_bound_args(num_shards: int, beta: float, epsilon: float) -> None:
    if num_shards < 2:
        raise ValueError("Theorem 1 needs at least two shards")
    if beta <= 0:
        raise ValueError("beta must be positive")
    if not 0 < epsilon < 0.5:
        raise ValueError("epsilon must lie in (0, 1/2) for the bounds to be meaningful")
