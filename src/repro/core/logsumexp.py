"""Log-sum-exp (Markov/Gibbs) approximation of MVCom (Section IV-B).

The MVCom(β) problem assigns each feasible solution ``f`` a time share
``p_f`` and maximises :math:`\\sum_f p_f U_f + \\frac 1\\beta H(p)`.  Its KKT
optimum is the Gibbs distribution

.. math:: p^*_f = \\frac{\\exp(\\beta U_f)}{\\sum_{f'} \\exp(\\beta U_{f'})}

(eq. 6), and the resulting optimality loss is at most
:math:`\\frac 1\\beta \\log |\\mathcal F|` (Remark 1).  Everything here is
computed in log-space so it stays finite for the paper's utility scales
(:math:`\\beta U` in the hundreds of thousands).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def log_softmax(beta: float, utilities: Sequence[float]) -> np.ndarray:
    """Log of the Gibbs weights ``beta * U_f`` normalised stably."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    scores = beta * np.asarray(utilities, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("need at least one solution")
    shifted = scores - scores.max()
    return shifted - np.log(np.exp(shifted).sum())


def stationary_distribution(beta: float, utilities: Sequence[float]) -> np.ndarray:
    """The optimal time-share distribution :math:`p^*` of eq. (6)."""
    return np.exp(log_softmax(beta, utilities))


def expected_utility(beta: float, utilities: Sequence[float]) -> float:
    """:math:`\\sum_f p^*_f U_f` -- what MVCom(β) actually achieves."""
    probabilities = stationary_distribution(beta, utilities)
    return float(probabilities @ np.asarray(utilities, dtype=np.float64))


def entropy(probabilities: Sequence[float]) -> float:
    """Shannon entropy :math:`-\\sum p \\log p` (natural log), 0log0 := 0."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.size and (probabilities < -1e-12).any():
        raise ValueError("probabilities must be non-negative")
    positive = probabilities[probabilities > 0]
    return float(-(positive * np.log(positive)).sum())


def approximation_loss_bound(beta: float, num_solutions: int) -> float:
    """Remark 1's bound: :math:`\\frac 1\\beta \\log|\\mathcal F|`."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    if num_solutions < 1:
        raise ValueError("solution space cannot be empty")
    return float(np.log(num_solutions) / beta)


def optimality_gap(beta: float, utilities: Sequence[float]) -> float:
    """Gap between the true optimum and the Gibbs expectation.

    Remark 1 guarantees this is at most
    :func:`approximation_loss_bound(beta, len(utilities))`; the theory tests
    verify that relationship across random instances.
    """
    utilities = np.asarray(utilities, dtype=np.float64)
    return float(utilities.max() - expected_utility(beta, utilities))
