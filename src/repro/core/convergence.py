"""Convergence detection for iterative schedulers.

"In practice, a converged solution can be received by specifying an
empirical number of running iterations." (Section IV-D)  We implement the
practical version: the run is *converged* when the best utility seen so far
has not improved by more than ``tolerance`` for ``window`` consecutive
iterations, or when the iteration budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ConvergenceDetector:
    """Sliding-window plateau detector.

    Parameters
    ----------
    window:
        Number of consecutive non-improving iterations that count as
        convergence.
    tolerance:
        Minimum utility improvement that resets the window.
    """

    window: int = 300
    tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.best = float("-inf")
        self.stale_iterations = 0

    def update(self, utility: float) -> bool:
        """Record one iteration's best utility; return True once converged."""
        if utility > self.best + self.tolerance:
            self.best = utility
            self.stale_iterations = 0
        else:
            self.stale_iterations += 1
        return self.converged

    @property
    def converged(self) -> bool:
        """True once the stale-iteration window filled up."""
        return self.stale_iterations >= self.window

    def reset(self) -> None:
        """Restart detection (used after dynamic join/leave events)."""
        self.best = float("-inf")
        self.stale_iterations = 0
