"""Deadline (DDL) policies for the final committee.

Section III: "this paper is not trying to tell how to set such the DDL...
In practice, the DDL can be set to the moment when a predefined percentage
of committees submit their shards."  The reproduction's default is exactly
that (the :math:`N_{max}` arrival window), but the choice is a real design
axis, so it is factored out here:

* :class:`PercentileArrival` -- wait for a fraction of committees (the
  paper's suggestion; ``fraction = N_max`` reproduces the default);
* :class:`FixedTimeout` -- a wall-clock deadline after epoch start;
* :class:`BudgetedAge` -- adaptive: close the window when the *marginal*
  committee would add more age to the already-arrived shards than its own
  transactions are worth (a greedy stopping rule driven by eq. (1)).

Each policy takes the latency-sorted arrival sequence and returns which
committees arrive plus the resulting DDL; the ablation bench compares the
epoch utility each policy enables.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class DdlDecision:
    """Outcome of a DDL policy on one epoch's submissions."""

    arrived_indices: Tuple[int, ...]  # indices into the latency-sorted input
    ddl: float

    def __post_init__(self) -> None:
        if not self.arrived_indices:
            raise ValueError("a DDL policy must admit at least one committee")
        if self.ddl < 0:
            raise ValueError("ddl must be non-negative")


class DdlPolicy(abc.ABC):
    """Strategy deciding when the final committee stops listening."""

    @abc.abstractmethod
    def decide(self, latencies: Sequence[float], tx_counts: Sequence[int]) -> DdlDecision:
        """``latencies``/``tx_counts`` are parallel arrays, any order."""

    @staticmethod
    def _sorted_order(latencies: Sequence[float]) -> List[int]:
        return sorted(range(len(latencies)), key=lambda index: latencies[index])

    @staticmethod
    def _validate(latencies: Sequence[float], tx_counts: Sequence[int]) -> None:
        if len(latencies) != len(tx_counts):
            raise ValueError("latencies and tx_counts must be parallel")
        if not latencies:
            raise ValueError("no submissions")


@dataclass(frozen=True)
class PercentileArrival(DdlPolicy):
    """Stop once ``fraction`` of the committees have submitted (the paper's rule)."""

    fraction: float = 0.8

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")

    def decide(self, latencies: Sequence[float], tx_counts: Sequence[int]) -> DdlDecision:
        """Apply this policy to one epoch's submissions."""
        self._validate(latencies, tx_counts)
        order = self._sorted_order(latencies)
        count = max(1, int(math.floor(self.fraction * len(order))))
        arrived = tuple(order[:count])
        return DdlDecision(arrived_indices=arrived, ddl=float(latencies[arrived[-1]]))


@dataclass(frozen=True)
class FixedTimeout(DdlPolicy):
    """Stop at an absolute deadline after epoch start."""

    timeout_s: float

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def decide(self, latencies: Sequence[float], tx_counts: Sequence[int]) -> DdlDecision:
        """Apply this policy to one epoch's submissions."""
        self._validate(latencies, tx_counts)
        order = self._sorted_order(latencies)
        arrived = tuple(index for index in order if latencies[index] <= self.timeout_s)
        if not arrived:
            arrived = (order[0],)  # wait for at least the fastest committee
        return DdlDecision(arrived_indices=arrived, ddl=max(self.timeout_s, float(latencies[arrived[-1]])))


@dataclass(frozen=True)
class BudgetedAge(DdlPolicy):
    """Adaptive greedy stopping driven by eq. (1)'s trade-off.

    Admitting the next committee ``k`` moves the DDL from the current
    slowest arrival to :math:`l_k`, adding :math:`(l_k - t)\\cdot n_{arrived}`
    seconds of cumulative age across everyone already waiting, in exchange
    for :math:`\\alpha\\,s_k` units of throughput utility.  Stop when the
    marginal age cost exceeds the marginal throughput gain.
    """

    alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def decide(self, latencies: Sequence[float], tx_counts: Sequence[int]) -> DdlDecision:
        """Apply this policy to one epoch's submissions."""
        self._validate(latencies, tx_counts)
        order = self._sorted_order(latencies)
        arrived = [order[0]]
        ddl = float(latencies[order[0]])
        for index in order[1:]:
            wait = float(latencies[index]) - ddl
            age_cost = wait * len(arrived)
            throughput_gain = self.alpha * float(tx_counts[index])
            if age_cost > throughput_gain:
                break
            arrived.append(index)
            ddl = float(latencies[index])
        return DdlDecision(arrived_indices=tuple(arrived), ddl=ddl)
