"""Execution engines for the Stochastic-Exploration race (Alg. 1).

:class:`repro.core.se.StochasticExploration` owns the algorithm; this module
owns *how fast it runs*.  Three engines share one driver
(:class:`_EngineRun`) that keeps everything observable on the calling
process — bootstrap, dynamic events (Alg. 1 lines 9-12), probes, telemetry,
the :class:`~repro.core.convergence.ConvergenceDetector` and the incumbent
λ — so rule MV007 and the faultinject probe contract hold for every engine:

``serial``
    The reference scalar loop (the pre-engine ``solve`` body, verbatim).
    Golden tests pin it unchanged.

``parallel``
    The Γ executor replicas are *independent between dynamic-event
    boundaries* — every stream a replica consumes is keyed by its
    ``replica_id``, never by iteration order — so each replica is advanced
    in a worker process for a whole *segment* (up to the next scheduled
    event, in ``convergence_window``-sized chunks otherwise) and returns a
    compact per-round log.  The driver merges the logs round-by-round,
    rebuilds the traces, runs convergence on the merged series and
    truncates at the exact converged round.  Results are **byte-identical**
    to the serial engine: same seeds → same masks, traces and iteration
    counts.  (Merge argument: the incumbent's utility is monotone and
    bounds every past fired utility, so only a fire that *strictly improves
    its own replica's running fired-max* can ever win a round; workers log
    exactly those, and the driver replays the serial replica-order
    tie-break over them.)

``vectorized``
    A batched single-process race kernel: each round draws all racing
    threads' swap pairs and Exp(1) variates in one block from the named
    ``"vectorized-race"`` stream and evaluates eq. (8) as array ops.  It
    consumes randomness in a different order than the scalar engines, so it
    is validated *distributionally* (χ²/KS tests in
    ``tests/test_core_engines.py``), not byte-wise.

Vectorized stream layout (the engine's own named stream, independent of the
per-replica scalar streams): per race round one uniform block of shape
``(T, pair_tries, 3)`` is drawn from ``streams.get("vectorized-race")``,
where ``T`` counts racing threads in replica-major, cardinality-minor
order.  Lane ``l`` column 0 is thread ``t``'s out-index draw, column 1 its
in-index draw, column 2 its Exp(1) inversion draw; lanes beyond the first
capacity-feasible pair are discarded.  Consumption is therefore
shape-constant per round — independent of acceptance — which keeps replays
deterministic for a fixed thread population.  For speed the kernel draws
several rounds at once as one ``(R, T, pair_tries, 3)`` tensor; the C-order
fill makes that stream-identical to ``R`` consecutive per-round draws, so
block size never changes a trajectory.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.convergence import ConvergenceDetector
from repro.core.dynamics import CommitteeEvent, DynamicSchedule
from repro.core.problem import EpochInstance
from repro.core.se import (
    InfeasibleEpochError,
    SEResult,
    StochasticExploration,
    _Replica,
)
from repro.core.solution import Solution
from repro.core.timers import clamped_exp
from repro.sim.rng import RandomStreams

#: Engines selectable via ``SEConfig(engine=...)``.
ENGINE_NAMES = ("serial", "parallel", "vectorized")


# ------------------------------------------------------------------ #
# shared driver state
# ------------------------------------------------------------------ #
class _EngineRun:
    """Driver-side bookkeeping shared by all engines.

    Owns exactly the state the pre-engine ``solve`` loop kept on its stack:
    the named streams, the replicas, the incumbent, traces, detector and
    applied events.  Engines differ only in how they advance the replicas
    between event boundaries.
    """

    def __init__(
        self,
        solver: StochasticExploration,
        instance: EpochInstance,
        schedule: Optional[DynamicSchedule],
        probe: Optional[Callable[..., None]],
    ) -> None:
        self.solver = solver
        self.config = solver.config
        self.telemetry = solver.telemetry
        self.traced = solver.telemetry.enabled  # hoisted: race loops pay one load
        self.instance = instance
        self.schedule = schedule
        self.probe = probe
        self.streams = RandomStreams(self.config.seed)
        self.replicas = solver._spawn_replicas(instance, self.streams)
        if not any(thread.active for replica in self.replicas for thread in replica.threads):
            raise InfeasibleEpochError(
                "no feasible solution at any thread cardinality; capacity too small"
            )
        if schedule is not None:
            schedule.reset()
        if self.traced:
            cardinalities = [t.cardinality for t in self.replicas[0].threads]
            self.telemetry.event(
                "se.bootstrap",
                replicas=len(self.replicas),
                solution_threads=len(cardinalities),
                n_lo=min(cardinalities),
                n_hi=max(cardinalities),
                num_shards=instance.num_shards,
                capacity=instance.capacity,
            )
        self.detector = ConvergenceDetector(
            window=self.config.convergence_window, tolerance=self.config.tolerance
        )
        best = solver._best_current(self.replicas)
        self.best = solver._maybe_full_solution(instance, best)
        self.utility_trace: List[float] = []
        self.current_trace: List[float] = []
        self.time_trace: List[float] = []
        self.events_applied: List[CommitteeEvent] = []
        self.converged = False
        self.iterations = 0

    # -------------------------------------------------------------- #
    def apply_due_events(self, iteration: int) -> None:
        """Alg. 1 lines 9-12 at one boundary (identical to the serial loop)."""
        if self.schedule is None:
            return
        fired_events = self.schedule.due(iteration)
        if not fired_events:
            return
        solver = self.solver
        self.instance = solver._apply_events(
            self.instance, self.replicas, fired_events, self.streams
        )
        self.events_applied.extend(fired_events)
        self.detector.reset()
        self.best = solver._rebase_best(self.best, self.instance)
        self.best = solver._pick_better(self.best, solver._best_current(self.replicas))
        self.best = solver._maybe_full_solution(self.instance, self.best)
        if self.probe is not None:
            self.probe(
                iteration=iteration,
                events=fired_events,
                instance=self.instance,
                best=self.best,
                replicas=self.replicas,
            )
        if self.traced:
            for event in fired_events:
                self.telemetry.event(
                    "se.dynamic",
                    iteration=iteration,
                    kind=event.kind.name,
                    shard_id=event.shard_id,
                    num_shards=self.instance.num_shards,
                )

    def finish_round(
        self, iteration: int, current: float, virtual_time: float, transitions: int
    ) -> bool:
        """Trace/telemetry/convergence tail of one race round.

        Returns True when the run is converged *and* the schedule is
        exhausted — the loop-break condition of the serial engine.
        """
        self.iterations = iteration + 1
        self.utility_trace.append(self.best.utility)
        self.current_trace.append(current)
        self.time_trace.append(virtual_time)
        if self.traced:
            # Each fired timer triggers one RESET broadcast: every sibling
            # solution re-draws its pair and timer (Alg. 1).
            self.telemetry.count("se.reset_broadcasts", transitions, iteration=iteration)
            self.telemetry.event(
                "se.round",
                iteration=iteration,
                best_utility=self.best.utility,
                current_utility=current,
                virtual_time=virtual_time,
                transitions=transitions,
            )
        if self.detector.update(self.best.utility) and (
            self.schedule is None or self.schedule.exhausted
        ):
            self.converged = True
            return True
        return False

    def segment_length(self, iteration: int) -> int:
        """Rounds until the next event boundary, capped at one chunk.

        Chunks are ``convergence_window``-sized so a converged run never
        overshoots by more than one window of (discarded) worker rounds.
        """
        limit = self.config.max_iterations
        if self.schedule is not None and not self.schedule.exhausted:
            limit = min(limit, self.schedule.next_iteration)
        if limit <= iteration:
            limit = iteration + 1
        return min(limit - iteration, max(1, self.config.convergence_window))

    def result(self) -> SEResult:
        """Materialise the :class:`~repro.core.se.SEResult` (with se.done)."""
        if self.traced:
            self.telemetry.event(
                "se.done",
                iterations=self.iterations,
                converged=self.converged,
                best_utility=self.best.utility,
                best_count=self.best.count,
                best_weight=self.best.weight,
                events_applied=len(self.events_applied),
            )
        return SEResult(
            best_mask=self.best.mask.copy(),
            best_utility=self.best.utility,
            best_weight=self.best.weight,
            best_count=self.best.count,
            iterations=self.iterations,
            converged=self.converged,
            utility_trace=np.asarray(self.utility_trace),
            current_trace=np.asarray(self.current_trace),
            virtual_time_trace=np.asarray(self.time_trace),
            thread_cardinalities=[t.cardinality for t in self.replicas[0].threads],
            num_replicas=len(self.replicas),
            events_applied=self.events_applied,
            final_instance=self.instance,
        )


# ------------------------------------------------------------------ #
# serial engine (reference)
# ------------------------------------------------------------------ #
def run_serial(run: _EngineRun) -> SEResult:
    """The reference scalar loop — the pre-engine ``solve`` body."""
    config = run.config
    telemetry = run.telemetry
    traced = run.traced
    for iteration in range(config.max_iterations):
        run.apply_due_events(iteration)
        round_best: Optional[Solution] = None
        transitions = 0
        for replica_index, replica in enumerate(run.replicas):
            fired = replica.race_round()
            if fired is not None and fired.solution is not None:
                transitions += 1
                if traced:
                    swap_out, swap_in = fired.last_swap or (-1, -1)
                    telemetry.event(
                        "se.transition",
                        iteration=iteration,
                        replica=replica_index,
                        cardinality=fired.cardinality,
                        swap_out=swap_out,
                        swap_in=swap_in,
                        utility=fired.solution.utility,
                    )
                if round_best is None or fired.solution.utility > round_best.utility:
                    round_best = fired.solution
        run.best = run.solver._pick_better(run.best, round_best)
        current = max(replica.current_utility for replica in run.replicas)
        virtual_time = max(replica.virtual_time for replica in run.replicas)
        if run.finish_round(iteration, current, virtual_time, transitions):
            break
    return run.result()


# ------------------------------------------------------------------ #
# parallel engine (process pool over replicas, byte-identical)
# ------------------------------------------------------------------ #
@dataclass
class _SegmentLog:
    """Compact per-round log a worker returns for one replica segment.

    ``improvements[k]`` is ``(utility, weight, count, selected_bytes)`` for
    the round-``k`` fires that strictly improved this replica's running
    fired-max within the segment — a superset of every fire that could win
    a round against the monotone incumbent, which is all the driver needs
    to rebuild the serial best-tracking byte-for-byte.
    """

    fired: List[bool]
    fired_utilities: List[float]
    cardinalities: List[int]
    swaps: List[Optional[Tuple[int, int]]]
    currents: List[float]
    virtual_times: List[float]
    improvements: Dict[int, Tuple[float, int, int, bytes]]


def advance_replica_segment(replica: _Replica, rounds: int) -> Tuple[_Replica, _SegmentLog]:
    """Advance one executor replica ``rounds`` race rounds (worker entry).

    Runs only the pure race (Alg. 1 lines 14-21 / Alg. 3 timers, eq. 8);
    dynamic events, probes and telemetry stay on the driver.  Module-level
    by design: :class:`concurrent.futures.ProcessPoolExecutor` must pickle
    the callable for spawn-safe dispatch (lint rule MV008).
    """
    fired: List[bool] = []
    fired_utilities: List[float] = []
    cardinalities: List[int] = []
    swaps: List[Optional[Tuple[int, int]]] = []
    currents: List[float] = []
    virtual_times: List[float] = []
    improvements: Dict[int, Tuple[float, int, int, bytes]] = {}
    local_max = float("-inf")
    for k in range(rounds):
        winner = replica.race_round()
        if winner is not None and winner.solution is not None:
            solution = winner.solution
            utility = solution.utility
            fired.append(True)
            fired_utilities.append(utility)
            cardinalities.append(winner.cardinality)
            swaps.append(winner.last_swap)
            if utility > local_max:
                local_max = utility
                improvements[k] = (
                    utility,
                    solution.weight,
                    solution.count,
                    bytes(solution.selected),
                )
        else:
            fired.append(False)
            fired_utilities.append(float("-inf"))
            cardinalities.append(-1)
            swaps.append(None)
        currents.append(replica.current_utility)
        virtual_times.append(replica.virtual_time)
    return replica, _SegmentLog(
        fired=fired,
        fired_utilities=fired_utilities,
        cardinalities=cardinalities,
        swaps=swaps,
        currents=currents,
        virtual_times=virtual_times,
        improvements=improvements,
    )


_WORKER_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _shared_pool(num_workers: int) -> ProcessPoolExecutor:
    """Process pool reused across solves (spawn startup is seconds-scale)."""
    pool = _WORKER_POOLS.get(num_workers)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=num_workers, mp_context=multiprocessing.get_context("spawn")
        )
        _WORKER_POOLS[num_workers] = pool
    return pool


def shared_pool(num_workers: int) -> ProcessPoolExecutor:
    """Public handle on the cached spawn-safe pool.

    The harness's figure-sweep runner (:mod:`repro.harness.parallel`)
    reuses the same executors as the parallel SE engine, so one ``mvcom``
    invocation never pays spawn startup twice for the same pool size.
    """
    return _shared_pool(num_workers)


def shutdown_worker_pools() -> None:
    """Tear down every cached parallel-engine pool (registered atexit)."""
    for pool in _WORKER_POOLS.values():
        pool.shutdown()
    _WORKER_POOLS.clear()


atexit.register(shutdown_worker_pools)


def _solution_from_log(
    instance: EpochInstance, parts: Tuple[float, int, int, bytes]
) -> Solution:
    """Rehydrate a worker-logged solution, carrying its caches verbatim.

    The incremental float caches must transfer bit-for-bit (recomputing
    utility from the mask can differ in the last bit), so this bypasses
    ``Solution.__init__``.
    """
    utility, weight, count, selected = parts
    solution = Solution.__new__(Solution)
    solution.instance = instance
    solution.selected = bytearray(selected)
    solution._utility = utility
    solution._weight = weight
    solution._count = count
    return solution


def _merge_segment(
    run: _EngineRun, start_iteration: int, segment: int, logs: List[_SegmentLog]
) -> bool:
    """Replay one segment's worker logs through the serial round tail.

    Scans each round's improvement records in replica order with the serial
    strict-``>`` tie-break, so the incumbent, traces and convergence
    decision come out byte-identical.  Returns True on convergence (the
    segment's remaining rounds are discarded, as the serial loop would
    never have executed them).
    """
    telemetry = run.telemetry
    traced = run.traced
    for k in range(segment):
        iteration = start_iteration + k
        transitions = 0
        candidate: Optional[Tuple[float, int, int, bytes]] = None
        for replica_index, log in enumerate(logs):
            if not log.fired[k]:
                continue
            transitions += 1
            if traced:
                swap_out, swap_in = log.swaps[k] or (-1, -1)
                telemetry.event(
                    "se.transition",
                    iteration=iteration,
                    replica=replica_index,
                    cardinality=log.cardinalities[k],
                    swap_out=swap_out,
                    swap_in=swap_in,
                    utility=log.fired_utilities[k],
                )
            improvement = log.improvements.get(k)
            if improvement is not None and (
                candidate is None or improvement[0] > candidate[0]
            ):
                candidate = improvement
        if candidate is not None and candidate[0] > run.best.utility:
            run.best = _solution_from_log(run.instance, candidate)
        current = max(log.currents[k] for log in logs)
        virtual_time = max(log.virtual_times[k] for log in logs)
        if run.finish_round(iteration, current, virtual_time, transitions):
            return True
    return False


def _rebind_instance(replicas: List[_Replica], instance: EpochInstance) -> None:
    """Point every unpickled thread solution back at the driver's instance.

    Workers never mutate the instance, but round-tripping a replica through
    pickle gives its solutions a value-equal *copy*.  The serial loop's
    invariant — and the storm probe's ``best.instance is instance`` check —
    require the single shared object, so restore identity after each
    segment.  Cached utility/weight scalars stay valid (the copy is equal).
    """
    for replica in replicas:
        for thread in replica.threads:
            if thread.solution is not None:
                thread.solution.instance = instance


def run_parallel(run: _EngineRun) -> SEResult:
    """Segmented Γ-replica execution over a spawn-safe process pool."""
    config = run.config
    pool = _shared_pool(config.num_workers)
    iteration = 0
    while iteration < config.max_iterations:
        run.apply_due_events(iteration)
        segment = run.segment_length(iteration)
        futures = [
            pool.submit(advance_replica_segment, replica, segment)
            for replica in run.replicas
        ]
        outcomes = [future.result() for future in futures]
        run.replicas = [replica for replica, _ in outcomes]
        _rebind_instance(run.replicas, run.instance)
        logs = [log for _, log in outcomes]
        if _merge_segment(run, iteration, segment, logs):
            break
        iteration += segment
    return run.result()


# ------------------------------------------------------------------ #
# vectorized engine (batched race kernel, distributional)
# ------------------------------------------------------------------ #
class _VectorState:
    """Flattened array mirror of every *racing* solution thread.

    A thread races when it holds a solution with both selected and
    unselected positions; threads with nothing to swap (e.g. the
    full-cardinality :math:`f_{|I_j|}`) contribute a constant
    ``static_current`` instead.  Rows are replica-major so per-replica
    argmin reductions are contiguous slices.

    Hot-path layout: per-thread ``sel``/``unsel`` index rows are stored as
    flat arrays together with ``tx``/``half_beta*value`` gather mirrors, so
    one round costs a handful of ``take`` gathers on ``(T,)`` arrays.  The
    cardinalities never change, so the uniform draws for many rounds are
    pre-shaped into index/log-variate blocks at once
    (:meth:`start_block`) — stream-equivalent to per-round draws.
    """

    def __init__(self, replicas: List[_Replica], instance: EpochInstance, config) -> None:
        self.instance = instance
        self.replicas = replicas
        self.threads: List = []
        self.groups: List[Tuple[int, int]] = []
        static_current = float("-inf")
        for replica in replicas:
            start = len(self.threads)
            for thread in replica.threads:
                if thread.solution is None:
                    continue
                if thread.sel and thread.unsel:
                    self.threads.append(thread)
                else:
                    static_current = max(static_current, thread.solution.utility)
            self.groups.append((start, len(self.threads)))
        self.static_current = static_current
        size = len(self.threads)
        self.size = size
        num_shards = instance.num_shards
        max_sel = max((len(t.sel) for t in self.threads), default=1)
        max_unsel = max((len(t.unsel) for t in self.threads), default=1)
        self.max_sel = max_sel
        self.max_unsel = max_unsel
        self.num_shards = num_shards
        sel = np.zeros((size, max_sel), dtype=np.int64)
        unsel = np.zeros((size, max_unsel), dtype=np.int64)
        self.n_sel = np.zeros(size, dtype=np.int64)
        self.n_unsel = np.zeros(size, dtype=np.int64)
        self.utility = np.zeros(size, dtype=np.float64)
        self.weight = np.zeros(size, dtype=np.int64)
        self.cards = np.zeros(size, dtype=np.int64)
        for row, thread in enumerate(self.threads):
            solution = thread.solution
            sel[row, : len(thread.sel)] = thread.sel
            unsel[row, : len(thread.unsel)] = thread.unsel
            self.n_sel[row] = len(thread.sel)
            self.n_unsel[row] = len(thread.unsel)
            self.utility[row] = solution.utility
            self.weight[row] = solution.weight
            self.cards[row] = thread.cardinality
        self.len_sel = self.n_sel.astype(np.float64)
        self.len_unsel = self.n_unsel.astype(np.float64)
        self.slack = instance.capacity - self.weight
        self.tx_list = instance.tx_counts_list
        self.values_list = instance.values_list
        self.half_beta = 0.5 * config.beta
        self.hbv_list = [self.half_beta * value for value in instance.values_list]
        self.log_mean_base = config.tau - np.log(self.len_unsel)
        self.pair_tries = config.pair_tries
        # Flat row-major stores plus gather mirrors: tx for the capacity
        # check (const. 4) and half_beta*value for the eq. (8) exponent.
        tx = np.asarray(instance.tx_counts, dtype=np.int64)
        hbv = self.half_beta * np.asarray(instance.values, dtype=np.float64)
        self.sel_flat = sel.reshape(-1)
        self.unsel_flat = unsel.reshape(-1)
        self.tx_sel = tx[sel].reshape(-1)
        self.tx_unsel = tx[unsel].reshape(-1)
        self.hbv_sel = hbv[sel].reshape(-1)
        self.hbv_unsel = hbv[unsel].reshape(-1)
        self.rows = np.arange(size)
        self.off_sel = (np.arange(size, dtype=np.int64) * max_sel)
        self.off_unsel = (np.arange(size, dtype=np.int64) * max_unsel)
        self.virtual_times = np.array(
            [replica.virtual_time for replica in replicas], dtype=np.float64
        )
        # Running current-utility max over racing rows (same incremental
        # rule as _Replica.race_round, rescans only on downhill max fires).
        self.racing_current = float(self.utility.max()) if size else float("-inf")
        self._blk_out: Optional[np.ndarray] = None
        self._blk_in: Optional[np.ndarray] = None
        self._blk_timer_base: Optional[np.ndarray] = None

    # -------------------------------------------------------------- #
    def start_block(self, rng: np.random.Generator, rounds: int) -> None:
        """Draw and pre-shape ``rounds`` rounds of uniforms in one batch.

        Two draws per block: a ``(rounds, T, pair_tries, 2)`` tensor of
        pair-index uniforms and a ``(rounds, T)`` tensor of Exp(1)
        inversion uniforms (one per thread-round — only the armed lane's
        timer is ever needed).  C-order fill makes a block stream-identical
        to per-round draws, so block size never changes a trajectory.
        """
        draws = rng.random((rounds, self.size, self.pair_tries, 2))
        out = (draws[..., 0] * self.len_sel[:, None]).astype(np.int64)
        np.minimum(out, self.n_sel[:, None] - 1, out=out)
        out += self.off_sel[:, None]
        inn = (draws[..., 1] * self.len_unsel[:, None]).astype(np.int64)
        np.minimum(inn, self.n_unsel[:, None] - 1, out=inn)
        inn += self.off_unsel[:, None]
        self._blk_out = out
        self._blk_in = inn
        exp_draws = rng.random((rounds, self.size))
        # Pre-fold the eq. (8) log-mean base and the Exp(1) inversion so a
        # round's timer is just two gathers and two adds on (T,) arrays.
        self._blk_timer_base = self.log_mean_base + np.log(
            np.maximum(-np.log1p(-exp_draws), 1e-300)
        )

    def race_round(self, block_round: int) -> List[Tuple[int, int, int, int]]:
        """One batched race round; returns fires as (group, row, out, in).

        Semantics match the scalar Set-timer()/State-Transit pair: each
        thread tries up to ``pair_tries`` uniform swap pairs, arms an
        eq. (8) log-timer on the first capacity-feasible one (const. 4),
        and each replica fires its minimum armed timer.
        """
        if self.size == 0:
            return []
        blk_out = self._blk_out[block_round]  # (T, pair_tries) views
        blk_in = self._blk_in[block_round]
        tx_out = self.tx_sel.take(blk_out)
        tx_in = self.tx_unsel.take(blk_in)
        accepted = (tx_in - tx_out) <= self.slack[:, None]
        lane = np.argmax(accepted, axis=1)  # first feasible lane per thread
        armed = accepted.any(axis=1)
        rows = self.rows
        flat_out = blk_out[rows, lane]
        flat_in = blk_in[rows, lane]
        timers = (
            self._blk_timer_base[block_round]
            - self.hbv_unsel.take(flat_in)
            + self.hbv_sel.take(flat_out)
        )
        timers[~armed] = np.inf  # parked: no feasible pair within the budget
        fires: List[Tuple[int, int, int, int]] = []
        for group, (start, end) in enumerate(self.groups):
            if end == start:
                continue
            row = start + int(np.argmin(timers[start:end]))
            log_min = float(timers[row])
            if math.isinf(log_min):
                continue  # no thread in this replica armed a feasible pair
            self.virtual_times[group] += clamped_exp(log_min)
            swap_out = int(self.sel_flat[flat_out[row]])
            swap_in = int(self.unsel_flat[flat_in[row]])
            self._fire(row, int(flat_out[row]), int(flat_in[row]), swap_out, swap_in)
            fires.append((group, row, swap_out, swap_in))
        return fires

    def _fire(
        self, row: int, flat_out: int, flat_in: int, pos_out: int, pos_in: int
    ) -> None:
        self.sel_flat[flat_out] = pos_in
        self.unsel_flat[flat_in] = pos_out
        self.tx_sel[flat_out] = self.tx_list[pos_in]
        self.tx_unsel[flat_in] = self.tx_list[pos_out]
        self.hbv_sel[flat_out] = self.hbv_list[pos_in]
        self.hbv_unsel[flat_in] = self.hbv_list[pos_out]
        weight_delta = self.tx_list[pos_in] - self.tx_list[pos_out]
        self.weight[row] += weight_delta
        self.slack[row] -= weight_delta
        before = float(self.utility[row])
        after = before + (self.values_list[pos_in] - self.values_list[pos_out])
        self.utility[row] = after
        if after > self.racing_current:
            self.racing_current = after
        elif before == self.racing_current and after < before:
            self.racing_current = float(self.utility.max())

    def current_utility(self) -> float:
        """Best current utility across racing and static threads."""
        if self.size == 0:
            return self.static_current
        return max(self.static_current, self.racing_current)

    def solution_at(self, row: int) -> Solution:
        """Materialise row ``row`` as a :class:`Solution` (caches carried)."""
        count = int(self.n_sel[row])
        offset = int(self.off_sel[row])
        mask = np.zeros(self.num_shards, dtype=bool)
        mask[self.sel_flat[offset : offset + count]] = True
        solution = Solution.__new__(Solution)
        solution.instance = self.instance
        solution.selected = bytearray(mask.view(np.uint8).tobytes())
        solution._utility = float(self.utility[row])
        solution._weight = int(self.weight[row])
        solution._count = count
        return solution

    def sync_back(self) -> None:
        """Write array state back into the thread objects (event boundaries)."""
        for row, thread in enumerate(self.threads):
            thread.set_solution(self.solution_at(row))
        for group, replica in enumerate(self.replicas):
            replica.virtual_time = float(self.virtual_times[group])
            replica.recompute_current()


def run_vectorized(run: _EngineRun) -> SEResult:
    """Batched single-process race; arrays persist between event boundaries."""
    config = run.config
    telemetry = run.telemetry
    traced = run.traced
    race_rng = run.streams.get("vectorized-race")
    state: Optional[_VectorState] = None
    iteration = 0
    done = False
    while not done and iteration < config.max_iterations:
        schedule = run.schedule
        if (
            schedule is not None
            and not schedule.exhausted
            and schedule.next_iteration <= iteration
        ):
            if state is not None:
                state.sync_back()
                state = None
            run.apply_due_events(iteration)
        if state is None:
            state = _VectorState(run.replicas, run.instance, config)
        segment = run.segment_length(iteration)
        block_round = 0
        block_rounds = 0
        for round_index in range(iteration, iteration + segment):
            if block_round >= block_rounds:
                remaining = iteration + segment - round_index
                block_rounds = min(remaining, max(1, 8192 // max(1, state.size)))
                state.start_block(race_rng, block_rounds)
                block_round = 0
            fires = state.race_round(block_round)
            block_round += 1
            best_row = -1
            best_fired = float("-inf")
            for group, row, swap_out, swap_in in fires:
                fired_utility = float(state.utility[row])
                if traced:
                    telemetry.event(
                        "se.transition",
                        iteration=round_index,
                        replica=group,
                        cardinality=int(state.cards[row]),
                        swap_out=swap_out,
                        swap_in=swap_in,
                        utility=fired_utility,
                    )
                if fired_utility > best_fired:
                    best_fired = fired_utility
                    best_row = row
            if best_row >= 0 and best_fired > run.best.utility:
                run.best = state.solution_at(best_row)
            current = state.current_utility()
            virtual_time = float(state.virtual_times.max()) if state.size else 0.0
            if run.finish_round(round_index, current, virtual_time, len(fires)):
                done = True
                break
        else:
            iteration += segment
    if state is not None:
        state.sync_back()
    return run.result()


# ------------------------------------------------------------------ #
# dispatch
# ------------------------------------------------------------------ #
def run_engine(
    solver: StochasticExploration,
    instance: EpochInstance,
    schedule: Optional[DynamicSchedule] = None,
    probe: Optional[Callable[..., None]] = None,
) -> SEResult:
    """Run one SE solve on the engine named by ``solver.config.engine``.

    All engines return an :class:`~repro.core.se.SEResult` whose best
    solution satisfies const. (3) ``count >= N_min`` and const. (4)
    ``weight <= Ĉ``; ``serial`` and ``parallel`` are byte-identical for a
    given ``SEConfig.seed``, ``vectorized`` matches distributionally.
    """
    run = _EngineRun(solver, instance, schedule, probe)
    engine = solver.config.engine
    if engine == "parallel":
        return run_parallel(run)
    if engine == "vectorized":
        return run_vectorized(run)
    return run_serial(run)
