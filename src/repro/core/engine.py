"""Execution engines for the Stochastic-Exploration race (Alg. 1).

:class:`repro.core.se.StochasticExploration` owns the algorithm; this module
owns *how fast it runs*.  Three engines share one driver
(:class:`_EngineRun`) that keeps everything observable on the calling
process — bootstrap, dynamic events (Alg. 1 lines 9-12), probes, telemetry,
the :class:`~repro.core.convergence.ConvergenceDetector` and the incumbent
λ — so rule MV007 and the faultinject probe contract hold for every engine:

``serial``
    The reference scalar loop (the pre-engine ``solve`` body, verbatim).
    Golden tests pin it unchanged.

``parallel``
    The Γ executor replicas are *independent between dynamic-event
    boundaries* — every stream a replica consumes is keyed by its
    ``replica_id``, never by iteration order — so each replica is advanced
    in a worker process for a whole *segment* (up to the next scheduled
    event, in ``convergence_window``-sized chunks otherwise) and returns a
    compact per-round log.  The driver merges the logs round-by-round,
    rebuilds the traces, runs convergence on the merged series and
    truncates at the exact converged round.  Results are **byte-identical**
    to the serial engine: same seeds → same masks, traces and iteration
    counts.  (Merge argument: the incumbent's utility is monotone and
    bounds every past fired utility, so only a fire that *strictly improves
    its own replica's running fired-max* can ever win a round; workers log
    exactly those, and the driver replays the serial replica-order
    tie-break over them.)

``vectorized``
    The fully-batched Γ×thread race kernel: **one** numpy race covers every
    replica's racing threads simultaneously.  Each round draws all racing
    threads' swap pairs and Exp(1) variates in one block from the named
    ``"vectorized-race"`` stream, evaluates eq. (8) as array ops over the
    whole population, finds each replica's minimum armed timer by a
    segmented (inf-padded rectangular) argmin — no per-replica Python loop —
    and applies all fires at once (one fire per replica touches disjoint
    rows, so the batch is exact).  It consumes randomness in a different
    order than the scalar engines, so it is validated *distributionally*
    (χ²/KS tests in ``tests/test_core_engines.py``), not byte-wise.

``auto`` (the :class:`~repro.core.se.SEConfig` default)
    Not a fourth engine but a selection rule (:func:`select_engine`): the
    *trajectory-changing* choice — scalar family vs batched kernel — depends
    only on machine-independent quantities (the racing population
    ``Γ × threads`` and the dynamic-event density), so a seeded run picks
    the same family on every box; ``os.cpu_count()`` only arbitrates
    *within* the byte-identical scalar family (serial vs parallel).  The
    decision is logged through the injected obs hub as an ``engine.auto``
    event.

Vectorized stream layout (the engine's own named streams, independent of
the per-replica scalar streams): per race round the main
``"vectorized-race"`` stream supplies one ``(T, 3)`` uniform block —
column 0 a thread's lane-0 out-index draw, column 1 its lane-0 in-index
draw, column 2 its Exp(1) inversion draw — where ``T`` counts racing
threads **across all Γ replicas** in replica-major, cardinality-minor
order.  Main-stream consumption is therefore shape-constant per round.
Only rows whose lane-0 pair violates the capacity (const. 4) draw their
remaining ``pair_tries - 1`` candidate pairs from the separate
``"vectorized-race-retry"`` stream — one ``(rejected, pair_tries - 1, 2)``
block, first feasible lane wins, budget-exhausted rows park — so the
common case (ample slack) pays 3 uniforms per thread-round instead of the
scalar engines' up-to-33.  Both streams replay deterministically: the
retry block's size is a function of the trajectory, which is a function of
the seeds alone.  For speed the kernel draws many rounds of the main block
at once as ``(R, T, 3)``; retry blocks are always per-round.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.convergence import ConvergenceDetector
from repro.core.dynamics import CommitteeEvent, DynamicSchedule
from repro.core.problem import EpochInstance
from repro.core.repair import greedy_improve
from repro.core.se import (
    InfeasibleEpochError,
    SEResult,
    SEWarmState,
    StochasticExploration,
    _Replica,
    instances_match,
)
from repro.core.solution import Solution
from repro.core.timers import LOG_DURATION_MAX, LOG_DURATION_MIN
from repro.sim.rng import RandomStreams

#: Concrete engines (each names a ``run_*`` implementation below).
ENGINE_NAMES = ("serial", "parallel", "vectorized")

#: The selection rule accepted by ``SEConfig(engine=...)`` alongside the
#: concrete engines; resolved per solve by :func:`select_engine`.
AUTO_ENGINE = "auto"

#: Everything ``SEConfig(engine=...)`` accepts.
SELECTABLE_ENGINES = (AUTO_ENGINE,) + ENGINE_NAMES

#: Racing population ``Γ × racing threads`` at which the batched kernel's
#: per-round numpy dispatch overhead is amortised and it beats the scalar
#: loop.  Measured on the bench box (``benchmarks/bench_se_engines.py``):
#: the crossover sits near work ≈ 60; 192 leaves a ~3x safety margin so
#: ``auto`` is never slower than serial.  Machine-independent on purpose —
#: this threshold decides the *trajectory* (scalar vs batched draws), so it
#: must not consult ``cpu_count``.
AUTO_VECTORIZE_MIN_WORK = 192

#: Mean rounds between dynamic-event boundaries below which ``auto`` stays
#: on the scalar family: each boundary forces the batched kernel to sync
#: its arrays back into thread objects and rebuild them, which dominates
#: short segments.  Also machine-independent (schedule-derived only).
AUTO_DENSE_GAP_ROUNDS = 64

#: The parallel engine is byte-identical to serial, so consulting the
#: machine here is safe.  It only ever pays off with real cores, several
#: replicas to fan out, and enough per-segment work to beat pickling.
AUTO_PARALLEL_MIN_CPUS = 4
AUTO_PARALLEL_MIN_GAMMA = 4
AUTO_PARALLEL_MIN_WORK = 4096


def count_racing_threads(replica: _Replica) -> int:
    """Threads of one replica that can race (hold a swappable solution)."""
    return sum(
        1 for thread in replica.threads
        if thread.solution is not None and thread.sel and thread.unsel
    )


def schedule_mean_gap(schedule: Optional[DynamicSchedule], max_iterations: int) -> float:
    """Mean rounds between dynamic-event boundaries over the run budget.

    Events sharing an iteration are one boundary (they are applied
    together).  ``inf`` for a static run, so the density check below is a
    single comparison either way.
    """
    if schedule is None or len(schedule) == 0:
        return float("inf")
    boundaries = len({event.iteration for event in schedule.events})
    return max_iterations / (boundaries + 1)


def select_engine(
    config,
    racing_threads: int,
    schedule: Optional[DynamicSchedule] = None,
    cpu_count: Optional[int] = None,
) -> Tuple[str, str]:
    """Resolve ``engine="auto"`` to a concrete engine; returns (engine, reason).

    The decision tree keeps seeded runs reproducible across machines: the
    scalar-vs-batched split (which changes the randomness consumption
    order, hence the trajectory) depends only on the racing population and
    the event density — both derived from the config/instance/schedule.
    ``cpu_count`` (injectable for tests; defaults to ``os.cpu_count()``)
    only picks between serial and parallel, which are byte-identical twins.
    """
    work = config.num_threads * racing_threads
    mean_gap = schedule_mean_gap(schedule, config.max_iterations)
    dense = mean_gap < AUTO_DENSE_GAP_ROUNDS
    if not dense and work >= AUTO_VECTORIZE_MIN_WORK:
        return (
            "vectorized",
            f"work={work} >= {AUTO_VECTORIZE_MIN_WORK}: batched kernel amortises",
        )
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if (
        cpus >= AUTO_PARALLEL_MIN_CPUS
        and config.num_threads >= AUTO_PARALLEL_MIN_GAMMA
        and work >= AUTO_PARALLEL_MIN_WORK
    ):
        return (
            "parallel",
            f"dense schedule (gap {mean_gap:.0f} rounds) with work={work} "
            f"on {cpus} cpus: replica pool beats scalar",
        )
    if dense and work >= AUTO_VECTORIZE_MIN_WORK:
        return (
            "serial",
            f"dense schedule (gap {mean_gap:.0f} rounds): array rebuild "
            "per boundary would dominate the batched kernel",
        )
    return "serial", f"work={work} < {AUTO_VECTORIZE_MIN_WORK}: scalar loop wins"


# ------------------------------------------------------------------ #
# shared driver state
# ------------------------------------------------------------------ #
class _EngineRun:
    """Driver-side bookkeeping shared by all engines.

    Owns exactly the state the pre-engine ``solve`` loop kept on its stack:
    the named streams, the replicas, the incumbent, traces, detector and
    applied events.  Engines differ only in how they advance the replicas
    between event boundaries.
    """

    def __init__(
        self,
        solver: StochasticExploration,
        instance: EpochInstance,
        schedule: Optional[DynamicSchedule],
        probe: Optional[Callable[..., None]],
        warm: Optional[SEWarmState] = None,
    ) -> None:
        self.solver = solver
        self.config = solver.config
        self.telemetry = solver.telemetry
        self.traced = solver.telemetry.enabled  # hoisted: race loops pay one load
        self.instance = instance
        self.schedule = schedule
        self.probe = probe
        if warm is None:
            self.generation = 0
            self.streams = RandomStreams(self.config.seed)
            self.replicas = solver._spawn_replicas(instance, self.streams)
        else:
            # Warm start: adopt the carried replicas/streams in place.  The
            # streams registry's cached generators make every named stream
            # (init, leave, vectorized-race) *continue* across the handoff.
            self.generation = warm.generation
            self.streams = warm.streams
            self.warm_stats = solver._adopt_replicas(warm, instance)
            self.replicas = warm.replicas
        if not any(thread.active for replica in self.replicas for thread in replica.threads):
            raise InfeasibleEpochError(
                "no feasible solution at any thread cardinality; capacity too small"
            )
        if schedule is not None:
            schedule.reset()
        if self.traced:
            cardinalities = [t.cardinality for t in self.replicas[0].threads]
            if warm is None:
                self.telemetry.event(
                    "se.bootstrap",
                    replicas=len(self.replicas),
                    solution_threads=len(cardinalities),
                    n_lo=min(cardinalities),
                    n_hi=max(cardinalities),
                    num_shards=instance.num_shards,
                    capacity=instance.capacity,
                )
            else:
                self.telemetry.event(
                    "se.warm_start",
                    replicas=len(self.replicas),
                    solution_threads=len(cardinalities),
                    generation=self.generation,
                    num_shards=instance.num_shards,
                    **self.warm_stats,
                )
        self.detector = ConvergenceDetector(
            window=self.config.convergence_window, tolerance=self.config.tolerance
        )
        if warm is None:
            best = solver._best_current(self.replicas)
            self.best = solver._maybe_full_solution(instance, best)
        elif self.warm_stats["zero_drift"]:
            # Continuing the same solve: the incumbent carries verbatim
            # (it is monotone and already dominates every current
            # solution), rebound onto the caller's instance object.
            best = warm.best.copy()
            best.instance = instance
            self.best = best
        else:
            # The carried incumbent is a *base*, not just a candidate:
            # after the feasibility rebase, one deterministic greedy pass
            # (drop drained negative-value members, refill the freed Ĉ
            # slack with the drifted instance's winners) turns it into a
            # real head start instead of a collapsed stale solution.
            best = solver._rebase_best(warm.best, instance)
            greedy_improve(instance, best)
            best = solver._pick_better(best, solver._best_current(self.replicas))
            self.best = solver._maybe_full_solution(instance, best)
        if warm is not None and probe is not None:
            # The epoch boundary is itself an event boundary: arm the same
            # probe contract the dynamic-event path honours, so storm
            # invariants hold *across* epochs, not just within one solve.
            probe(
                iteration=0,
                events=[],
                instance=instance,
                best=self.best,
                replicas=self.replicas,
            )
        self.utility_trace: List[float] = []
        self.current_trace: List[float] = []
        self.time_trace: List[float] = []
        self.events_applied: List[CommitteeEvent] = []
        self.converged = False
        self.iterations = 0

    # -------------------------------------------------------------- #
    def apply_due_events(self, iteration: int) -> None:
        """Alg. 1 lines 9-12 at one boundary (identical to the serial loop)."""
        if self.schedule is None:
            return
        fired_events = self.schedule.due(iteration)
        if not fired_events:
            return
        solver = self.solver
        self.instance = solver._apply_events(
            self.instance, self.replicas, fired_events, self.streams,
            generation=self.generation,
        )
        self.events_applied.extend(fired_events)
        self.detector.reset()
        self.best = solver._rebase_best(self.best, self.instance)
        self.best = solver._pick_better(self.best, solver._best_current(self.replicas))
        self.best = solver._maybe_full_solution(self.instance, self.best)
        if self.probe is not None:
            self.probe(
                iteration=iteration,
                events=fired_events,
                instance=self.instance,
                best=self.best,
                replicas=self.replicas,
            )
        if self.traced:
            for event in fired_events:
                self.telemetry.event(
                    "se.dynamic",
                    iteration=iteration,
                    kind=event.kind.name,
                    shard_id=event.shard_id,
                    num_shards=self.instance.num_shards,
                )

    def finish_round(
        self, iteration: int, current: float, virtual_time: float, transitions: int
    ) -> bool:
        """Trace/telemetry/convergence tail of one race round.

        Returns True when the run is converged *and* the schedule is
        exhausted — the loop-break condition of the serial engine.
        """
        self.iterations = iteration + 1
        self.utility_trace.append(self.best.utility)
        self.current_trace.append(current)
        self.time_trace.append(virtual_time)
        if self.traced:
            # Each fired timer triggers one RESET broadcast: every sibling
            # solution re-draws its pair and timer (Alg. 1).
            self.telemetry.count("se.reset_broadcasts", transitions, iteration=iteration)
            self.telemetry.event(
                "se.round",
                iteration=iteration,
                best_utility=self.best.utility,
                current_utility=current,
                virtual_time=virtual_time,
                transitions=transitions,
            )
        if self.detector.update(self.best.utility) and (
            self.schedule is None or self.schedule.exhausted
        ):
            self.converged = True
            return True
        return False

    def segment_length(self, iteration: int) -> int:
        """Rounds until the next event boundary, capped at one chunk.

        Chunks are ``convergence_window``-sized so a converged run never
        overshoots by more than one window of (discarded) worker rounds.
        """
        limit = self.config.max_iterations
        if self.schedule is not None and not self.schedule.exhausted:
            limit = min(limit, self.schedule.next_iteration)
        if limit <= iteration:
            limit = iteration + 1
        return min(limit - iteration, max(1, self.config.convergence_window))

    def result(self) -> SEResult:
        """Materialise the :class:`~repro.core.se.SEResult` (with se.done)."""
        if self.traced:
            self.telemetry.event(
                "se.done",
                iterations=self.iterations,
                converged=self.converged,
                best_utility=self.best.utility,
                best_count=self.best.count,
                best_weight=self.best.weight,
                events_applied=len(self.events_applied),
            )
        return SEResult(
            best_mask=self.best.mask.copy(),
            best_utility=self.best.utility,
            best_weight=self.best.weight,
            best_count=self.best.count,
            iterations=self.iterations,
            converged=self.converged,
            utility_trace=np.asarray(self.utility_trace),
            current_trace=np.asarray(self.current_trace),
            virtual_time_trace=np.asarray(self.time_trace),
            thread_cardinalities=[t.cardinality for t in self.replicas[0].threads],
            num_replicas=len(self.replicas),
            events_applied=self.events_applied,
            final_instance=self.instance,
            warm_state=SEWarmState(
                replicas=self.replicas,
                streams=self.streams,
                best=self.best,
                instance=self.instance,
                generation=self.generation + 1,
            ),
        )


# ------------------------------------------------------------------ #
# serial engine (reference)
# ------------------------------------------------------------------ #
def run_serial(run: _EngineRun) -> SEResult:
    """The reference scalar loop — the pre-engine ``solve`` body."""
    config = run.config
    telemetry = run.telemetry
    traced = run.traced
    for iteration in range(config.max_iterations):
        run.apply_due_events(iteration)
        round_best: Optional[Solution] = None
        transitions = 0
        for replica_index, replica in enumerate(run.replicas):
            fired = replica.race_round()
            if fired is not None and fired.solution is not None:
                transitions += 1
                if traced:
                    swap_out, swap_in = fired.last_swap or (-1, -1)
                    telemetry.event(
                        "se.transition",
                        iteration=iteration,
                        replica=replica_index,
                        cardinality=fired.cardinality,
                        swap_out=swap_out,
                        swap_in=swap_in,
                        utility=fired.solution.utility,
                    )
                if round_best is None or fired.solution.utility > round_best.utility:
                    round_best = fired.solution
        run.best = run.solver._pick_better(run.best, round_best)
        current = max(replica.current_utility for replica in run.replicas)
        virtual_time = max(replica.virtual_time for replica in run.replicas)
        if run.finish_round(iteration, current, virtual_time, transitions):
            break
    return run.result()


# ------------------------------------------------------------------ #
# parallel engine (process pool over replicas, byte-identical)
# ------------------------------------------------------------------ #
@dataclass
class _SegmentLog:
    """Compact per-round log a worker returns for one replica segment.

    ``improvements[k]`` is ``(utility, weight, count, selected_bytes)`` for
    the round-``k`` fires that strictly improved this replica's running
    fired-max within the segment — a superset of every fire that could win
    a round against the monotone incumbent, which is all the driver needs
    to rebuild the serial best-tracking byte-for-byte.
    """

    fired: List[bool]
    fired_utilities: List[float]
    cardinalities: List[int]
    swaps: List[Optional[Tuple[int, int]]]
    currents: List[float]
    virtual_times: List[float]
    improvements: Dict[int, Tuple[float, int, int, bytes]]


def advance_replica_segment(replica: _Replica, rounds: int) -> Tuple[_Replica, _SegmentLog]:
    """Advance one executor replica ``rounds`` race rounds (worker entry).

    Runs only the pure race (Alg. 1 lines 14-21 / Alg. 3 timers, eq. 8);
    dynamic events, probes and telemetry stay on the driver.  Module-level
    by design: :class:`concurrent.futures.ProcessPoolExecutor` must pickle
    the callable for spawn-safe dispatch (lint rule MV008).
    """
    fired: List[bool] = []
    fired_utilities: List[float] = []
    cardinalities: List[int] = []
    swaps: List[Optional[Tuple[int, int]]] = []
    currents: List[float] = []
    virtual_times: List[float] = []
    improvements: Dict[int, Tuple[float, int, int, bytes]] = {}
    local_max = float("-inf")
    for k in range(rounds):
        winner = replica.race_round()
        if winner is not None and winner.solution is not None:
            solution = winner.solution
            utility = solution.utility
            fired.append(True)
            fired_utilities.append(utility)
            cardinalities.append(winner.cardinality)
            swaps.append(winner.last_swap)
            if utility > local_max:
                local_max = utility
                improvements[k] = (
                    utility,
                    solution.weight,
                    solution.count,
                    bytes(solution.selected),
                )
        else:
            fired.append(False)
            fired_utilities.append(float("-inf"))
            cardinalities.append(-1)
            swaps.append(None)
        currents.append(replica.current_utility)
        virtual_times.append(replica.virtual_time)
    return replica, _SegmentLog(
        fired=fired,
        fired_utilities=fired_utilities,
        cardinalities=cardinalities,
        swaps=swaps,
        currents=currents,
        virtual_times=virtual_times,
        improvements=improvements,
    )


_WORKER_POOLS: Dict[int, ProcessPoolExecutor] = {}


def clamp_workers(num_workers: int, cpu_count: Optional[int] = None) -> int:
    """Validate and clamp a requested pool size to the machine's cores.

    Oversubscribing a process pool is never a win for this workload — the
    4-workers-on-1-core configuration is exactly what produced the 0.79x
    ``se_engines.parallel_speedup`` bench regression — so every pool goes
    through this clamp.  Raises on ``num_workers < 1`` (a silent serial
    fallback would hide a caller bug).  ``cpu_count`` overrides the probed
    core count for tests.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    return min(num_workers, cpu_count)


def _shared_pool(num_workers: int) -> ProcessPoolExecutor:
    """Process pool reused across solves (spawn startup is seconds-scale)."""
    pool = _WORKER_POOLS.get(num_workers)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=num_workers, mp_context=multiprocessing.get_context("spawn")
        )
        _WORKER_POOLS[num_workers] = pool
    return pool


def shared_pool(num_workers: int) -> ProcessPoolExecutor:
    """Public handle on the cached spawn-safe pool (clamped to cpu_count).

    The harness's figure-sweep runner (:mod:`repro.harness.parallel`)
    reuses the same executors as the parallel SE engine, so one ``mvcom``
    invocation never pays spawn startup twice for the same pool size.
    """
    return _shared_pool(clamp_workers(num_workers))


def shutdown_worker_pools() -> None:
    """Tear down every cached parallel-engine pool (registered atexit)."""
    for pool in _WORKER_POOLS.values():
        pool.shutdown()
    _WORKER_POOLS.clear()


atexit.register(shutdown_worker_pools)


def _solution_from_log(
    instance: EpochInstance, parts: Tuple[float, int, int, bytes]
) -> Solution:
    """Rehydrate a worker-logged solution, carrying its caches verbatim.

    The incremental float caches must transfer bit-for-bit (recomputing
    utility from the mask can differ in the last bit), so this bypasses
    ``Solution.__init__``.
    """
    utility, weight, count, selected = parts
    return Solution.from_cached(instance, selected, utility, weight, count)


def _merge_segment(
    run: _EngineRun, start_iteration: int, segment: int, logs: List[_SegmentLog]
) -> Optional[int]:
    """Replay one segment's worker logs through the serial round tail.

    Scans each round's improvement records in replica order with the serial
    strict-``>`` tie-break, so the incumbent, traces and convergence
    decision come out byte-identical.  Returns the number of rounds
    actually consumed when convergence fires mid-segment (the segment's
    remaining rounds are discarded, as the serial loop would never have
    executed them), else None.
    """
    telemetry = run.telemetry
    traced = run.traced
    for k in range(segment):
        iteration = start_iteration + k
        transitions = 0
        candidate: Optional[Tuple[float, int, int, bytes]] = None
        for replica_index, log in enumerate(logs):
            if not log.fired[k]:
                continue
            transitions += 1
            if traced:
                swap_out, swap_in = log.swaps[k] or (-1, -1)
                telemetry.event(
                    "se.transition",
                    iteration=iteration,
                    replica=replica_index,
                    cardinality=log.cardinalities[k],
                    swap_out=swap_out,
                    swap_in=swap_in,
                    utility=log.fired_utilities[k],
                )
            improvement = log.improvements.get(k)
            if improvement is not None and (
                candidate is None or improvement[0] > candidate[0]
            ):
                candidate = improvement
        if candidate is not None and candidate[0] > run.best.utility:
            run.best = _solution_from_log(run.instance, candidate)
        current = max(log.currents[k] for log in logs)
        virtual_time = max(log.virtual_times[k] for log in logs)
        if run.finish_round(iteration, current, virtual_time, transitions):
            return k + 1
    return None


def _rebind_instance(replicas: List[_Replica], instance: EpochInstance) -> None:
    """Point every unpickled thread solution back at the driver's instance.

    Workers never mutate the instance, but round-tripping a replica through
    pickle gives its solutions a value-equal *copy*.  The serial loop's
    invariant — and the storm probe's ``best.instance is instance`` check —
    require the single shared object, so restore identity after each
    segment.  Cached utility/weight scalars stay valid (the copy is equal).
    """
    for replica in replicas:
        for thread in replica.threads:
            if thread.solution is not None:
                thread.solution.instance = instance


def run_parallel(run: _EngineRun) -> SEResult:
    """Segmented Γ-replica execution over a spawn-safe process pool."""
    config = run.config
    granted = clamp_workers(config.num_workers)
    if granted != config.num_workers and run.traced:
        run.telemetry.event(
            "engine.workers_clamped",
            requested=config.num_workers,
            granted=granted,
        )
    pool = _shared_pool(granted)
    iteration = 0
    while iteration < config.max_iterations:
        run.apply_due_events(iteration)
        segment = run.segment_length(iteration)
        futures = [
            pool.submit(advance_replica_segment, replica, segment)
            for replica in run.replicas
        ]
        outcomes = [future.result() for future in futures]
        logs = [log for _, log in outcomes]
        consumed = _merge_segment(run, iteration, segment, logs)
        if consumed is not None:
            # Convergence fired mid-segment.  The worker replicas have
            # raced the full segment, but the serial loop stops at the
            # convergence round — re-advance the driver's pre-segment
            # replicas exactly ``consumed`` rounds so the carried warm
            # state (thread solutions + RNG end-states) stays
            # byte-identical to the serial engine's.
            for replica in run.replicas:
                for _ in range(consumed):
                    replica.race_round()
            break
        run.replicas = [replica for replica, _ in outcomes]
        _rebind_instance(run.replicas, run.instance)
        iteration += segment
    return run.result()


# ------------------------------------------------------------------ #
# vectorized engine (batched race kernel, distributional)
# ------------------------------------------------------------------ #
class _VectorState:
    """Flattened array mirror of every *racing* solution thread, Γ-wide.

    A thread races when it holds a solution with both selected and
    unselected positions; threads with nothing to swap (e.g. the
    full-cardinality :math:`f_{|I_j|}`) contribute a constant
    ``static_current`` instead.  Rows span **all Γ replicas** in
    replica-major order; each replica's rows additionally scatter into one
    row of a static inf-padded ``(Γ, T_max)`` rectangle, so the per-replica
    minimum-timer reduction is a single row-wise ``argmin`` over the
    rectangle and the whole round — arming, racing, and every replica's
    fire — is one batch of array ops with no per-group Python loop.

    Hot-path layout: per-thread ``sel``/``unsel`` index rows are stored as
    flat arrays together with ``tx``/``half_beta*value`` gather mirrors, so
    one round costs a handful of ``take`` gathers on ``(T,)`` arrays.  The
    cardinalities never change, so the uniform draws for many rounds are
    pre-shaped into index/log-variate blocks at once
    (:meth:`start_block`) — stream-equivalent to per-round draws.
    """

    def __init__(
        self,
        replicas: List[_Replica],
        instance: EpochInstance,
        config,
        retry_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.instance = instance
        self.replicas = replicas
        self.retry_rng = retry_rng
        self.threads: List = []
        self.groups: List[Tuple[int, int]] = []
        static_current = float("-inf")
        for replica in replicas:
            start = len(self.threads)
            for thread in replica.threads:
                if thread.solution is None:
                    continue
                if thread.sel and thread.unsel:
                    self.threads.append(thread)
                else:
                    static_current = max(static_current, thread.solution.utility)
            self.groups.append((start, len(self.threads)))
        self.static_current = static_current
        size = len(self.threads)
        self.size = size
        num_shards = instance.num_shards
        max_sel = max((len(t.sel) for t in self.threads), default=1)
        max_unsel = max((len(t.unsel) for t in self.threads), default=1)
        self.max_sel = max_sel
        self.max_unsel = max_unsel
        self.num_shards = num_shards
        sel = np.zeros((size, max_sel), dtype=np.int64)
        unsel = np.zeros((size, max_unsel), dtype=np.int64)
        self.n_sel = np.zeros(size, dtype=np.int64)
        self.n_unsel = np.zeros(size, dtype=np.int64)
        self.utility = np.zeros(size, dtype=np.float64)
        self.weight = np.zeros(size, dtype=np.int64)
        self.cards = np.zeros(size, dtype=np.int64)
        for row, thread in enumerate(self.threads):
            solution = thread.solution
            sel[row, : len(thread.sel)] = thread.sel
            unsel[row, : len(thread.unsel)] = thread.unsel
            self.n_sel[row] = len(thread.sel)
            self.n_unsel[row] = len(thread.unsel)
            self.utility[row] = solution.utility
            self.weight[row] = solution.weight
            self.cards[row] = thread.cardinality
        self.len_sel = self.n_sel.astype(np.float64)
        self.len_unsel = self.n_unsel.astype(np.float64)
        self.slack = instance.capacity - self.weight
        self.half_beta = 0.5 * config.beta
        self.log_mean_base = config.tau - np.log(self.len_unsel)
        self.pair_tries = config.pair_tries
        # Flat row-major stores plus gather mirrors: tx for the capacity
        # check (const. 4) and half_beta*value for the eq. (8) exponent.
        tx = np.asarray(instance.tx_counts, dtype=np.int64)
        values = np.asarray(instance.values, dtype=np.float64)
        hbv = self.half_beta * values
        self.tx_arr = tx
        self.values_arr = values
        self.hbv_arr = hbv
        self.sel_flat = sel.reshape(-1)
        self.unsel_flat = unsel.reshape(-1)
        self.tx_sel = tx[sel].reshape(-1)
        self.tx_unsel = tx[unsel].reshape(-1)
        self.hbv_sel = hbv[sel].reshape(-1)
        self.hbv_unsel = hbv[unsel].reshape(-1)
        self.rows = np.arange(size)
        self.off_sel = (np.arange(size, dtype=np.int64) * max_sel)
        self.off_unsel = (np.arange(size, dtype=np.int64) * max_unsel)
        self.virtual_times = np.array(
            [replica.virtual_time for replica in replicas], dtype=np.float64
        )
        # Segmented-argmin layout: rows scatter into an inf-padded (Γ, T_max)
        # rectangle at static positions (cardinalities never change between
        # event boundaries), so each replica's minimum armed timer is one
        # row-wise argmin over the rectangle — no per-group Python loop.
        # Slots beyond a group's size are written once and never touched, so
        # the pad buffer needs no per-round re-fill.
        num_groups = len(self.groups)
        self.num_groups = num_groups
        starts = np.array([start for start, _ in self.groups], dtype=np.int64)
        sizes = np.array([end - start for start, end in self.groups], dtype=np.int64)
        self.group_starts = starts
        self.group_sizes = sizes
        pad_width = int(sizes.max()) if size else 1
        self._pad_width = pad_width
        row_group = np.repeat(np.arange(num_groups, dtype=np.int64), sizes)
        self.row_group = row_group
        self._pad_pos = row_group * pad_width + (self.rows - starts[row_group])
        self._padded = np.full(num_groups * pad_width, np.inf)
        self._group_index = np.arange(num_groups)
        # Running current-utility max over racing rows (same incremental
        # rule as _Replica.race_round, rescans only on downhill max fires).
        self.racing_current = float(self.utility.max()) if size else float("-inf")
        # Per-round fire results for the driver (rewritten by race_round).
        self.last_rows = np.empty(0, dtype=np.int64)
        self.last_groups = np.empty(0, dtype=np.int64)
        self.last_pos_out = np.empty(0, dtype=np.int64)
        self.last_pos_in = np.empty(0, dtype=np.int64)
        self.last_utilities = np.empty(0, dtype=np.float64)
        self.last_best_row = -1
        self.last_best_utility = float("-inf")
        self._blk_out: Optional[np.ndarray] = None
        self._blk_in: Optional[np.ndarray] = None
        self._blk_timer_base: Optional[np.ndarray] = None

    # -------------------------------------------------------------- #
    def start_block(self, rng: np.random.Generator, rounds: int) -> None:
        """Draw and pre-shape ``rounds`` rounds of main-stream uniforms.

        Two draws per block: a ``(rounds, T, 2)`` tensor of lane-0
        pair-index uniforms and a ``(rounds, T)`` tensor of Exp(1)
        inversion uniforms (one per thread-round — only the armed lane's
        timer is ever needed).  Rejected rows re-draw from the separate
        retry stream inside :meth:`race_round`, so this block's shape never
        depends on acceptance.
        """
        draws = rng.random((rounds, self.size, 2))
        out = (draws[..., 0] * self.len_sel).astype(np.int64)
        np.minimum(out, self.n_sel - 1, out=out)
        out += self.off_sel
        inn = (draws[..., 1] * self.len_unsel).astype(np.int64)
        np.minimum(inn, self.n_unsel - 1, out=inn)
        inn += self.off_unsel
        self._blk_out = out
        self._blk_in = inn
        exp_draws = rng.random((rounds, self.size))
        # Pre-fold the eq. (8) log-mean base and the Exp(1) inversion so a
        # round's timer is just two gathers and two adds on (T,) arrays.
        self._blk_timer_base = self.log_mean_base + np.log(
            np.maximum(-np.log1p(-exp_draws), 1e-300)
        )

    def race_round(self, block_round: int) -> int:
        """One batched race round across all Γ replicas; returns the fire count.

        Semantics match the scalar Set-timer()/State-Transit pair: each
        thread tries up to ``pair_tries`` uniform swap pairs, arms an
        eq. (8) log-timer on the first capacity-feasible one (const. 4),
        and each replica fires its minimum armed timer.  Fire details land
        in the ``last_*`` arrays for the driver.  Fires across replicas are
        applied as one batch — each replica fires at most one row and the
        flat sel/unsel slots of distinct rows are disjoint, so the
        simultaneous scatter is exactly the sequential application.

        Fast path: the main block only carries lane-0 pairs, so acceptance
        is tested with (T,)-shaped ops; just the rejected rows draw and
        scan their remaining ``pair_tries - 1`` lanes from the retry
        stream.  The lane chosen per thread (first feasible) matches the
        scalar rejection loop's.
        """
        if self.size == 0:
            self.last_rows = self.last_groups = np.empty(0, dtype=np.int64)
            self.last_best_row = -1
            return 0
        flat_out = self._blk_out[block_round]  # (T,) lane-0 pair rows
        flat_in = self._blk_in[block_round]
        timer_base = self._blk_timer_base[block_round]
        rejected = (
            self.tx_unsel.take(flat_in) - self.tx_sel.take(flat_out)
        ) > self.slack
        timers = (
            timer_base
            - self.hbv_unsel.take(flat_in)
            + self.hbv_sel.take(flat_out)
        )
        if rejected.any():
            pend = np.flatnonzero(rejected)
            tries = self.pair_tries - 1
            if tries == 0:
                timers[pend] = np.inf  # single-try budget: rejected rows park
            else:
                if self.retry_rng is None:
                    raise RuntimeError(
                        "race_round needs a retry stream once a lane-0 pair is "
                        "rejected; construct _VectorState with retry_rng"
                    )
                retry = self.retry_rng.random((pend.size, tries, 2))
                sub_out = (retry[..., 0] * self.len_sel[pend, None]).astype(np.int64)
                np.minimum(sub_out, self.n_sel[pend, None] - 1, out=sub_out)
                sub_out += self.off_sel[pend, None]
                sub_in = (retry[..., 1] * self.len_unsel[pend, None]).astype(np.int64)
                np.minimum(sub_in, self.n_unsel[pend, None] - 1, out=sub_in)
                sub_in += self.off_unsel[pend, None]
                accepted = (
                    self.tx_unsel.take(sub_in) - self.tx_sel.take(sub_out)
                ) <= self.slack[pend, None]
                lane = np.argmax(accepted, axis=1)  # first feasible lane
                sub_rows = self.rows[: pend.size]
                pend_out = sub_out[sub_rows, lane]
                pend_in = sub_in[sub_rows, lane]
                flat_out = flat_out.copy()
                flat_in = flat_in.copy()
                flat_out[pend] = pend_out
                flat_in[pend] = pend_in
                timers[pend] = (
                    timer_base.take(pend)
                    - self.hbv_unsel.take(pend_in)
                    + self.hbv_sel.take(pend_out)
                )
                # Parked: no feasible pair within the budget.
                timers[pend[~accepted.any(axis=1)]] = np.inf
        # Segmented per-replica argmin over the static inf-padded rectangle.
        padded = self._padded
        padded[self._pad_pos] = timers
        rect = padded.reshape(self.num_groups, self._pad_width)
        slots = rect.argmin(axis=1)
        win_log = rect[self._group_index, slots]
        # Empty groups / all-parked replicas stay at inf and do not fire.
        groups = np.flatnonzero(np.isfinite(win_log))
        if groups.size == 0:
            self.last_rows = self.last_groups = np.empty(0, dtype=np.int64)
            self.last_best_row = -1
            return 0
        rows = self.group_starts[groups] + slots[groups]
        self.virtual_times[groups] += np.exp(
            np.clip(win_log[groups], LOG_DURATION_MIN, LOG_DURATION_MAX)
        )
        # Batched State Transit over the winning rows.
        f_out = flat_out[rows]
        f_in = flat_in[rows]
        pos_out = self.sel_flat[f_out]  # fancy gather: already copies
        pos_in = self.unsel_flat[f_in]
        self.sel_flat[f_out] = pos_in
        self.unsel_flat[f_in] = pos_out
        tx_in = self.tx_arr[pos_in]
        tx_out = self.tx_arr[pos_out]
        self.tx_sel[f_out] = tx_in
        self.tx_unsel[f_in] = tx_out
        self.hbv_sel[f_out] = self.hbv_arr[pos_in]
        self.hbv_unsel[f_in] = self.hbv_arr[pos_out]
        weight_delta = tx_in - tx_out
        self.weight[rows] += weight_delta
        self.slack[rows] -= weight_delta
        before = self.utility[rows]
        after = before + (self.values_arr[pos_in] - self.values_arr[pos_out])
        self.utility[rows] = after
        # Same incremental current-utility rule as _Replica.race_round,
        # applied to the whole fire batch: a rise can only raise the max; a
        # downgrade of a max-holder forces one rescan.
        top = int(np.argmax(after))
        top_utility = float(after[top])
        if top_utility > self.racing_current:
            self.racing_current = top_utility
        elif np.any((before == self.racing_current) & (after < before)):
            self.racing_current = float(self.utility.max())
        self.last_rows = rows
        self.last_groups = groups
        self.last_pos_out = pos_out
        self.last_pos_in = pos_in
        self.last_utilities = after
        # Rows are replica-major ascending and argmax takes the first max,
        # so this reproduces the serial lowest-replica tie-break.
        self.last_best_row = int(rows[top])
        self.last_best_utility = top_utility
        return int(rows.size)

    def current_utility(self) -> float:
        """Best current utility across racing and static threads."""
        if self.size == 0:
            return self.static_current
        return max(self.static_current, self.racing_current)

    def solution_at(self, row: int) -> Solution:
        """Materialise row ``row`` as a :class:`Solution` (caches carried)."""
        count = int(self.n_sel[row])
        offset = int(self.off_sel[row])
        mask = np.zeros(self.num_shards, dtype=bool)
        mask[self.sel_flat[offset : offset + count]] = True
        return Solution.from_cached(
            self.instance,
            mask.view(np.uint8).tobytes(),
            float(self.utility[row]),
            int(self.weight[row]),
            count,
        )

    def sync_back(self) -> None:
        """Write array state back into the thread objects (event boundaries)."""
        for row, thread in enumerate(self.threads):
            thread.set_solution(self.solution_at(row))
        for group, replica in enumerate(self.replicas):
            replica.virtual_time = float(self.virtual_times[group])
            replica.recompute_current()


def run_vectorized(run: _EngineRun) -> SEResult:
    """Batched single-process race; arrays persist between event boundaries."""
    config = run.config
    telemetry = run.telemetry
    traced = run.traced
    race_rng = run.streams.get("vectorized-race")
    retry_rng = run.streams.get("vectorized-race-retry")
    state: Optional[_VectorState] = None
    iteration = 0
    done = False
    while not done and iteration < config.max_iterations:
        schedule = run.schedule
        if (
            schedule is not None
            and not schedule.exhausted
            and schedule.next_iteration <= iteration
        ):
            if state is not None:
                state.sync_back()
                state = None
            run.apply_due_events(iteration)
        if state is None:
            state = _VectorState(run.replicas, run.instance, config, retry_rng=retry_rng)
        segment = run.segment_length(iteration)
        block_round = 0
        block_rounds = 0
        for round_index in range(iteration, iteration + segment):
            if block_round >= block_rounds:
                remaining = iteration + segment - round_index
                block_rounds = min(remaining, max(1, 65536 // max(1, state.size)))
                state.start_block(race_rng, block_rounds)
                block_round = 0
            transitions = state.race_round(block_round)
            block_round += 1
            if transitions:
                if traced:
                    for k in range(transitions):
                        row = int(state.last_rows[k])
                        telemetry.event(
                            "se.transition",
                            iteration=round_index,
                            replica=int(state.last_groups[k]),
                            cardinality=int(state.cards[row]),
                            swap_out=int(state.last_pos_out[k]),
                            swap_in=int(state.last_pos_in[k]),
                            utility=float(state.last_utilities[k]),
                        )
                if state.last_best_utility > run.best.utility:
                    run.best = state.solution_at(state.last_best_row)
            current = state.current_utility()
            # Replica virtual clocks exist (and carry across events) even
            # when no thread races — an all-parked or swap-less population
            # must report the carried clock, not reset it to zero.
            virtual_time = float(state.virtual_times.max())
            if run.finish_round(round_index, current, virtual_time, transitions):
                done = True
                break
        else:
            iteration += segment
    if state is not None:
        state.sync_back()
    return run.result()


# ------------------------------------------------------------------ #
# dispatch
# ------------------------------------------------------------------ #
def run_engine(
    solver: StochasticExploration,
    instance: EpochInstance,
    schedule: Optional[DynamicSchedule] = None,
    probe: Optional[Callable[..., None]] = None,
    warm: Optional[SEWarmState] = None,
) -> SEResult:
    """Run one SE solve on the engine named by ``solver.config.engine``.

    All engines return an :class:`~repro.core.se.SEResult` whose best
    solution satisfies const. (3) ``count >= N_min`` and const. (4)
    ``weight <= Ĉ``; ``serial`` and ``parallel`` are byte-identical for a
    given ``SEConfig.seed``, ``vectorized`` matches distributionally.
    ``"auto"`` resolves through :func:`select_engine` (machine-independent
    scalar-vs-batched split; ``cpu_count`` only arbitrates within the
    byte-identical scalar family) and logs the decision as an
    ``engine.auto`` telemetry event.

    ``warm`` adopts a prior run's replicas/streams/incumbent before the
    race starts (see :meth:`StochasticExploration.solve`).  All three
    engine families accept warm state: the scalar loops continue the
    carried thread streams, and the batched kernel rebuilds its flat row
    space from the adopted threads so warm rows enter *pre-scored* (their
    incremental utility/weight caches transfer verbatim) while the
    ``vectorized-race`` streams resume mid-sequence.  ``"auto"``
    re-evaluates its split on the *adopted* population each solve, so the
    scalar-vs-batched choice tracks the committee count as it drifts
    across epochs.
    """
    run = _EngineRun(solver, instance, schedule, probe, warm=warm)
    engine = solver.config.engine
    if engine == AUTO_ENGINE:
        racing = count_racing_threads(run.replicas[0])
        engine, reason = select_engine(solver.config, racing, schedule=schedule)
        if run.traced:
            run.telemetry.event(
                "engine.auto",
                engine=engine,
                reason=reason,
                work=solver.config.num_threads * racing,
                racing_threads=racing,
            )
    if engine == "parallel":
        return run_parallel(run)
    if engine == "vectorized":
        return run_vectorized(run)
    return run_serial(run)
