"""Multi-epoch scheduling pipeline with cross-epoch latency carry-over.

Section III (Fig. 3) specifies what happens to committees the final
committee refuses: "if C_i was not permitted in epoch j, its two-phase
latency will be updated by reducing the previous DDL in epoch j+1.  Thus, a
refused committee will be more likely to be permitted with a new smaller
two-phase latency at epoch j+1."

:class:`MultiEpochScheduler` runs any per-epoch scheduler across a sequence
of epochs, implementing exactly that rule: each epoch's candidate set is
the fresh arrivals plus last epoch's refused shards re-entering with
``carry_over_latency`` (they keep their transaction payload -- those TXs
are still unconfirmed).  This is the mechanism that bounds how long any
shard can starve, and the multi-epoch bench measures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.core.problem import EpochInstance, MVComConfig, build_instance, carry_over_latency

#: A per-epoch scheduler: instance -> boolean selection mask.
EpochSchedulerFn = Callable[[EpochInstance], np.ndarray]


@dataclass(frozen=True)
class CarriedShard:
    """A shard queued for (re-)submission, tracking its starvation age."""

    shard_id: int
    tx_count: int
    latency: float
    epochs_waited: int = 0

    @property
    def is_carry_over(self) -> bool:
        """True when this shard was refused in an earlier epoch."""
        return self.epochs_waited > 0


@dataclass
class EpochReport:
    """What one pipeline epoch did."""

    epoch: int
    instance: EpochInstance
    mask: np.ndarray
    utility: float
    throughput_txs: int
    permitted: int
    refused: int
    carried_in: int          # refused shards inherited from the last epoch
    carried_permitted: int   # of which this epoch's schedule admitted
    max_epochs_waited: int


@dataclass
class PipelineResult:
    """Per-epoch reports plus the final unserved backlog."""
    reports: List[EpochReport] = field(default_factory=list)
    leftover: List[CarriedShard] = field(default_factory=list)

    @property
    def total_throughput(self) -> int:
        """Transactions confirmed across all epochs."""
        return sum(report.throughput_txs for report in self.reports)

    @property
    def total_utility(self) -> float:
        """Summed per-epoch utilities."""
        return sum(report.utility for report in self.reports)

    @property
    def worst_starvation(self) -> int:
        """Most epochs any candidate shard has waited."""
        waits = [report.max_epochs_waited for report in self.reports]
        return max(waits) if waits else 0


class MultiEpochScheduler:
    """Drive a per-epoch scheduler across epochs with Fig. 3 carry-over."""

    def __init__(
        self,
        scheduler: EpochSchedulerFn,
        config: MVComConfig,
        latency_floor: float = 1.0,
    ) -> None:
        if latency_floor <= 0:
            raise ValueError("latency_floor must be positive")
        self.scheduler = scheduler
        self.config = config
        self.latency_floor = latency_floor

    def run(self, epochs: Sequence[Sequence], id_offset: int = 1_000_000) -> PipelineResult:
        """Run every epoch; ``epochs[j]`` is that epoch's fresh shard records.

        Fresh records are duck-typed (``shard_id``, ``tx_count``,
        ``latency``).  Carried shards are re-identified with an offset so
        fresh ids never collide across epochs.
        """
        result = PipelineResult()
        carried: List[CarriedShard] = []
        for epoch_index, fresh in enumerate(epochs):
            candidates = [
                CarriedShard(
                    shard_id=id_offset * (epoch_index + 1) + position,
                    tx_count=int(record.tx_count),
                    latency=float(record.latency),
                )
                for position, record in enumerate(fresh)
            ] + carried
            if not candidates:
                continue
            instance = build_instance(candidates, self.config)
            mask = np.asarray(self.scheduler(instance), dtype=bool)
            if mask.shape != (instance.num_shards,):
                raise ValueError("scheduler returned a mask of the wrong length")
            if not instance.is_capacity_feasible(mask):
                raise ValueError("scheduler violated the final-block capacity")

            refused: List[CarriedShard] = []
            carried_permitted = 0
            for position, shard in enumerate(candidates):
                if mask[position]:
                    if shard.is_carry_over:
                        carried_permitted += 1
                    continue
                refused.append(
                    CarriedShard(
                        shard_id=shard.shard_id,
                        tx_count=shard.tx_count,
                        latency=carry_over_latency(
                            shard.latency, instance.ddl, self.latency_floor
                        ),
                        epochs_waited=shard.epochs_waited + 1,
                    )
                )
            result.reports.append(
                EpochReport(
                    epoch=epoch_index,
                    instance=instance,
                    mask=mask,
                    utility=instance.utility(mask),
                    throughput_txs=instance.weight(mask),
                    permitted=int(mask.sum()),
                    refused=len(refused),
                    carried_in=sum(1 for shard in candidates if shard.is_carry_over),
                    carried_permitted=carried_permitted,
                    max_epochs_waited=max(
                        (shard.epochs_waited for shard in candidates), default=0
                    ),
                )
            )
            carried = refused
        result.leftover = carried
        return result
