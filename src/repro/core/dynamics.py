"""Dynamic committee events (Section IV's online handling, Section V failures).

The online SE algorithm "can handle the dynamic joining and leaving events
of member committees" (Alg. 1, lines 9-12).  We model those events as an
iteration-stamped schedule consumed by
:class:`repro.core.se.StochasticExploration`:

* ``JOIN`` -- a new committee's shard arrives at the final committee (used
  for the consecutive-joining experiments of Figs. 9b and 14, and for the
  *recovery* half of Fig. 9a);
* ``LEAVE`` -- a committee fails or goes offline (the failure half of
  Fig. 9a and the Section V analysis); its shard and every solution that
  contains it leave the feasible space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, List, Optional, Sequence, Tuple


class EventKind(Enum):
    """Committee event type: JOIN (arrival/recovery) or LEAVE (failure)."""
    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class CommitteeEvent:
    """One join/leave event, stamped with the SE iteration at which it fires.

    ``tx_count`` and ``latency`` are required for JOIN (the arriving shard's
    features) and ignored for LEAVE.
    """

    iteration: int
    kind: EventKind
    shard_id: int
    tx_count: Optional[int] = None
    latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("event iteration must be non-negative")
        if self.kind is EventKind.JOIN:
            if self.tx_count is None or self.latency is None:
                raise ValueError("JOIN events need tx_count and latency")
            if self.tx_count < 0 or self.latency < 0:
                raise ValueError("JOIN features must be non-negative")


@dataclass
class DynamicSchedule:
    """An ordered multiset of committee events."""

    events: List[CommitteeEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: event.iteration)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[CommitteeEvent]:
        return iter(self.events)

    def reset(self) -> None:
        """Rewind the schedule so a new run replays every event."""
        self._cursor = 0

    def due(self, iteration: int) -> List[CommitteeEvent]:
        """Pop every event scheduled at or before ``iteration``."""
        due_events = []
        while self._cursor < len(self.events) and self.events[self._cursor].iteration <= iteration:
            due_events.append(self.events[self._cursor])
            self._cursor += 1
        return due_events

    @property
    def exhausted(self) -> bool:
        """True once every event has been popped."""
        return self._cursor >= len(self.events)

    @property
    def next_iteration(self) -> Optional[int]:
        """Iteration of the next pending event (None when exhausted)."""
        if self.exhausted:
            return None
        return self.events[self._cursor].iteration


def fail_and_recover_schedule(
    shard_id: int,
    tx_count: int,
    latency: float,
    fail_at: int,
    recover_at: int,
) -> DynamicSchedule:
    """Fig. 9a's scenario: one committee fails, then rejoins later."""
    if recover_at <= fail_at:
        raise ValueError("recovery must happen after the failure")
    return DynamicSchedule(
        events=[
            CommitteeEvent(iteration=fail_at, kind=EventKind.LEAVE, shard_id=shard_id),
            CommitteeEvent(
                iteration=recover_at,
                kind=EventKind.JOIN,
                shard_id=shard_id,
                tx_count=tx_count,
                latency=latency,
            ),
        ]
    )


def consecutive_join_schedule(
    arrivals: Sequence[Tuple[int, int, float]],
    start_iteration: int,
    spacing: int,
) -> DynamicSchedule:
    """Figs. 9b/14's scenario: committees keep arriving, ``spacing`` iterations apart.

    ``arrivals`` is a sequence of ``(shard_id, tx_count, latency)`` tuples in
    arrival order.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    events = [
        CommitteeEvent(
            iteration=start_iteration + rank * spacing,
            kind=EventKind.JOIN,
            shard_id=shard_id,
            tx_count=tx_count,
            latency=latency,
        )
        for rank, (shard_id, tx_count, latency) in enumerate(arrivals)
    ]
    return DynamicSchedule(events=events)
