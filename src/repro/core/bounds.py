"""Scalable upper bounds on the MVCom optimum.

Exact solvers top out around 40 shards; the paper's epochs have 400-800.
These bounds certify large-scale results: an algorithm whose utility is
within x% of an *upper bound* is within x% of the (unknown) optimum.

* :func:`fractional_knapsack_bound` -- the LP relaxation of constraint (4)
  with binary relaxed to [0, 1] (cardinality floor dropped, which can only
  raise the bound): greedy by value density with one fractional item.
* :func:`lagrangian_bound` -- :math:`\\min_{\\mu \\ge 0}\\; \\mu \\hat C +
  \\sum_i (v_i - \\mu s_i)^+`, the Lagrangian dual of the capacity
  constraint, optimised exactly over its piecewise-linear breakpoints.
  Always at least as tight as evaluating at a single multiplier and equals
  the LP bound at the optimal multiplier (LP duality); both are implemented
  so the tests can cross-validate them.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EpochInstance


def fractional_knapsack_bound(instance: EpochInstance) -> float:
    """LP-relaxation upper bound on the epoch utility."""
    values = instance.values.astype(np.float64)
    weights = instance.tx_counts.astype(np.float64)
    density = np.where(weights > 0, values / np.maximum(weights, 1e-12), np.inf)
    order = np.argsort(-density, kind="stable")
    bound = 0.0
    capacity = float(instance.capacity)
    for position in order:
        value = values[position]
        if value <= 0:
            break
        weight = weights[position]
        if weight <= 0:
            bound += value  # weightless positive item: always take
            continue
        if weight <= capacity:
            bound += value
            capacity -= weight
        else:
            bound += value * (capacity / weight)
            break
    return float(bound)


def lagrangian_bound(instance: EpochInstance) -> float:
    """Lagrangian-dual upper bound, minimised over all breakpoints.

    For a fixed multiplier ``mu``, relaxing constraint (4) gives
    ``L(mu) = mu * C + sum_i max(v_i - mu * s_i, 0)`` -- an upper bound for
    every feasible selection.  ``L`` is piecewise linear and convex in
    ``mu`` with breakpoints at ``v_i / s_i``, so the exact minimum is found
    by evaluating every breakpoint (plus mu = 0).
    """
    values = instance.values.astype(np.float64)
    weights = instance.tx_counts.astype(np.float64)
    positive = weights > 0
    breakpoints = np.unique(
        np.concatenate([[0.0], np.maximum(values[positive] / weights[positive], 0.0)])
    )
    capacity = float(instance.capacity)
    best = np.inf
    for mu in breakpoints:
        dual = mu * capacity + np.maximum(values - mu * weights, 0.0).sum()
        best = min(best, float(dual))
    return best


def certify(instance: EpochInstance, achieved_utility: float) -> dict:
    """Certificate record: how close ``achieved_utility`` is to optimal.

    The utility upper bound is the tighter of the fractional-knapsack and
    Lagrangian relaxations of eq. (5) (capacity const. 4 dualised);
    ``gap_fraction`` is therefore an upper bound on the true optimality gap.
    """
    bound = min(fractional_knapsack_bound(instance), lagrangian_bound(instance))
    if bound <= 0:
        gap = 0.0 if achieved_utility >= bound else np.inf
    else:
        gap = max(bound - achieved_utility, 0.0) / bound
    return {
        "upper_bound": bound,
        "achieved": float(achieved_utility),
        "gap_fraction": float(gap),
    }
