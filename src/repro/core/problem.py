"""The MVCom utility-maximisation problem (Section III).

For one epoch ``j`` the final committee observes, for every member committee
``i`` that submitted a shard, two features: the shard's transaction count
:math:`s_i` and the committee's two-phase latency :math:`l_i`.  With the
deadline :math:`t_j = \\max_k l_k` over the arrived set, the cumulative age
of a permitted shard is :math:`\\Pi_i = x_i (t_j - l_i)` (eq. 1) and the
epoch utility is

.. math:: U = \\sum_i (\\alpha\\, x_i s_i - \\Pi_i)

subject to :math:`\\sum_i x_i \\ge N_{min}` (const. 3) and
:math:`\\sum_i x_i s_i \\le \\hat C` (const. 4).

Because :math:`t_j` is fixed once the arrived set is known, the utility is
*separable*: each shard carries a value :math:`v_i = \\alpha s_i - (t_j -
l_i)` and :math:`U(f) = \\sum_{i \\in f} v_i`.  :class:`EpochInstance`
precomputes these values; everything downstream (SE, baselines, exact
solvers) runs on top of them.

A note on constraint interplay (documented in DESIGN.md): with the paper's
parameters (:math:`N_{min} = 50\\%\\,|I_j|`, :math:`\\hat C = 1000|I_j|`,
mean shard size ~3000 TXs) constraints (3) and (4) can be mutually
unsatisfiable.  We resolve this the only consistent way: the *effective*
minimum count is ``min(N_min, n_cap)`` where ``n_cap`` is the largest
cardinality whose lightest shards fit in :math:`\\hat C`; the instance
records whether the relaxation was applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.contracts import sane_instance

#: Paper defaults (Section VI-A).
DEFAULT_ALPHA = 1.5
DEFAULT_BETA = 2.0
DEFAULT_TAU = 0.0
DEFAULT_NMIN_FRACTION = 0.5
DEFAULT_NMAX_FRACTION = 0.8


@dataclass(frozen=True)
class MVComConfig:
    """Problem-level parameters shared across epochs.

    Parameters
    ----------
    alpha:
        Weight of the throughput term (paper sweeps 1.5 / 5 / 10).
    capacity:
        :math:`\\hat C`, maximum TXs in the final block per epoch.
    n_min_fraction:
        :math:`N_{min}` as a fraction of the number of arrived committees
        (paper: 50%).
    n_max_fraction:
        :math:`N_{max}`, the fraction of member committees after which the
        final committee stops listening for new arrivals (paper: 80%).
    """

    alpha: float = DEFAULT_ALPHA
    capacity: int = 500_000
    n_min_fraction: float = DEFAULT_NMIN_FRACTION
    n_max_fraction: float = DEFAULT_NMAX_FRACTION

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= self.n_min_fraction <= 1.0:
            raise ValueError("n_min_fraction must lie in [0, 1]")
        if not 0.0 < self.n_max_fraction <= 1.0:
            raise ValueError("n_max_fraction must lie in (0, 1]")


class EpochInstance:
    """One epoch's scheduling instance.

    Attributes
    ----------
    shard_ids:
        Stable identifiers of the arrived shards (committee ids).  Indices
        into the arrays below are *positions*, which change when committees
        join or leave; ids do not.
    tx_counts:
        :math:`s_i` per shard (int64 array).
    latencies:
        Two-phase latency :math:`l_i` per shard (float64 array, seconds).
    ddl:
        :math:`t_j = \\max_i l_i` over the arrived set, unless an explicit
        deadline was supplied.
    values:
        Separable utility contribution :math:`v_i = \\alpha s_i - (t_j - l_i)`.
    """

    def __init__(
        self,
        tx_counts: Sequence[int],
        latencies: Sequence[float],
        config: MVComConfig,
        shard_ids: Optional[Sequence[int]] = None,
        ddl: Optional[float] = None,
    ) -> None:
        self.tx_counts = np.asarray(tx_counts, dtype=np.int64)
        self.latencies = np.asarray(latencies, dtype=np.float64)
        if self.tx_counts.shape != self.latencies.shape:
            raise ValueError("tx_counts and latencies must have equal length")
        if self.tx_counts.ndim != 1:
            raise ValueError("expected 1-D shard arrays")
        if len(self.tx_counts) == 0:
            raise ValueError("an epoch instance needs at least one shard")
        if (self.tx_counts < 0).any():
            raise ValueError("tx counts must be non-negative")
        if (self.latencies < 0).any():
            raise ValueError("latencies must be non-negative")

        self.config = config
        if shard_ids is None:
            shard_ids = range(len(self.tx_counts))
        self.shard_ids = tuple(int(s) for s in shard_ids)
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ValueError("shard ids must be unique")

        self.ddl = float(self.latencies.max()) if ddl is None else float(ddl)
        if self.ddl < self.latencies.max() - 1e-9:
            raise ValueError("ddl must cover the slowest arrived shard")

        self.ages = self.ddl - self.latencies  # cumulative age if permitted
        self.values = config.alpha * self.tx_counts - self.ages

        self._n_cap = self._capacity_cardinality()
        requested_n_min = int(np.ceil(config.n_min_fraction * self.num_shards))
        self.n_min = min(requested_n_min, self._n_cap)
        #: True when const. (3) had to be relaxed to keep the instance feasible.
        self.n_min_relaxed = self.n_min < requested_n_min

        # Plain-list mirrors for scalar-indexing hot paths (numpy scalar
        # indexing costs ~10x a list index; the SE race reads these tens of
        # millions of times).
        self.tx_counts_list = self.tx_counts.tolist()
        self.values_list = self.values.tolist()

    # ------------------------------------------------------------------ #
    # basic shape
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of arrived shards."""
        return len(self.tx_counts)

    @property
    def capacity(self) -> int:
        """Final-block TX capacity (const. 4)."""
        return self.config.capacity

    @property
    def alpha(self) -> float:
        """Throughput weight of the utility."""
        return self.config.alpha

    @property
    def max_feasible_cardinality(self) -> int:
        """Largest n such that the n lightest shards fit in the capacity."""
        return self._n_cap

    def _capacity_cardinality(self) -> int:
        ordered = np.sort(self.tx_counts)
        prefix = np.cumsum(ordered)
        return int(np.searchsorted(prefix, self.capacity, side="right"))

    # ------------------------------------------------------------------ #
    # objective pieces (eq. 1-2)
    # ------------------------------------------------------------------ #
    def utility(self, mask: np.ndarray) -> float:
        """:math:`U(f) = \\sum_{i \\in f} v_i` for a boolean selection mask."""
        mask = self._check_mask(mask)
        return float(self.values[mask].sum())

    def weight(self, mask: np.ndarray) -> int:
        """Total TXs packed, :math:`\\sum_i x_i s_i`."""
        mask = self._check_mask(mask)
        return int(self.tx_counts[mask].sum())

    def cumulative_age(self, mask: np.ndarray) -> float:
        """:math:`\\sum_i \\Pi_i` for the selection (eq. 1)."""
        mask = self._check_mask(mask)
        return float(self.ages[mask].sum())

    def throughput(self, mask: np.ndarray) -> int:
        """Alias for :meth:`weight`: the number of TXs in the final block."""
        return self.weight(mask)

    def is_capacity_feasible(self, mask: np.ndarray) -> bool:
        """Check constraint (4) only."""
        return self.weight(mask) <= self.capacity

    def is_feasible(self, mask: np.ndarray) -> bool:
        """Check constraints (3) and (4)."""
        mask = self._check_mask(mask)
        return bool(mask.sum() >= self.n_min) and self.is_capacity_feasible(mask)

    def _check_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.tx_counts.shape:
            raise ValueError(
                f"mask of length {mask.shape} does not match {self.num_shards} shards"
            )
        return mask

    # ------------------------------------------------------------------ #
    # dynamics support
    # ------------------------------------------------------------------ #
    def position_of(self, shard_id: int) -> int:
        """Index of a shard id (raises ``KeyError`` for unknown ids)."""
        try:
            return self.shard_ids.index(shard_id)
        except ValueError:
            raise KeyError(f"shard id {shard_id} not in instance") from None

    def without(self, shard_id: int) -> "EpochInstance":
        """A new instance with one committee removed (leave/failure).

        N_min and the capacity cardinality re-derive from the smaller
        arrived set; the DDL is inherited (the slowest remaining shard
        still bounds it), so existing values v_i stay comparable.
        """
        position = self.position_of(shard_id)
        keep = np.ones(self.num_shards, dtype=bool)
        keep[position] = False
        if not keep.any():
            raise ValueError("cannot remove the last shard")
        return EpochInstance(
            tx_counts=self.tx_counts[keep],
            latencies=self.latencies[keep],
            config=self.config,
            shard_ids=[sid for sid in self.shard_ids if sid != shard_id],
        )

    def with_shard(self, shard_id: int, tx_count: int, latency: float) -> "EpochInstance":
        """A new instance with one committee added (join/recovery).

        The DDL re-evaluates to the new maximum latency, so every existing
        shard's age (and value) shifts -- exactly the behaviour of eq. (1)
        when a straggler arrives.
        """
        if shard_id in self.shard_ids:
            raise ValueError(f"shard id {shard_id} already present")
        return EpochInstance(
            tx_counts=np.append(self.tx_counts, int(tx_count)),
            latencies=np.append(self.latencies, float(latency)),
            config=self.config,
            shard_ids=list(self.shard_ids) + [int(shard_id)],
        )

    def carry_over_latency(self, shard_id: int, floor: float = 1.0) -> float:
        """Fig. 3 carry-over for a shard of *this* instance.

        See the module-level :func:`carry_over_latency` for the general rule
        (which also covers committees refused before arrival).
        """
        position = self.position_of(shard_id)
        return carry_over_latency(self.latencies[position], self.ddl, floor)

    def __repr__(self) -> str:
        return (
            f"EpochInstance(n={self.num_shards}, capacity={self.capacity}, "
            f"alpha={self.alpha}, n_min={self.n_min}, ddl={self.ddl:.1f}s)"
        )


def carry_over_latency(latency: float, previous_ddl: float, floor: float = 1.0) -> float:
    """Latency a refused committee carries into the next epoch (Fig. 3).

    "If C_i was not permitted in epoch j, its two-phase latency will be
    updated by reducing the previous DDL in epoch j+1" -- so a straggler
    refused at epoch j re-enters epoch j+1 with ``l_i - t_j`` (it has been
    working all along); committees that finished before the DDL carry the
    ``floor``.
    """
    if floor <= 0:
        raise ValueError("floor must be positive")
    return max(float(latency) - float(previous_ddl), floor)


@sane_instance
def build_instance(
    shards,
    config: MVComConfig,
    ddl: Optional[float] = None,
) -> EpochInstance:
    """Build an :class:`EpochInstance` from ``ShardRecord``-like objects.

    Accepts any sequence of objects exposing ``shard_id``, ``tx_count``
    (:math:`s_i`, TXs) and ``latency`` (:math:`l_i`, seconds) — duck-typed
    so :mod:`repro.data` and :mod:`repro.chain` can both feed the core
    without import cycles.  N_min/Ĉ gating comes from ``config``.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("cannot build an instance from zero shards")
    return EpochInstance(
        tx_counts=[shard.tx_count for shard in shards],
        latencies=[shard.latency for shard in shards],
        config=config,
        shard_ids=[shard.shard_id for shard in shards],
        ddl=ddl,
    )
