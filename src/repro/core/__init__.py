"""MVCom core: the paper's primary contribution.

* :mod:`repro.core.problem` -- the MVCom utility-maximisation problem
  (Section III): epochs, shards, DDL, cumulative age, constraints.
* :mod:`repro.core.solution` -- incremental solution representation.
* :mod:`repro.core.logsumexp` -- log-sum-exp approximation (Section IV-B).
* :mod:`repro.core.markov` -- the designed Markov chain, exact verification
  of detailed balance / irreducibility, Theorem 1 mixing-time bounds.
* :mod:`repro.core.timers` -- exponential timer sampling (eq. 8), log-space.
* :mod:`repro.core.se` -- the online distributed Stochastic-Exploration
  algorithm (Algs. 1-3, Section IV-D).
* :mod:`repro.core.engine` -- pluggable SE execution engines: serial
  reference, byte-identical process-pool parallel, vectorized kernel.
* :mod:`repro.core.dynamics` -- committee join/leave/failure event handling.
* :mod:`repro.core.failure` -- Section V analysis (Lemma 4, Theorem 2).
* :mod:`repro.core.exact` -- exact solvers used as ground truth in tests.
"""

from repro.core.problem import EpochInstance, MVComConfig, build_instance
from repro.core.solution import Solution
from repro.core.se import SEConfig, SEResult, StochasticExploration
from repro.core.dynamics import CommitteeEvent, DynamicSchedule, EventKind
from repro.core.exact import branch_and_bound_optimum, brute_force_optimum
from repro.core.bounds import certify, fractional_knapsack_bound, lagrangian_bound
from repro.core.pipeline import MultiEpochScheduler, PipelineResult
from repro.core.ddl import BudgetedAge, DdlPolicy, FixedTimeout, PercentileArrival

__all__ = [
    "EpochInstance",
    "MVComConfig",
    "build_instance",
    "Solution",
    "SEConfig",
    "SEResult",
    "StochasticExploration",
    "CommitteeEvent",
    "DynamicSchedule",
    "EventKind",
    "brute_force_optimum",
    "branch_and_bound_optimum",
    "certify",
    "fractional_knapsack_bound",
    "lagrangian_bound",
    "MultiEpochScheduler",
    "PipelineResult",
    "BudgetedAge",
    "DdlPolicy",
    "FixedTimeout",
    "PercentileArrival",
]
