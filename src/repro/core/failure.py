"""Committee-failure analysis (Section V, Lemma 4, Theorem 2).

When a committee fails, every feasible solution containing it becomes
invalid; the solution space :math:`\\mathcal F` (size :math:`2^{|I_j|}`)
shrinks to the trimmed space :math:`\\mathcal G` (size
:math:`2^{|I_j|-1}`).  The paper shows:

* **Lemma 4** -- the total-variation distance between the trimmed chain's
  stationary distribution :math:`q^*` and the instantaneous distribution
  :math:`\\tilde q` at the failure moment is at most :math:`1/2`, with the
  i.i.d.-utilities argument giving exactly :math:`|\\mathcal F \\setminus
  \\mathcal G| / |\\mathcal F| = 1/2` in the large-space limit.
* **Theorem 2** -- the utility perturbation
  :math:`\\|q^* u^T - \\tilde q u^T\\|` is at most
  :math:`\\max_{g \\in \\mathcal G} U_g`.

This module computes both sides exactly by enumeration on small instances,
so the bounds can be *tested*, and provides the closed-form combinatorics
for any size.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.logsumexp import stationary_distribution
from repro.core.problem import EpochInstance


@dataclass(frozen=True)
class SpaceSizes:
    """Solution-space combinatorics before/after one committee fails."""

    full: int      # |F| = 2^N
    trimmed: int   # |G| = 2^(N-1)
    removed: int   # |F \ G| = 2^(N-1)

    @property
    def removed_fraction(self) -> float:
        """Lemma 4's |F\\G| / |F|, which equals 1/2 for a single failure."""
        return self.removed / self.full


def space_sizes(num_committees: int) -> SpaceSizes:
    """Closed-form sizes used throughout Section V."""
    if num_committees < 1:
        raise ValueError("need at least one committee")
    full = 2**num_committees
    trimmed = 2 ** (num_committees - 1)
    return SpaceSizes(full=full, trimmed=trimmed, removed=full - trimmed)


def tv_distance_bound() -> float:
    """Lemma 4's universal bound."""
    return 0.5


def _enumerate_space(instance: EpochInstance) -> Tuple[List[Tuple[int, ...]], np.ndarray]:
    """All subsets of the instance's shards with their utilities.

    Section V works over the unconstrained power set (the trimming argument
    is purely combinatorial), so no capacity filter is applied here.
    """
    if instance.num_shards > 16:
        raise ValueError("exact failure analysis is enumeration-based; use <= 16 shards")
    states = []
    utilities = []
    for size in range(instance.num_shards + 1):
        for combo in itertools.combinations(range(instance.num_shards), size):
            states.append(combo)
            utilities.append(float(instance.values[list(combo)].sum()))
    return states, np.asarray(utilities)


@dataclass(frozen=True)
class FailureAnalysis:
    """Exact Lemma 4 / Theorem 2 quantities for one failing committee.

    Two related distances are reported because the paper's proof conflates
    them (its eq. 18 equates :math:`\\frac12\\sum|q^*-\\tilde q|` with
    :math:`\\sum_{g^o}(q^*-\\tilde q)`, which only coincide for two proper
    distributions, and :math:`\\tilde q` is a sub-distribution):

    * ``tv_distance`` -- the literal :math:`\\frac12\\sum_{g\\in G}|q^*_g -
      \\tilde q_g|`.  Because :math:`q^* \\ge \\tilde q` pointwise, this is
      :math:`\\frac12(1 - \\sum \\tilde q) \\le \\frac12` **unconditionally**
      -- Lemma 4's bound holds rigorously under this reading.
    * ``stranded_mass`` -- :math:`1 - \\sum_{g\\in G}\\tilde q_g`, the Gibbs
      mass the failure strands on removed solutions.  This is the quantity
      the paper's law-of-large-numbers argument evaluates to
      :math:`|\\mathcal F\\setminus\\mathcal G| / |\\mathcal F| = 1/2`; it
      approaches exactly 1/2 as :math:`\\beta \\to 0` but can exceed 1/2
      when :math:`\\beta` is sharp and the failed committee belongs to the
      top solutions (the i.i.d./LLN step of the proof is a small-β
      approximation -- see EXPERIMENTS.md).
    """

    tv_distance: float            # (1/2) sum |q* - q~| over survivors
    stranded_mass: float          # 1 - sum(q~) = Gibbs mass on removed states
    tv_bound: float               # 1/2
    utility_perturbation: float   # |q* u^T - q~ u^T|
    perturbation_bound: float     # max_g U_g (Theorem 2)
    trimmed_best_utility: float   # \tilde U_max
    trimmed_worst_utility: float  # \tilde U_min

    @property
    def tv_within_bound(self) -> bool:
        """Lemma 4's check: TV distance at most 1/2."""
        return self.tv_distance <= self.tv_bound + 1e-12

    @property
    def perturbation_within_bound(self) -> bool:
        """Theorem 2's check: perturbation at most max_g U_g."""
        return self.utility_perturbation <= self.perturbation_bound + 1e-9


def analyze_failure(instance: EpochInstance, failed_position: int, beta: float) -> FailureAnalysis:
    """Exact perturbation analysis when the committee at ``failed_position`` fails.

    Follows the proof of Lemma 4:

    * ``q*`` is the Gibbs distribution restricted to (and renormalised over)
      the surviving states ``G`` (eq. 15);
    * ``q~`` is the original Gibbs distribution's mass on ``G`` **without**
      renormalising (eq. 16) plus, implicitly, the mass stranded on removed
      states.  Following the paper, the comparison sums over ``g in G``.
    """
    if not 0 <= failed_position < instance.num_shards:
        raise ValueError("failed_position out of range")
    states, utilities = _enumerate_space(instance)
    full_distribution = stationary_distribution(beta, utilities)

    survivor_mask = np.array(
        [failed_position not in state for state in states], dtype=bool
    )
    survivor_utilities = utilities[survivor_mask]

    trimmed_stationary = stationary_distribution(beta, survivor_utilities)  # eq. 15
    instant = full_distribution[survivor_mask]                              # eq. 16

    tv = 0.5 * float(np.abs(trimmed_stationary - instant).sum())
    perturbation = abs(
        float(trimmed_stationary @ survivor_utilities) - float(instant @ survivor_utilities)
    )
    trimmed_best = float(survivor_utilities.max())
    return FailureAnalysis(
        tv_distance=tv,
        stranded_mass=float(1.0 - instant.sum()),
        tv_bound=tv_distance_bound(),
        utility_perturbation=perturbation,
        perturbation_bound=max(trimmed_best, 0.0),
        trimmed_best_utility=trimmed_best,
        trimmed_worst_utility=float(survivor_utilities.min()),
    )


def trimmed_mixing_parameters(num_committees: int) -> dict:
    """Remark 3's updated Theorem 1 parameters after one failure."""
    sizes = space_sizes(num_committees)
    return {
        "eta": sizes.trimmed,                 # 2^(N-1) surviving states
        "num_shards": num_committees - 1,     # chain now walks N-1 committees
        "log2_eta": float(math.log2(sizes.trimmed)),
    }
