"""Storm execution: run, classify, shrink, serialise, replay.

:func:`run_storm` batters one SE solve with a generated (or replayed) event
schedule under armed invariants and classifies the outcome:

* ``"survived"`` — the run completed and every armed invariant held;
* ``"violated"`` — an armed invariant raised
  :class:`repro.faultinject.invariants.StormInvariantViolation`;
* ``"infeasible"`` — the storm legitimately emptied the epoch
  (:class:`repro.core.se.InfeasibleEpochError`), which is *graceful
  degradation*, not a bug: an epoch with no committees has nothing to
  schedule.

A violated outcome shrinks (:func:`shrink_storm`) to a 1-minimal schedule
with the same failure signature and serialises as a replayable JSON
reproducer — :func:`replay_reproducer` reruns it bit-for-bit from the
stored seed, so a CI artifact is a complete bug report.

:func:`run_epoch_storm` runs the same storms *through the chain epoch
loop* (:class:`repro.core.pipeline.MultiEpochScheduler`): each epoch's SE
solve faces its own storm slice, and the surviving selection is projected
back onto the pipeline's candidate set by stable shard id (committees that
joined mid-storm are unknown to the pipeline and drop out; committees that
left are simply refused and carry over per Fig. 3).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dynamics import CommitteeEvent, DynamicSchedule, EventKind
from repro.core.pipeline import MultiEpochScheduler, PipelineResult
from repro.core.problem import EpochInstance
from repro.core.se import InfeasibleEpochError, SEConfig, SEResult, StochasticExploration
from repro.data.workload import (
    WorkloadConfig,
    arrived_shards,
    generate_epoch_workload,
    multi_epoch_workloads,
)
from repro.faultinject.invariants import (
    DEFAULT_INVARIANTS,
    StormInvariantViolation,
    StormProbe,
    check_trace_monotone,
)
from repro.faultinject.shrink import shrink_events
from repro.faultinject.storm import StormConfig, generate_storm
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry
from repro.sim.rng import RandomStreams, derive_seed

#: What :func:`run_storm` arms when the caller does not choose: the
#: event-boundary invariants plus the post-hoc trace check.
DEFAULT_ARMED = DEFAULT_INVARIANTS + ("trace-monotone",)

#: On-disk format tag for reproducer files.
REPRODUCER_FORMAT = "mvcom-storm-reproducer-v1"


@dataclass
class StormOutcome:
    """One storm run, classified."""

    status: str  # "survived" | "violated" | "infeasible"
    config: StormConfig
    armed: Tuple[str, ...]
    events: List[CommitteeEvent]
    result: Optional[SEResult] = None
    violation: Optional[StormInvariantViolation] = None
    infeasible_reason: Optional[str] = None
    boundaries: List[int] = field(default_factory=list)
    checks_run: int = 0
    theorem2_checked: int = 0

    @property
    def survived(self) -> bool:
        """True when the run completed with every armed invariant intact."""
        return self.status == "survived"

    @property
    def signature(self) -> Optional[str]:
        """The violated invariant's name (None unless status is violated)."""
        return self.violation.invariant if self.violation is not None else None


def storm_workload_config(config: StormConfig) -> WorkloadConfig:
    """The workload a storm batters (paper trace, storm-sized).

    ``capacity=None`` applies the paper's scaling :math:`\\hat C = 1000\\,
    |I_j|` (Section VI-A) so storm instances stay properly oversubscribed at
    any committee count.
    """
    capacity = config.capacity if config.capacity is not None else 1_000 * config.num_committees
    return WorkloadConfig(
        num_committees=config.num_committees,
        capacity=capacity,
        alpha=config.alpha,
        seed=config.seed,
    )


def build_storm_instance(config: StormConfig) -> EpochInstance:
    """The bootstrap epoch instance for one storm run."""
    return generate_epoch_workload(storm_workload_config(config)).instance


def _solver(
    config: StormConfig,
    telemetry: NullTelemetry,
    seed: Optional[int] = None,
    engine: str = "serial",
    num_workers: int = 4,
) -> StochasticExploration:
    se_config = SEConfig(
        num_threads=config.gamma,
        max_iterations=config.max_iterations,
        convergence_window=config.convergence_window,
        seed=config.seed if seed is None else seed,
        engine=engine,
        num_workers=num_workers,
    )
    return StochasticExploration(se_config, telemetry=telemetry)


def run_storm(
    config: StormConfig,
    events: Optional[Sequence[CommitteeEvent]] = None,
    armed: Optional[Sequence[str]] = None,
    telemetry: NullTelemetry = NULL_TELEMETRY,
    engine: str = "serial",
    num_workers: int = 4,
) -> StormOutcome:
    """Run one storm against one SE solve and classify the outcome.

    Deterministic given ``config`` (and ``events`` when replaying): the
    instance, the event schedule and the solver all derive from
    ``config.seed`` through named streams, so one seed is one storm
    forever — the property the replay / shrink machinery builds on.
    ``engine="parallel"`` runs the same storm byte-identically across a
    process pool (probes still fire on the driver at event boundaries);
    see :mod:`repro.core.engine`.
    """
    armed = tuple(armed) if armed is not None else DEFAULT_ARMED
    instance = build_storm_instance(config)
    if events is None:
        events = generate_storm(instance, config, RandomStreams(config.seed))
    events = list(events)

    solver = _solver(config, telemetry, engine=engine, num_workers=num_workers)
    probe = StormProbe(solver, instance, armed=armed, telemetry=telemetry)
    schedule = DynamicSchedule(events=list(events))

    outcome = StormOutcome(status="survived", config=config, armed=armed, events=events)
    try:
        result = solver.solve(instance, schedule=schedule, probe=probe)
        if "trace-monotone" in armed:
            check_trace_monotone(result.utility_trace, probe.boundaries)
        outcome.result = result
    except StormInvariantViolation as violation:
        outcome.status = "violated"
        outcome.violation = violation
    except InfeasibleEpochError as exc:
        outcome.status = "infeasible"
        outcome.infeasible_reason = str(exc)
    outcome.boundaries = list(probe.boundaries)
    outcome.checks_run = probe.checks_run
    outcome.theorem2_checked = probe.theorem2_checked

    if telemetry.enabled:
        telemetry.event(
            "storm.run",
            status=outcome.status,
            seed=config.seed,
            events=len(events),
            boundaries=len(outcome.boundaries),
            checks_run=outcome.checks_run,
            theorem2_checked=outcome.theorem2_checked,
            invariant=outcome.signature,
            iterations=outcome.result.iterations if outcome.result else None,
        )
    return outcome


def shrink_storm(
    outcome: StormOutcome,
    max_probes: int = 10_000,
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> Tuple[List[CommitteeEvent], int]:
    """Shrink a violated outcome's schedule to a 1-minimal reproducer.

    The oracle replays each candidate through :func:`run_storm` (same
    config, same armed set) and matches on the failure *signature* — the
    violated invariant's name — because event deletion shifts boundary
    iterations without changing which contract breaks.
    """
    if outcome.status != "violated" or outcome.violation is None:
        raise ValueError("only violated outcomes can be shrunk")
    signature = outcome.violation.invariant

    def still_fails(candidate: List[CommitteeEvent]) -> bool:
        replayed = run_storm(outcome.config, events=candidate, armed=outcome.armed)
        return replayed.status == "violated" and replayed.signature == signature

    minimal, probes = shrink_events(outcome.events, still_fails, max_probes=max_probes)
    if telemetry.enabled:
        telemetry.event(
            "storm.shrink",
            invariant=signature,
            events_before=len(outcome.events),
            events_after=len(minimal),
            probes=probes,
        )
    return minimal, probes


# ---------------------------------------------------------------------- #
# reproducer serialisation
# ---------------------------------------------------------------------- #
def event_to_json(event: CommitteeEvent) -> Dict:
    """One event as a JSON-safe dict (kind stored by enum value)."""
    payload: Dict = {
        "iteration": int(event.iteration),
        "kind": event.kind.value,
        "shard_id": int(event.shard_id),
    }
    if event.kind is EventKind.JOIN:
        payload["tx_count"] = int(event.tx_count)
        payload["latency"] = float(event.latency)
    return payload


def event_from_json(payload: Dict) -> CommitteeEvent:
    """Inverse of :func:`event_to_json`."""
    return CommitteeEvent(
        iteration=int(payload["iteration"]),
        kind=EventKind(payload["kind"]),
        shard_id=int(payload["shard_id"]),
        tx_count=payload.get("tx_count"),
        latency=payload.get("latency"),
    )


def make_reproducer(
    outcome: StormOutcome,
    events: Optional[Sequence[CommitteeEvent]] = None,
) -> Dict:
    """A replayable JSON document for a violated outcome.

    ``events`` defaults to the outcome's full schedule; pass the shrunk
    list to store the minimal reproducer instead.
    """
    if outcome.violation is None:
        raise ValueError("a reproducer records a violation; this outcome has none")
    chosen = list(events if events is not None else outcome.events)
    return {
        "format": REPRODUCER_FORMAT,
        "config": asdict(outcome.config),
        "armed": list(outcome.armed),
        "failure": {
            "invariant": outcome.violation.invariant,
            "iteration": outcome.violation.iteration,
            "message": str(outcome.violation),
        },
        "events": [event_to_json(event) for event in chosen],
    }


def save_reproducer(path: str, reproducer: Dict) -> None:
    """Write a reproducer deterministically (sorted keys, stable floats)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(reproducer, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_reproducer(path: str) -> Dict:
    """Read a reproducer, validating the format tag."""
    with open(path, "r", encoding="utf-8") as handle:
        reproducer = json.load(handle)
    if reproducer.get("format") != REPRODUCER_FORMAT:
        raise ValueError(
            f"{path} is not a {REPRODUCER_FORMAT} file "
            f"(format={reproducer.get('format')!r})"
        )
    return reproducer


def replay_reproducer(
    reproducer: Dict,
    telemetry: NullTelemetry = NULL_TELEMETRY,
    engine: str = "serial",
    num_workers: int = 4,
) -> StormOutcome:
    """Re-run a stored reproducer exactly (same seed, same events, same arms).

    ``engine`` selects the SE execution engine; the parallel engine is
    byte-identical to serial, so a reproducer replays to the same outcome
    on either.  Storms deliberately default to ``serial`` rather than
    ``auto``: a reproducer must replay byte-for-byte on any machine, and
    ``auto`` may route large instances to the distributional batched
    kernel.
    """
    config = StormConfig(**reproducer["config"])
    events = [event_from_json(payload) for payload in reproducer["events"]]
    return run_storm(
        config,
        events=events,
        armed=tuple(reproducer["armed"]),
        telemetry=telemetry,
        engine=engine,
        num_workers=num_workers,
    )


# ---------------------------------------------------------------------- #
# the chain epoch loop under storms
# ---------------------------------------------------------------------- #
@dataclass
class EpochStormOutcome:
    """A multi-epoch pipeline run where every epoch faced its own storm."""

    status: str  # "survived" | "violated" | "infeasible"
    config: StormConfig
    pipeline: Optional[PipelineResult] = None
    epoch_outcomes: List[StormOutcome] = field(default_factory=list)
    violation: Optional[StormInvariantViolation] = None
    infeasible_reason: Optional[str] = None

    @property
    def survived(self) -> bool:
        """True when every epoch's storm passed its armed invariants."""
        return self.status == "survived"


def run_epoch_storm(
    config: StormConfig,
    armed: Optional[Sequence[str]] = None,
    telemetry: NullTelemetry = NULL_TELEMETRY,
    engine: str = "serial",
    num_workers: int = 4,
) -> EpochStormOutcome:
    """Drive :class:`MultiEpochScheduler` with a storm inside every epoch.

    Each epoch's scheduler call runs a full SE solve under that epoch's
    slice of the storm (fresh seed derivation per epoch, so epochs are
    independent streams).  The SE result's selection lives on the storm's
    *final* instance — which has diverged from the pipeline's candidate set
    through joins and leaves — so it is projected back by stable shard id:
    mid-storm joiners are invisible to the pipeline and drop; leavers are
    refused and re-enter next epoch via Fig. 3 carry-over.
    """
    armed = tuple(armed) if armed is not None else DEFAULT_ARMED
    workload = storm_workload_config(config)
    workloads = multi_epoch_workloads(workload, config.epochs)
    fresh_per_epoch = [
        arrived_shards(epoch_workload.shards, workload.n_max_fraction)
        for epoch_workload in workloads
    ]

    outcome = EpochStormOutcome(status="survived", config=config)
    epoch_cursor = {"epoch": 0}

    def storm_scheduler(instance: EpochInstance) -> np.ndarray:
        epoch = epoch_cursor["epoch"]
        epoch_cursor["epoch"] += 1
        epoch_config = config.per_epoch(epoch)
        epoch_seed = derive_seed(config.seed, f"storm-epoch-{epoch}")
        events = generate_storm(instance, epoch_config, RandomStreams(epoch_seed))
        solver = _solver(
            epoch_config, telemetry, seed=epoch_seed, engine=engine, num_workers=num_workers
        )
        probe = StormProbe(solver, instance, armed=armed, telemetry=telemetry)
        result = solver.solve(instance, DynamicSchedule(events=list(events)), probe=probe)
        if "trace-monotone" in armed:
            check_trace_monotone(result.utility_trace, probe.boundaries)
        outcome.epoch_outcomes.append(
            StormOutcome(
                status="survived",
                config=epoch_config,
                armed=armed,
                events=list(events),
                result=result,
                boundaries=list(probe.boundaries),
                checks_run=probe.checks_run,
                theorem2_checked=probe.theorem2_checked,
            )
        )
        if telemetry.enabled:
            telemetry.event(
                "storm.epoch",
                epoch=epoch,
                events=len(events),
                boundaries=len(probe.boundaries),
                iterations=result.iterations,
                best_utility=result.best_utility,
            )
        final = result.final_instance
        selected = {
            shard_id
            for shard_id, chosen in zip(final.shard_ids, result.best_mask)
            if chosen
        }
        return np.array([sid in selected for sid in instance.shard_ids], dtype=bool)

    pipeline = MultiEpochScheduler(storm_scheduler, workload.mvcom_config())
    try:
        outcome.pipeline = pipeline.run(fresh_per_epoch)
    except StormInvariantViolation as violation:
        outcome.status = "violated"
        outcome.violation = violation
    except InfeasibleEpochError as exc:
        outcome.status = "infeasible"
        outcome.infeasible_reason = str(exc)

    if telemetry.enabled:
        telemetry.event(
            "storm.pipeline",
            status=outcome.status,
            epochs=len(outcome.epoch_outcomes),
            total_throughput=outcome.pipeline.total_throughput if outcome.pipeline else None,
            worst_starvation=outcome.pipeline.worst_starvation if outcome.pipeline else None,
        )
    return outcome
