"""Deterministic fault injection for the dynamic-events path.

The paper exercises dynamic committee events with single hand-authored
scenarios (Figs. 9a/9b/14); this package batters the same code with
seeded *churn storms* — bursty correlated leave/join sequences, duplicate
and out-of-order notifications, membership swings to the ``N_min`` floor —
while event-boundary invariants (feasibility, replica conservation,
membership bookkeeping, Theorem-2 perturbation sanity, trace monotonicity)
stay armed.  A failing storm shrinks to a 1-minimal replayable JSON
reproducer.

Entry points: :func:`run_storm` (one SE solve), :func:`run_epoch_storm`
(the multi-epoch chain loop), ``mvcom storm`` on the command line.
"""

from repro.faultinject.invariants import (
    DEFAULT_INVARIANTS,
    KNOWN_INVARIANTS,
    StormInvariantViolation,
    StormProbe,
    check_trace_monotone,
)
from repro.faultinject.runner import (
    DEFAULT_ARMED,
    REPRODUCER_FORMAT,
    EpochStormOutcome,
    StormOutcome,
    build_storm_instance,
    event_from_json,
    event_to_json,
    load_reproducer,
    make_reproducer,
    replay_reproducer,
    run_epoch_storm,
    run_storm,
    save_reproducer,
    shrink_storm,
    storm_workload_config,
)
from repro.faultinject.serve import (
    SERVE_REPRODUCER_FORMAT,
    ServeStormConfig,
    ServeStormOutcome,
    load_serve_reproducer,
    make_serve_reproducer,
    replay_serve_reproducer,
    run_serve_storm,
    save_serve_reproducer,
)
from repro.faultinject.shrink import shrink_events
from repro.faultinject.storm import StormConfig, generate_storm

__all__ = [
    "DEFAULT_ARMED",
    "SERVE_REPRODUCER_FORMAT",
    "ServeStormConfig",
    "ServeStormOutcome",
    "load_serve_reproducer",
    "make_serve_reproducer",
    "replay_serve_reproducer",
    "run_serve_storm",
    "save_serve_reproducer",
    "DEFAULT_INVARIANTS",
    "KNOWN_INVARIANTS",
    "REPRODUCER_FORMAT",
    "EpochStormOutcome",
    "StormConfig",
    "StormInvariantViolation",
    "StormOutcome",
    "StormProbe",
    "build_storm_instance",
    "check_trace_monotone",
    "event_from_json",
    "event_to_json",
    "generate_storm",
    "load_reproducer",
    "make_reproducer",
    "replay_reproducer",
    "run_epoch_storm",
    "run_storm",
    "save_reproducer",
    "shrink_events",
    "shrink_storm",
    "storm_workload_config",
]
