"""Greedy event-deletion shrinking of failing storm schedules (ddmin-lite).

A 200-event storm that trips an armed invariant is a terrible bug report;
the two events that actually interact are. :func:`shrink_events` reduces a
failing schedule to a **1-minimal** reproducer: chunked greedy deletion
(halving chunk sizes, as in Zeller's delta debugging, minus the complement
splits) followed by single-event sweeps to a fixpoint, so in the returned
schedule *no single event can be removed* without losing the failure.

The oracle ``still_fails`` must be deterministic — in :mod:`repro.faultinject`
it replays the candidate schedule through a freshly seeded solver and
compares the failure *signature* (invariant name), not the exact iteration,
because deleting events legitimately shifts when the survivor fires.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core.dynamics import CommitteeEvent

#: Oracle: does this candidate event list still reproduce the failure?
StormOracle = Callable[[List[CommitteeEvent]], bool]


def shrink_events(
    events: Sequence[CommitteeEvent],
    still_fails: StormOracle,
    max_probes: int = 10_000,
) -> Tuple[List[CommitteeEvent], int]:
    """Shrink ``events`` to a 1-minimal failing sublist.

    Returns ``(minimal_events, probes)`` where ``probes`` counts oracle
    invocations.  Deletion preserves relative order (schedules are order-
    sensitive).  Raises ``ValueError`` if the full list does not fail —
    shrinking an already-passing schedule means the caller mixed up
    outcomes.  ``max_probes`` bounds worst-case work; the greedy pass is
    O(n²) probes only in pathological all-events-essential cases.
    """
    current = list(events)
    if not still_fails(list(current)):
        raise ValueError("the unshrunk schedule does not reproduce the failure")
    probes = 1
    chunk = max(len(current) // 2, 1)
    while current:
        removed = False
        start = 0
        while start < len(current):
            if probes >= max_probes:
                return current, probes
            candidate = current[:start] + current[start + chunk :]
            probes += 1
            if still_fails(list(candidate)):
                current = candidate  # chunk gone; retry same start position
                removed = True
            else:
                start += chunk
        if chunk > 1:
            chunk = max(chunk // 2, 1)
        elif not removed:
            break  # clean single-event pass: 1-minimal
    return current, probes
