"""Deterministic churn-storm generation (Section V taken adversarially).

The paper evaluates dynamic events with single hand-picked scenarios (one
failure + recovery in Fig. 9a, evenly spaced joins in Figs. 9b/14).  Real
sharded deployments — and the related churn literature (Blockguard; Stable
Blockchain Sharding under Adversarial Transaction Generation) — face
*storms*: bursts of correlated committee failures interleaved with
arrivals, duplicate and out-of-order notifications, and membership swings
that push ``|I_j|`` toward the cardinality floor ``N_min``.

:func:`generate_storm` turns a :class:`StormConfig` into such a schedule,
drawing every random choice from named streams
(:class:`repro.sim.rng.RandomStreams`) so one seed reproduces the exact
event sequence forever.  The generator tracks a simulated membership set so
LEAVE events target live committees (with deliberate duplicates targeting
dead ones), JOIN events either resurrect a failed committee (the recovery
half of Fig. 9a) or admit a fresh straggler whose latency exceeds the
current DDL — re-valuing every shard via eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dynamics import CommitteeEvent, EventKind
from repro.core.problem import EpochInstance
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class StormConfig:
    """Knobs of one churn storm (all randomness keyed off ``seed``).

    The workload half (``num_committees``, ``capacity``, ``alpha``) shapes
    the epoch instance the storm batters; the storm half shapes the event
    process.  ``burst_mean``/``gap_mean`` parameterise geometric draws, so
    events arrive in bursts (several events at one SE iteration) separated
    by quiet gaps.  ``leave_fraction`` sets failure pressure,
    ``correlated_fraction`` makes consecutive victims adjacent committee
    ids (rack/AS-style correlated failures), ``duplicate_fraction`` injects
    events for already-dead or already-live committees, and
    ``straggler_fraction`` makes fresh joiners slower than the current DDL
    so the deadline — and every shard's value — shifts.  ``min_live`` is
    the generator's floor on live committees; set it to 1 to let a storm
    push ``|I_j|`` through ``N_min`` all the way to a single survivor.
    """

    seed: int = 0
    num_events: int = 200
    num_committees: int = 32
    capacity: Optional[int] = None
    alpha: float = 1.5
    gamma: int = 4
    max_iterations: int = 1_500
    convergence_window: int = 400
    epochs: int = 1

    first_iteration: int = 10
    burst_mean: float = 4.0
    gap_mean: float = 30.0
    leave_fraction: float = 0.55
    duplicate_fraction: float = 0.10
    correlated_fraction: float = 0.30
    rejoin_fraction: float = 0.50
    straggler_fraction: float = 0.35
    min_live: int = 2

    def __post_init__(self) -> None:
        if self.num_events < 0:
            raise ValueError("num_events must be non-negative")
        if self.num_committees <= 0:
            raise ValueError("num_committees must be positive")
        if self.gamma <= 0 or self.max_iterations <= 0 or self.epochs <= 0:
            raise ValueError("gamma, max_iterations and epochs must be positive")
        if self.burst_mean < 1 or self.gap_mean < 1:
            raise ValueError("burst_mean and gap_mean must be >= 1")
        for name in (
            "leave_fraction",
            "duplicate_fraction",
            "correlated_fraction",
            "rejoin_fraction",
            "straggler_fraction",
        ):
            fraction = getattr(self, name)
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.min_live < 1:
            raise ValueError("min_live must be >= 1 (an epoch needs a shard)")

    def per_epoch(self, epoch: int) -> "StormConfig":
        """The slice of this storm one pipeline epoch receives.

        Events are split evenly across ``epochs``; the seed is re-derived
        per epoch by the caller's stream fork, so this only rescales counts.
        """
        return replace(self, num_events=max(self.num_events // self.epochs, 1), epochs=1)


@dataclass
class _Membership:
    """The generator's view of who is live, who failed, and their features."""

    live: List[int]
    features: Dict[int, Tuple[int, float]]
    removed: List[int] = field(default_factory=list)
    max_latency: float = 0.0
    next_fresh_id: int = 0


def _seed_membership(instance: EpochInstance) -> _Membership:
    features = {
        int(sid): (int(instance.tx_counts[pos]), float(instance.latencies[pos]))
        for pos, sid in enumerate(instance.shard_ids)
    }
    return _Membership(
        live=[int(sid) for sid in instance.shard_ids],
        features=features,
        max_latency=float(instance.latencies.max()),
        next_fresh_id=max(int(sid) for sid in instance.shard_ids) + 1,
    )


def generate_storm(
    instance: EpochInstance,
    config: StormConfig,
    streams: RandomStreams,
) -> List[CommitteeEvent]:
    """Generate one storm's event list against ``instance``'s membership.

    Deterministic given ``(instance, config, streams.seed)``: every draw
    comes from the named ``storm-*`` streams.  The returned list is
    *shuffled* (seeded) so same-iteration events arrive out of order —
    :class:`repro.core.dynamics.DynamicSchedule`'s stable sort restores the
    iteration stamps but preserves the scrambled intra-burst order, which
    is exactly the delivery skew a final committee sees in practice.
    """
    rng = streams.get("storm-events")
    membership = _seed_membership(instance)
    events: List[CommitteeEvent] = []
    iteration = config.first_iteration
    previous_victim: Optional[int] = None

    while len(events) < config.num_events:
        burst_size = int(rng.geometric(1.0 / config.burst_mean))
        burst_size = min(burst_size, config.num_events - len(events))
        for _ in range(burst_size):
            event = _next_event(membership, config, rng, iteration, previous_victim)
            if event.kind is EventKind.LEAVE and event.shard_id in membership.live:
                previous_victim = event.shard_id
            _apply_to_membership(membership, event)
            events.append(event)
        iteration += int(rng.geometric(1.0 / config.gap_mean))

    # Scramble delivery order (the schedule's stable sort keeps stamps).
    order = rng.permutation(len(events))
    return [events[int(position)] for position in order]


def _next_event(
    membership: _Membership,
    config: StormConfig,
    rng: np.random.Generator,
    iteration: int,
    previous_victim: Optional[int],
) -> CommitteeEvent:
    # Deliberate duplicates: a LEAVE for an already-failed committee or a
    # JOIN for a live one — the dynamic path must tolerate both silently.
    if membership.removed and rng.random() < config.duplicate_fraction:
        if rng.random() < 0.5:
            ghost = int(membership.removed[int(rng.integers(len(membership.removed)))])
            return CommitteeEvent(iteration=iteration, kind=EventKind.LEAVE, shard_id=ghost)
        live_id = int(membership.live[int(rng.integers(len(membership.live)))])
        tx_count, latency = membership.features[live_id]
        return CommitteeEvent(
            iteration=iteration,
            kind=EventKind.JOIN,
            shard_id=live_id,
            tx_count=tx_count,
            latency=latency,
        )

    want_leave = rng.random() < config.leave_fraction
    if want_leave and len(membership.live) > config.min_live:
        victim = _pick_victim(membership, config, rng, previous_victim)
        return CommitteeEvent(iteration=iteration, kind=EventKind.LEAVE, shard_id=victim)
    return _make_join(membership, config, rng, iteration)


def _pick_victim(
    membership: _Membership,
    config: StormConfig,
    rng: np.random.Generator,
    previous_victim: Optional[int],
) -> int:
    live = membership.live
    if previous_victim is not None and rng.random() < config.correlated_fraction:
        # Correlated failure: the live committee with the nearest id to the
        # previous victim (same rack / operator / AS in spirit).
        return min(live, key=lambda sid: (abs(sid - previous_victim), sid))
    return int(live[int(rng.integers(len(live)))])


def _make_join(
    membership: _Membership, config: StormConfig, rng: np.random.Generator, iteration: int
) -> CommitteeEvent:
    if membership.removed and rng.random() < config.rejoin_fraction:
        # Recovery: a failed committee comes back with its old shard.
        shard_id = int(membership.removed[int(rng.integers(len(membership.removed)))])
        tx_count, latency = membership.features[shard_id]
    else:
        shard_id = membership.next_fresh_id
        tx_count = int(rng.integers(200, 3_000))
        if rng.random() < config.straggler_fraction:
            # A straggler past the current DDL: t_j and every v_i shift.
            latency = membership.max_latency * float(1.05 + 0.35 * rng.random())
        else:
            latency = membership.max_latency * float(0.30 + 0.60 * rng.random())
    return CommitteeEvent(
        iteration=iteration,
        kind=EventKind.JOIN,
        shard_id=shard_id,
        tx_count=int(tx_count),
        latency=float(latency),
    )


def _apply_to_membership(membership: _Membership, event: CommitteeEvent) -> None:
    if event.kind is EventKind.LEAVE:
        if event.shard_id in membership.live:
            membership.live.remove(event.shard_id)
            membership.removed.append(event.shard_id)
        return
    if event.shard_id in membership.live:
        return  # duplicate join, tolerated downstream too
    if event.shard_id in membership.removed:
        membership.removed.remove(event.shard_id)
    membership.live.append(event.shard_id)
    membership.features[event.shard_id] = (int(event.tx_count), float(event.latency))
    membership.max_latency = max(membership.max_latency, float(event.latency))
    if event.shard_id >= membership.next_fresh_id:
        membership.next_fresh_id = event.shard_id + 1
