"""Churn storms against the *live* scheduling service, not a single solve.

:func:`run_serve_storm` drives the :class:`~repro.data.stream.EpochStream`
feeder and a warm-chained SE solver exactly as ``mvcom serve`` does, but
injects a fresh :func:`~repro.faultinject.storm.generate_storm` schedule
into every epoch's solve with :class:`StormProbe` invariants armed — and
because a warm start calls the probe at iteration 0 with the *adopted*
replicas, the contracts are checked across the epoch boundary itself (the
new failure surface this mode exists to cover: stale thread state, an
incumbent from the wrong instance, infeasible carried solutions).

A violation serialises as a ``mvcom-serve-reproducer-v1`` document: the
whole epoch-by-epoch event history up to the failure plus the serve-storm
config, enough to replay the service loop bit-for-bit to the same raise.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.dynamics import CommitteeEvent, DynamicSchedule
from repro.core.se import InfeasibleEpochError, SEConfig, SEResult, StochasticExploration
from repro.data.stream import EpochStream, EpochStreamConfig
from repro.faultinject.invariants import (
    KNOWN_INVARIANTS,
    StormInvariantViolation,
    StormProbe,
    check_trace_monotone,
)
from repro.faultinject.runner import DEFAULT_ARMED, event_from_json, event_to_json
from repro.faultinject.storm import StormConfig, generate_storm
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry
from repro.sim.rng import RandomStreams, derive_seed

__all__ = [
    "ServeStormConfig",
    "ServeStormOutcome",
    "SERVE_REPRODUCER_FORMAT",
    "run_serve_storm",
    "make_serve_reproducer",
    "save_serve_reproducer",
    "load_serve_reproducer",
    "replay_serve_reproducer",
]

#: On-disk format tag for serve-mode reproducer files.
SERVE_REPRODUCER_FORMAT = "mvcom-serve-reproducer-v1"


@dataclass(frozen=True)
class ServeStormConfig:
    """Shape of one storm-battered serve run (stream x storm x solver)."""

    seed: int = 0
    epochs: int = 4
    num_committees: int = 40
    churn: float = 0.1
    growth: int = 0
    rate: float = 1.3
    events_per_epoch: int = 40
    gamma: int = 4
    max_iterations: int = 800
    convergence_window: int = 400
    warm: bool = True
    leave_fraction: float = 0.45
    duplicate_fraction: float = 0.1
    correlated_fraction: float = 0.2
    rejoin_fraction: float = 0.3
    straggler_fraction: float = 0.3
    min_live: int = 4

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.events_per_epoch <= 0:
            raise ValueError("events_per_epoch must be positive")

    def stream_config(self) -> EpochStreamConfig:
        return EpochStreamConfig(
            num_committees=self.num_committees,
            seed=self.seed,
            rate=self.rate,
            churn=self.churn,
            growth=self.growth,
        )

    def storm_config(self, epoch: int) -> StormConfig:
        """The storm one served epoch faces (seed re-derived per epoch)."""
        return StormConfig(
            seed=derive_seed(self.seed, f"serve-storm-epoch-{epoch}"),
            num_events=self.events_per_epoch,
            num_committees=self.num_committees,
            gamma=self.gamma,
            max_iterations=self.max_iterations,
            convergence_window=self.convergence_window,
            leave_fraction=self.leave_fraction,
            duplicate_fraction=self.duplicate_fraction,
            correlated_fraction=self.correlated_fraction,
            rejoin_fraction=self.rejoin_fraction,
            straggler_fraction=self.straggler_fraction,
            min_live=self.min_live,
        )


@dataclass
class ServeStormOutcome:
    """One storm-battered serve run, classified like a storm outcome."""

    status: str  # "survived" | "violated" | "infeasible"
    config: ServeStormConfig
    armed: Tuple[str, ...]
    events_by_epoch: List[List[CommitteeEvent]] = field(default_factory=list)
    results: List[SEResult] = field(default_factory=list)
    violation: Optional[StormInvariantViolation] = None
    failed_epoch: Optional[int] = None
    infeasible_reason: Optional[str] = None
    boundaries_by_epoch: List[List[int]] = field(default_factory=list)
    checks_run: int = 0

    @property
    def survived(self) -> bool:
        """True when every epoch's contracts held through the whole run."""
        return self.status == "survived"


def _epoch_storm(
    config: ServeStormConfig, epoch: int, instance
) -> List[CommitteeEvent]:
    """Generate epoch ``epoch``'s storm from a per-epoch derived registry.

    A fresh :class:`RandomStreams` seeded by the epoch index means the
    generator's constant stream key never reuses a Mersenne sequence
    across the serve loop's iterations.
    """
    return generate_storm(
        instance,
        config.storm_config(epoch),
        RandomStreams(derive_seed(config.seed, f"serve-storm-epoch-{epoch}")),
    )


def run_serve_storm(
    config: ServeStormConfig,
    events_by_epoch: Optional[Sequence[Sequence[CommitteeEvent]]] = None,
    armed: Optional[Sequence[str]] = None,
    extra_invariants: Optional[Dict[str, Callable[..., None]]] = None,
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> ServeStormOutcome:
    """Run the service loop with a storm inside every epoch's solve.

    Deterministic given ``config`` (and ``events_by_epoch`` when
    replaying): the stream, the per-epoch storms, and the solver all
    derive from ``config.seed`` through named streams.  The solver engine
    is pinned to ``serial`` for the same reason single-solve reproducers
    pin it: a reproducer must replay byte-for-byte anywhere.
    """
    armed = tuple(armed) if armed is not None else DEFAULT_ARMED
    if extra_invariants:
        armed = armed + tuple(extra_invariants)
    stream = EpochStream(config.stream_config())
    solver = StochasticExploration(
        SEConfig(
            num_threads=config.gamma,
            max_iterations=config.max_iterations,
            convergence_window=config.convergence_window,
            seed=derive_seed(config.seed, "serve-storm-solver"),
            engine="serial",
        ),
        telemetry=telemetry,
    )
    outcome = ServeStormOutcome(status="survived", config=config, armed=armed)
    previous: Optional[SEResult] = None
    permitted: List[int] = []

    for epoch in range(config.epochs):
        tick = stream.advance(permitted)
        if events_by_epoch is not None:
            if epoch >= len(events_by_epoch):
                break
            events = list(events_by_epoch[epoch])
        else:
            events = _epoch_storm(config, epoch, tick.instance)
        outcome.events_by_epoch.append(list(events))
        probe = StormProbe(
            solver,
            tick.instance,
            armed=armed,
            extra_invariants=extra_invariants,
            telemetry=telemetry,
        )
        try:
            result = solver.solve(
                tick.instance,
                schedule=DynamicSchedule(events=list(events)),
                probe=probe,
                warm=previous if config.warm else None,
            )
            if "trace-monotone" in armed:
                check_trace_monotone(result.utility_trace, probe.boundaries)
        except StormInvariantViolation as violation:
            outcome.status = "violated"
            outcome.violation = violation
            outcome.failed_epoch = epoch
            outcome.boundaries_by_epoch.append(list(probe.boundaries))
            outcome.checks_run += probe.checks_run
            break
        except InfeasibleEpochError as exc:
            outcome.status = "infeasible"
            outcome.infeasible_reason = str(exc)
            outcome.failed_epoch = epoch
            outcome.boundaries_by_epoch.append(list(probe.boundaries))
            outcome.checks_run += probe.checks_run
            break
        outcome.boundaries_by_epoch.append(list(probe.boundaries))
        outcome.checks_run += probe.checks_run
        outcome.results.append(result)
        previous = result
        final = result.final_instance
        permitted = [
            shard_id
            for shard_id, chosen in zip(final.shard_ids, result.best_mask)
            if chosen
        ]
        if telemetry.enabled:
            telemetry.event(
                "storm.serve_epoch",
                epoch=epoch,
                events=len(events),
                boundaries=len(probe.boundaries),
                iterations=result.iterations,
                best_utility=result.best_utility,
                warm=config.warm and epoch > 0,
            )

    if telemetry.enabled:
        telemetry.event(
            "storm.serve",
            status=outcome.status,
            epochs_completed=len(outcome.results),
            failed_epoch=outcome.failed_epoch,
            invariant=outcome.violation.invariant if outcome.violation else None,
            checks_run=outcome.checks_run,
        )
    return outcome


# ---------------------------------------------------------------------- #
# reproducer serialisation
# ---------------------------------------------------------------------- #
def make_serve_reproducer(outcome: ServeStormOutcome) -> Dict:
    """A replayable JSON document for a violated serve-storm run.

    Stores the *entire* epoch-by-epoch event history (earlier epochs set
    up the stream/warm state the failing epoch inherits), so replaying is
    a pure function of this document.
    """
    if outcome.violation is None and outcome.status != "infeasible":
        raise ValueError("a reproducer records a failure; this outcome has none")
    failure: Dict = {"epoch": outcome.failed_epoch}
    if outcome.violation is not None:
        failure["invariant"] = outcome.violation.invariant
        failure["iteration"] = outcome.violation.iteration
        failure["message"] = str(outcome.violation)
    else:
        failure["infeasible_reason"] = outcome.infeasible_reason
    return {
        "format": SERVE_REPRODUCER_FORMAT,
        "config": asdict(outcome.config),
        "armed": [name for name in outcome.armed],
        "failure": failure,
        "events_by_epoch": [
            [event_to_json(event) for event in events]
            for events in outcome.events_by_epoch
        ],
    }


def save_serve_reproducer(path: str, reproducer: Dict) -> None:
    """Write a serve reproducer deterministically (sorted keys)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(reproducer, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_serve_reproducer(path: str) -> Dict:
    """Read a serve reproducer, validating the format tag."""
    with open(path, "r", encoding="utf-8") as handle:
        reproducer = json.load(handle)
    if reproducer.get("format") != SERVE_REPRODUCER_FORMAT:
        raise ValueError(
            f"{path} is not a {SERVE_REPRODUCER_FORMAT} file "
            f"(format={reproducer.get('format')!r})"
        )
    return reproducer


def replay_serve_reproducer(
    reproducer: Dict,
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> ServeStormOutcome:
    """Re-run a stored serve reproducer exactly (same seeds, same events).

    Built-in armed invariants replay as stored; custom
    ``extra_invariants`` cannot be serialised, so a reproducer recorded
    with them replays with the built-in subset (the stored failure data
    still names the original invariant).
    """
    config = ServeStormConfig(**reproducer["config"])
    events_by_epoch = [
        [event_from_json(payload) for payload in events]
        for events in reproducer["events_by_epoch"]
    ]
    armed = tuple(
        name for name in reproducer["armed"] if name in KNOWN_INVARIANTS
    )
    return run_serve_storm(
        config,
        events_by_epoch=events_by_epoch,
        armed=armed,
        telemetry=telemetry,
    )
