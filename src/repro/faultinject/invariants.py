"""Armed invariants for the dynamic-events path (event-boundary contracts).

PR 1's runtime contracts check solver *results* at the boundary; churn
storms need the same discipline at every **event boundary inside** a solve.
:class:`StormProbe` plugs into ``StochasticExploration.solve(probe=...)``
and asserts, after each applied event batch:

* ``incumbent-feasible`` — the carried incumbent satisfies const. (3)
  ``count >= N_min`` and const. (4) ``weight <= Ĉ`` with finite utility;
* ``replica-conservation`` — the Γ executor replicas survive every reseat
  with distinct identities, each hosting exactly the per-cardinality
  solution-thread family of the *current* instance, every live thread
  conserving its cardinality ``n`` and capacity feasibility;
* ``membership-bookkeeping`` — the instance's shard-id set equals the
  event-replay of the original membership (duplicates tolerated, ids
  conserved — nothing vanishes or resurrects unasked);
* ``theorem2-bounds`` — on enumerable instances (≤ ``theorem2_max_shards``
  committees), each LEAVE's exact perturbation obeys Lemma 4
  (:math:`d_{TV} \\le 1/2`) and Theorem 2 (:math:`\\|q^*u^T - \\tilde q
  u^T\\| \\le \\max_g U_g`) via :func:`repro.core.failure.analyze_failure`;
* ``strict-n-min`` (opt-in) — const. (3) holds *unrelaxed*: the storm never
  forces ``N_min`` below the paper's ``⌈f·|I_j|⌉`` (useful to manufacture
  honest, replayable violations for shrinker/CI drills);
* ``trace-monotone`` (post-hoc, via :func:`check_trace_monotone`) — the
  best-utility trace is non-decreasing everywhere except at recorded event
  boundaries, where rebasing may legitimately devalue the incumbent.

A failed check raises :class:`StormInvariantViolation` (a
:class:`repro.analysis.contracts.ContractViolation`), carrying the
invariant name and boundary iteration so the shrinker can match failure
signatures.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.contracts import ContractViolation
from repro.core.dynamics import CommitteeEvent, EventKind
from repro.core.failure import analyze_failure
from repro.core.problem import EpochInstance
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry

#: Invariants armed by default; "strict-n-min" is opt-in, "trace-monotone"
#: runs post-hoc on the finished result.
DEFAULT_INVARIANTS = (
    "incumbent-feasible",
    "replica-conservation",
    "membership-bookkeeping",
    "theorem2-bounds",
)

#: Every serialisable invariant name (reproducers may arm any subset).
KNOWN_INVARIANTS = DEFAULT_INVARIANTS + ("strict-n-min", "trace-monotone")


class StormInvariantViolation(ContractViolation):
    """One armed invariant failed at a dynamic-event boundary."""

    def __init__(self, invariant: str, message: str, iteration: Optional[int] = None) -> None:
        self.invariant = invariant
        self.iteration = iteration
        where = f" at iteration {iteration}" if iteration is not None else ""
        super().__init__(f"[{invariant}]{where} {message}")


class StormProbe:
    """Event-boundary invariant checker for ``solve(probe=...)``.

    The probe draws no randomness and never mutates solver state, so arming
    it cannot perturb a seeded trajectory; it only *observes* and raises.
    ``boundaries`` records the iteration of every probed event batch for
    the post-hoc trace-monotonicity check.
    """

    def __init__(
        self,
        solver,
        instance: EpochInstance,
        armed: Optional[Sequence[str]] = None,
        theorem2_max_shards: int = 10,
        theorem2_budget: int = 8,
        extra_invariants: Optional[Dict[str, Callable[..., None]]] = None,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> None:
        self.solver = solver
        self.armed = tuple(armed) if armed is not None else DEFAULT_INVARIANTS
        self.extra_invariants = dict(extra_invariants or {})
        unknown = set(self.armed) - set(KNOWN_INVARIANTS) - set(self.extra_invariants)
        if unknown:
            raise ValueError(f"unknown invariants: {sorted(unknown)}")
        self.theorem2_max_shards = theorem2_max_shards
        self._theorem2_budget = theorem2_budget
        self.telemetry = telemetry
        self._tracked = instance
        self.boundaries: List[int] = []
        self.checks_run = 0
        self.theorem2_checked = 0

    # ------------------------------------------------------------------ #
    # the probe callback
    # ------------------------------------------------------------------ #
    def __call__(self, *, iteration, events, instance, best, replicas) -> None:
        """Run every armed invariant against one applied event batch."""
        self.boundaries.append(int(iteration))
        # Replay the batch onto the tracked shadow instance first: the
        # theorem-2 check needs each LEAVE's *pre-failure* space, and the
        # membership check needs the expected post-batch id set.
        self._tracked = self._replay_batch(self._tracked, events, iteration)

        if "incumbent-feasible" in self.armed:
            self._check_incumbent(iteration, instance, best)
        if "replica-conservation" in self.armed:
            self._check_replicas(iteration, instance, replicas)
        if "membership-bookkeeping" in self.armed:
            self._check_membership(iteration, instance)
        if "strict-n-min" in self.armed:
            self._check_strict_n_min(iteration, instance, best)
        for name, check in self.extra_invariants.items():
            if name in self.armed:
                self._run_extra(name, check, iteration, events, instance, best, replicas)
        self.checks_run += 1
        if self.telemetry.enabled:
            self.telemetry.count(
                "storm.boundaries", 1, iteration=int(iteration), events=len(events)
            )

    # ------------------------------------------------------------------ #
    # individual invariants
    # ------------------------------------------------------------------ #
    def _check_incumbent(self, iteration: int, instance: EpochInstance, best) -> None:
        if best.instance is not instance:
            raise StormInvariantViolation(
                "incumbent-feasible",
                "incumbent is not rebased onto the current instance",
                iteration,
            )
        if best.count < instance.n_min:
            raise StormInvariantViolation(
                "incumbent-feasible",
                f"cardinality {best.count} violates N_min={instance.n_min} (const. 3)",
                iteration,
            )
        if best.weight > instance.capacity:
            raise StormInvariantViolation(
                "incumbent-feasible",
                f"packed TXs {best.weight} exceed Ĉ={instance.capacity} (const. 4)",
                iteration,
            )
        if not math.isfinite(float(best.utility)):
            raise StormInvariantViolation(
                "incumbent-feasible", f"utility {best.utility!r} is not finite", iteration
            )

    def _check_replicas(self, iteration: int, instance: EpochInstance, replicas) -> None:
        expected_gamma = self.solver.config.num_threads
        if len(replicas) != expected_gamma:
            raise StormInvariantViolation(
                "replica-conservation",
                f"{len(replicas)} replicas survive, expected Γ={expected_gamma}",
                iteration,
            )
        identities = [replica.replica_id for replica in replicas]
        if len(set(identities)) != len(identities):
            raise StormInvariantViolation(
                "replica-conservation", f"replica identities collide: {identities}", iteration
            )
        expected_family = self.solver.thread_cardinalities(instance)
        for replica in replicas:
            family = [thread.cardinality for thread in replica.threads]
            if family != expected_family:
                raise StormInvariantViolation(
                    "replica-conservation",
                    f"replica {replica.replica_id} hosts cardinalities {family}, "
                    f"expected {expected_family}",
                    iteration,
                )
            for thread in replica.threads:
                if thread.solution is None:
                    continue
                if thread.solution.count != thread.cardinality:
                    raise StormInvariantViolation(
                        "replica-conservation",
                        f"replica {replica.replica_id} thread f_{thread.cardinality} "
                        f"holds {thread.solution.count} replicas (cardinality not conserved)",
                        iteration,
                    )
                if not thread.solution.capacity_feasible:
                    raise StormInvariantViolation(
                        "replica-conservation",
                        f"replica {replica.replica_id} thread f_{thread.cardinality} "
                        f"exceeds Ĉ (const. 4)",
                        iteration,
                    )

    def _check_membership(self, iteration: int, instance: EpochInstance) -> None:
        got = set(int(sid) for sid in instance.shard_ids)
        expected = set(int(sid) for sid in self._tracked.shard_ids)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise StormInvariantViolation(
                "membership-bookkeeping",
                f"instance ids diverge from the event replay "
                f"(missing={missing}, unexpected={extra})",
                iteration,
            )

    def _check_strict_n_min(self, iteration: int, instance: EpochInstance, best) -> None:
        requested = int(np.ceil(instance.config.n_min_fraction * instance.num_shards))
        if instance.n_min_relaxed or best.count < requested:
            raise StormInvariantViolation(
                "strict-n-min",
                f"const. (3) relaxed: incumbent count {best.count} < "
                f"unrelaxed N_min=⌈{instance.config.n_min_fraction}·"
                f"{instance.num_shards}⌉={requested}",
                iteration,
            )

    def _run_extra(self, name, check, iteration, events, instance, best, replicas) -> None:
        try:
            check(
                iteration=iteration,
                events=events,
                instance=instance,
                best=best,
                replicas=replicas,
            )
        except StormInvariantViolation:
            raise
        except AssertionError as failure:
            raise StormInvariantViolation(name, str(failure), iteration) from failure

    # ------------------------------------------------------------------ #
    # shadow replay + theorem-2 sanity
    # ------------------------------------------------------------------ #
    def _replay_batch(
        self,
        tracked: EpochInstance,
        events: Sequence[CommitteeEvent],
        iteration: int,
    ) -> EpochInstance:
        for event in events:
            if event.kind is EventKind.LEAVE:
                if event.shard_id not in tracked.shard_ids:
                    continue  # duplicate leave, tolerated
                self._maybe_check_theorem2(tracked, event, iteration)
                tracked = tracked.without(event.shard_id)
            else:
                if event.shard_id in tracked.shard_ids:
                    continue  # duplicate join, tolerated
                tracked = tracked.with_shard(event.shard_id, event.tx_count, event.latency)
        return tracked

    def _maybe_check_theorem2(
        self, before: EpochInstance, event: CommitteeEvent, iteration: int
    ) -> None:
        if "theorem2-bounds" not in self.armed:
            return
        if before.num_shards > self.theorem2_max_shards or self._theorem2_budget <= 0:
            return
        if before.num_shards < 2:
            return
        self._theorem2_budget -= 1
        self.theorem2_checked += 1
        position = before.position_of(event.shard_id)
        analysis = analyze_failure(before, position, beta=self.solver.config.beta)
        if not analysis.tv_within_bound:
            raise StormInvariantViolation(
                "theorem2-bounds",
                f"Lemma 4 violated: d_TV={analysis.tv_distance:.6f} > "
                f"{analysis.tv_bound} after shard {event.shard_id} failed",
                iteration,
            )
        if not analysis.perturbation_within_bound:
            raise StormInvariantViolation(
                "theorem2-bounds",
                f"Theorem 2 violated: perturbation {analysis.utility_perturbation:.6f} "
                f"exceeds max_g U_g={analysis.perturbation_bound:.6f} "
                f"after shard {event.shard_id} failed",
                iteration,
            )


def check_trace_monotone(
    utility_trace: np.ndarray,
    boundaries: Sequence[int],
    tolerance: float = 1e-9,
) -> None:
    """Assert the best-utility trace only ever dips at event boundaries.

    Outside dynamic events the incumbent changes solely through
    ``_pick_better`` (strict utility improvement), so ``utility_trace`` must
    be non-decreasing between boundaries; a LEAVE/JOIN rebase may devalue
    the carried incumbent, so the recorded boundary iterations are exempt.
    Raises :class:`StormInvariantViolation` on an off-boundary dip.
    """
    trace = np.asarray(utility_trace, dtype=float)
    exempt = set(int(b) for b in boundaries)
    for index in range(1, len(trace)):
        if index in exempt:
            continue
        if trace[index] < trace[index - 1] - tolerance:
            raise StormInvariantViolation(
                "trace-monotone",
                f"best-utility trace dips off-boundary: "
                f"u[{index - 1}]={trace[index - 1]:.6f} -> u[{index}]={trace[index]:.6f}",
                index,
            )
