"""Epoch workload generation: the glue between the trace and the problem.

:func:`generate_epoch_workload` turns the synthetic Bitcoin trace into the
exact experimental setup of Section VI-A: ``|I_j|`` member-committee shards
with TX counts accumulated from trace blocks and two-phase latencies drawn
from the PoW/PBFT model.  It also prepares the *online* variants where a
subset of committees is present at bootstrap and the rest arrive as JOIN
events (Figs. 9b and 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dynamics import DynamicSchedule, consecutive_join_schedule
from repro.core.problem import EpochInstance, MVComConfig, build_instance
from repro.data.bitcoin import BitcoinBlock, BitcoinTraceConfig, generate_bitcoin_trace
from repro.data.latency import TwoPhaseLatencyModel
from repro.data.shards import ShardRecord, build_shards
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of one experiment's workload.

    ``num_committees`` is the paper's ``|I_j|``; ``capacity`` is ``Ĉ``.
    """

    num_committees: int = 500
    capacity: int = 500_000
    alpha: float = 1.5
    n_min_fraction: float = 0.5
    n_max_fraction: float = 0.8
    seed: int = 0
    blocks_per_committee: float = 1.3
    trace: BitcoinTraceConfig = field(default_factory=BitcoinTraceConfig)

    def __post_init__(self) -> None:
        if self.num_committees <= 0:
            raise ValueError("num_committees must be positive")
        if self.blocks_per_committee <= 0:
            raise ValueError("blocks_per_committee must be positive")

    def mvcom_config(self) -> MVComConfig:
        """The problem-level config this workload implies."""
        return MVComConfig(
            alpha=self.alpha,
            capacity=self.capacity,
            n_min_fraction=self.n_min_fraction,
            n_max_fraction=self.n_max_fraction,
        )


@dataclass
class EpochWorkload:
    """One epoch's full workload: shards, instance and (optionally) dynamics."""

    shards: List[ShardRecord]
    instance: EpochInstance
    config: WorkloadConfig
    schedule: Optional[DynamicSchedule] = None


def _sample_epoch_blocks(
    blocks: Sequence[BitcoinBlock],
    config: WorkloadConfig,
    rng: np.random.Generator,
) -> List[BitcoinBlock]:
    """Draw this epoch's slice of the trace.

    The paper divides its 1378-block snapshot across epochs and committees;
    with the default ``blocks_per_committee = 1.3`` the resulting mean shard
    size (~1.4K TXs) is the unique scale at which the paper's own parameter
    choices are jointly satisfiable: the bootstrap condition
    :math:`\\sum_i s_i > \\hat C` holds while :math:`N_{min} = 50\\%` of
    committees still fit under :math:`\\hat C = 1000\\,|I_j|` (see DESIGN.md).
    Sampling is without replacement until the trace is exhausted, then with
    replacement.
    """
    wanted = max(config.num_committees, int(round(config.blocks_per_committee * config.num_committees)))
    replace = wanted > len(blocks)
    chosen = rng.choice(len(blocks), size=wanted, replace=replace)
    return [blocks[int(index)] for index in chosen]


def arrived_shards(shards: Sequence[ShardRecord], n_max_fraction: float) -> List[ShardRecord]:
    """Apply Alg. 1's termination rule (line 29, the paper's :math:`N_{max}`).

    The final committee stops listening once :math:`N_{max}` (80% by
    default) of the member committees have submitted, so only the fastest
    :math:`\\lfloor N_{max} |I_j| \\rfloor` committees ever *arrive*; the
    DDL :math:`t_j = \\max_i l_i` is then the slowest arrival's latency
    rather than the full exponential tail.  (Consistency check from the
    paper: Fig. 14 runs :math:`|I_j| = 50` with exactly 23 join events --
    40 arrived committees minus 17 initial ones, and 40 = 80% of 50.)
    """
    if not 0 < n_max_fraction <= 1:
        raise ValueError("n_max_fraction must lie in (0, 1]")
    count = max(1, int(np.floor(n_max_fraction * len(shards))))
    return sorted(shards, key=lambda shard: shard.latency)[:count]


def generate_epoch_workload(
    config: WorkloadConfig,
    blocks: Optional[Sequence[BitcoinBlock]] = None,
    latency_model: Optional[TwoPhaseLatencyModel] = None,
) -> EpochWorkload:
    """Build the static (all committees arrived) workload of Figs. 8 and 10-13.

    "Static" means every committee that will ever arrive (the fastest
    :math:`N_{max}` fraction) is present at bootstrap; the stragglers past
    the :math:`N_{max}` cutoff are excluded per Alg. 1's termination rule.
    """
    streams = RandomStreams(config.seed)
    if blocks is None:
        blocks = generate_bitcoin_trace(config.trace)
    epoch_blocks = _sample_epoch_blocks(blocks, config, streams.get("epoch-blocks"))
    shards = build_shards(
        epoch_blocks,
        num_shards=config.num_committees,
        rng=streams.get("shards"),
        latency_model=latency_model or TwoPhaseLatencyModel(),
    )
    arrived = arrived_shards(shards, config.n_max_fraction)
    instance = build_instance(arrived, config.mvcom_config())
    return EpochWorkload(shards=shards, instance=instance, config=config)


def generate_online_workload(
    config: WorkloadConfig,
    num_initial: int,
    join_start: int,
    join_spacing: int,
    blocks: Optional[Sequence[BitcoinBlock]] = None,
    latency_model: Optional[TwoPhaseLatencyModel] = None,
) -> EpochWorkload:
    """Build the online-arrival workload of Figs. 9b and 14.

    The ``num_initial`` committees with the *smallest* two-phase latency are
    present at bootstrap (they arrived first, by definition); the rest of
    the :math:`N_{max}` arrival window joins as events, in latency order,
    every ``join_spacing`` iterations starting at ``join_start``.
    """
    if not 0 < num_initial <= config.num_committees:
        raise ValueError("num_initial must be within (0, num_committees]")
    base = generate_epoch_workload(config, blocks=blocks, latency_model=latency_model)
    window = arrived_shards(base.shards, config.n_max_fraction)
    if num_initial > len(window):
        raise ValueError(
            f"num_initial={num_initial} exceeds the N_max arrival window of {len(window)}"
        )
    initial, arriving = window[:num_initial], window[num_initial:]

    instance = build_instance(initial, config.mvcom_config())
    schedule = consecutive_join_schedule(
        arrivals=[(shard.shard_id, shard.tx_count, shard.latency) for shard in arriving],
        start_iteration=join_start,
        spacing=join_spacing,
    )
    return EpochWorkload(shards=base.shards, instance=instance, config=config, schedule=schedule)


def multi_epoch_workloads(
    config: WorkloadConfig,
    num_epochs: int,
    blocks: Optional[Sequence[BitcoinBlock]] = None,
    latency_model: Optional[TwoPhaseLatencyModel] = None,
) -> List[EpochWorkload]:
    """Independent epoch workloads (fresh shard grouping and latencies per epoch).

    "For each epoch, those blocks are divided into a different number of
    groups" -- every epoch re-partitions the trace with its own stream.
    """
    if num_epochs <= 0:
        raise ValueError("num_epochs must be positive")
    if blocks is None:
        blocks = generate_bitcoin_trace(config.trace)
    model = latency_model or TwoPhaseLatencyModel()
    workloads = []
    for epoch in range(num_epochs):
        epoch_streams = RandomStreams(config.seed).fork(f"epoch-{epoch}")
        epoch_blocks = _sample_epoch_blocks(blocks, config, epoch_streams.get("epoch-blocks"))
        shards = build_shards(
            epoch_blocks,
            num_shards=config.num_committees,
            rng=epoch_streams.get("shards"),
            latency_model=model,
        )
        instance = build_instance(arrived_shards(shards, config.n_max_fraction), config.mvcom_config())
        workloads.append(EpochWorkload(shards=shards, instance=instance, config=config))
    return workloads
