"""Continuous mempool feeder for the steady-state scheduling service.

The figure harness treats every epoch as an isolated draw; the ``mvcom
serve`` loop instead needs the setting the warm-started solver is built
for: a *persistent* committee population whose membership churns, whose
pending transactions accumulate when the scheduler refuses a committee,
and whose two-phase latencies carry over exactly as Fig. 3 prescribes
(``l_i - t_j`` for refused stragglers).  :class:`EpochStream` owns that
state — it replays the :mod:`repro.data.bitcoin` trace at a configurable
rate, applies churn/growth between epochs, and materialises one
:class:`~repro.core.problem.EpochInstance` per tick.

Everything is driven by named :class:`~repro.sim.rng.RandomStreams`
(per-epoch forks, the :func:`repro.data.workload.multi_epoch_workloads`
idiom), so a stream is byte-reproducible from its config alone and the
serve-mode storm reproducers can replay a failing epoch sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.problem import MVComConfig, build_instance, carry_over_latency
from repro.data.bitcoin import BitcoinBlock, BitcoinTraceConfig, generate_bitcoin_trace
from repro.data.latency import TwoPhaseLatencyModel
from repro.sim.rng import RandomStreams

__all__ = [
    "EpochStreamConfig",
    "EpochTick",
    "EpochStream",
    "FRESH_ID_BASE",
]

# Fresh committees minted by churn/growth start here so their ids can never
# collide with storm-generator JOIN ids (which count up from the instance's
# own id range).
FRESH_ID_BASE = 1_000_000


@dataclass(frozen=True)
class EpochStreamConfig:
    """Parameters of the continuous committee/transaction stream.

    Parameters
    ----------
    num_committees:
        Initial live population size.
    capacity:
        Fixed :math:`\\hat C`; ``None`` applies the paper's scaling rule
        :math:`\\hat C = 1000 \\cdot |I_j|` to the live count each epoch.
    rate:
        Trace blocks fed per live committee per epoch (the mempool
        pressure knob; the workload generator's ``blocks_per_committee``
        default is 1.3).
    churn:
        Fraction of the live population replaced by fresh committees at
        each epoch boundary.
    growth:
        Net committees added (or removed, if negative) per epoch on top
        of churn — drives a serve run across the ``engine="auto"``
        scalar-vs-batched split.
    carry_floor:
        Minimum carried latency for refused committees (Fig. 3 carry).
    """

    num_committees: int = 60
    capacity: Optional[int] = None
    alpha: float = 1.5
    n_min_fraction: float = 0.5
    n_max_fraction: float = 0.8
    seed: int = 0
    rate: float = 1.3
    churn: float = 0.1
    growth: int = 0
    carry_floor: float = 1.0
    trace: BitcoinTraceConfig = field(default_factory=BitcoinTraceConfig)

    def __post_init__(self) -> None:
        if self.num_committees <= 1:
            raise ValueError("num_committees must be > 1")
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("capacity must be positive when fixed")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= self.churn < 1.0:
            raise ValueError("churn must be in [0, 1)")
        if self.carry_floor <= 0:
            raise ValueError("carry_floor must be positive")


@dataclass(frozen=True)
class EpochTick:
    """One epoch boundary's worth of stream evolution."""

    epoch: int
    instance: object  # EpochInstance
    joined: Tuple[int, ...]
    departed: Tuple[int, ...]
    drained: Tuple[int, ...]
    carried: Tuple[int, ...]
    blocks_fed: int
    txs_fed: int
    live: int


class _Committee:
    """Mutable per-committee stream state (pending mempool + latency)."""

    __slots__ = ("pending", "latency")

    def __init__(self, pending: int, latency: float) -> None:
        self.pending = pending
        self.latency = latency


class EpochStream:
    """Persistent committee population replaying the trace across epochs.

    Call :meth:`advance` once per epoch with the shard ids the scheduler
    permitted last epoch.  Permitted committees drain their mempool and
    redraw a fresh two-phase latency for their next block; refused ones
    keep accumulating transactions and carry ``l_i - t_j`` forward.
    """

    def __init__(self, config: EpochStreamConfig) -> None:
        self.config = config
        self.blocks: List[BitcoinBlock] = generate_bitcoin_trace(config.trace)
        self.latency_model = TwoPhaseLatencyModel()
        self._root = RandomStreams(config.seed)
        self._cursor = 0
        self._epoch = 0
        self._next_fresh = FRESH_ID_BASE
        self._prev_latencies: Dict[int, float] = {}
        boot = self._root.fork("bootstrap").get("latency")
        self.committees: Dict[int, _Committee] = {
            shard_id: _Committee(0, self._draw_latency(boot))
            for shard_id in range(config.num_committees)
        }

    # -------------------------------------------------------------- #
    def _draw_latency(self, rng: np.random.Generator) -> float:
        model = self.latency_model
        return model.sample_formation(rng) + model.sample_consensus(rng)

    def _mint(self, rng: np.random.Generator) -> int:
        shard_id = self._next_fresh
        self._next_fresh += 1
        self.committees[shard_id] = _Committee(0, self._draw_latency(rng))
        return shard_id

    def live_ids(self) -> List[int]:
        """Sorted ids of the live population (the determinism order)."""
        return sorted(self.committees)

    # -------------------------------------------------------------- #
    def advance(self, permitted_ids: Sequence[int] = ()) -> EpochTick:
        """Evolve one epoch boundary and build the next instance.

        ``permitted_ids`` are the shard ids the scheduler's final block
        included last epoch (empty for the first call).  Draw order is
        fixed (drain, churn, growth, feed) on sorted ids, so the whole
        stream is a pure function of its config.
        """
        config = self.config
        streams = self._root.fork(f"epoch-{self._epoch}")
        permitted = set(permitted_ids) & set(self.committees)

        # 1. Drain: permitted committees shipped their block; they start
        # the next epoch with an empty mempool and a fresh latency draw.
        drain_rng = streams.get("drain")
        prev_ddl = max(
            (self._prev_latencies[sid] for sid in permitted), default=None
        )
        for shard_id in sorted(permitted):
            committee = self.committees[shard_id]
            committee.pending = 0
            committee.latency = self._draw_latency(drain_rng)

        # 2. Carry: refused committees have been working all along (Fig. 3)
        # and re-enter with l_i - t_j, keeping their pending transactions.
        carried: List[int] = []
        if prev_ddl is not None:
            for shard_id in sorted(self._prev_latencies):
                if shard_id in permitted or shard_id not in self.committees:
                    continue
                committee = self.committees[shard_id]
                committee.latency = carry_over_latency(
                    committee.latency, prev_ddl, floor=config.carry_floor
                )
                carried.append(shard_id)

        # 3. Churn: replace a fraction of the population with fresh ids.
        churn_rng = streams.get("churn")
        joined: List[int] = []
        departed: List[int] = []
        victims = int(round(config.churn * len(self.committees)))
        if victims:
            live = self.live_ids()
            picks = churn_rng.choice(len(live), size=min(victims, len(live) - 2), replace=False)
            for index in sorted(int(p) for p in picks):
                shard_id = live[index]
                del self.committees[shard_id]
                departed.append(shard_id)
            for _ in range(len(departed)):
                joined.append(self._mint(churn_rng))

        # 4. Growth: net population drift (crosses the auto-engine split).
        growth_rng = streams.get("growth")
        if config.growth > 0:
            for _ in range(config.growth):
                joined.append(self._mint(growth_rng))
        elif config.growth < 0:
            live = self.live_ids()
            for shard_id in live[: min(-config.growth, len(live) - 2)]:
                del self.committees[shard_id]
                departed.append(shard_id)

        # 5. Feed: replay the trace at ``rate`` blocks per live committee,
        # assigning each block's transactions to one committee's mempool.
        feed_rng = streams.get("feed")
        live = self.live_ids()
        blocks_fed = max(1, int(round(config.rate * len(live))))
        txs_fed = 0
        for _ in range(blocks_fed):
            block = self.blocks[self._cursor % len(self.blocks)]
            self._cursor += 1
            target = live[int(feed_rng.integers(0, len(live)))]
            self.committees[target].pending += block.txs
            txs_fed += block.txs

        # 6. Materialise the epoch instance (paper scaling for Ĉ).
        capacity = config.capacity
        if capacity is None:
            capacity = 1000 * len(live)
        problem = MVComConfig(
            alpha=config.alpha,
            capacity=capacity,
            n_min_fraction=config.n_min_fraction,
            n_max_fraction=config.n_max_fraction,
        )
        shards = [
            _ShardView(shard_id, self.committees[shard_id].pending, self.committees[shard_id].latency)
            for shard_id in live
        ]
        instance = build_instance(shards, problem)
        self._prev_latencies = {
            shard_id: self.committees[shard_id].latency for shard_id in live
        }
        tick = EpochTick(
            epoch=self._epoch,
            instance=instance,
            joined=tuple(joined),
            departed=tuple(departed),
            drained=tuple(sorted(permitted)),
            carried=tuple(carried),
            blocks_fed=blocks_fed,
            txs_fed=txs_fed,
            live=len(live),
        )
        self._epoch += 1
        return tick


@dataclass(frozen=True)
class _ShardView:
    """Duck-typed shard record for :func:`build_instance`."""

    shard_id: int
    tx_count: int
    latency: float
