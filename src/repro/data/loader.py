"""Loading a real transaction trace.

The paper's dataset is a Bitcoin snapshot with rows
``blockID, bhash, btime, txs``.  Users who have such a CSV (the real
snapshot, or any chain export with the same schema) can feed it directly to
the workload builder; everything downstream is agnostic to whether the
trace is real or synthetic.

The loader is strict: schema violations raise with row context instead of
silently producing a corrupted experiment.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence, Union

from repro.data.bitcoin import BitcoinBlock

REQUIRED_COLUMNS = ("blockID", "bhash", "btime", "txs")


class TraceFormatError(ValueError):
    """A trace file violated the expected schema."""


def _parse_row(row: dict, line: int) -> BitcoinBlock:
    try:
        block_id = int(row["blockID"])
        bhash = str(row["bhash"]).strip()
        btime = int(row["btime"])
        txs = int(row["txs"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"line {line}: malformed row {row!r}") from exc
    if not bhash:
        raise TraceFormatError(f"line {line}: empty block hash")
    if txs < 0:
        raise TraceFormatError(f"line {line}: negative tx count {txs}")
    return BitcoinBlock(block_id=block_id, bhash=bhash, btime=btime, txs=txs)


def read_trace_csv(source: Union[str, io.TextIOBase]) -> List[BitcoinBlock]:
    """Read a block trace from a CSV path or open text handle.

    Rows are returned sorted by ``btime`` (snapshot exports are usually but
    not reliably time-ordered).  Duplicate block ids are rejected.
    """
    if isinstance(source, str):
        with open(source, newline="") as handle:
            return read_trace_csv(handle)
    reader = csv.DictReader(source)
    if reader.fieldnames is None:
        raise TraceFormatError("empty trace file")
    missing = [column for column in REQUIRED_COLUMNS if column not in reader.fieldnames]
    if missing:
        raise TraceFormatError(f"missing columns: {missing}")

    blocks = []
    seen_ids = set()
    for line, row in enumerate(reader, start=2):
        block = _parse_row(row, line)
        if block.block_id in seen_ids:
            raise TraceFormatError(f"line {line}: duplicate blockID {block.block_id}")
        seen_ids.add(block.block_id)
        blocks.append(block)
    if not blocks:
        raise TraceFormatError("trace contains no rows")
    blocks.sort(key=lambda block: block.btime)
    return blocks


def write_trace_csv(blocks: Sequence[BitcoinBlock], destination: Union[str, io.TextIOBase]) -> None:
    """Write a trace in the canonical schema (round-trips with the reader)."""
    if isinstance(destination, str):
        with open(destination, "w", newline="") as handle:
            write_trace_csv(blocks, handle)
            return
    writer = csv.writer(destination)
    writer.writerow(REQUIRED_COLUMNS)
    for block in blocks:
        writer.writerow([block.block_id, block.bhash, block.btime, block.txs])
