"""Two-phase latency model.

Each member committee's *two-phase latency* is the sum of

1. its **committee-formation latency** -- the time the committee's miners
   spend solving the PoW election puzzle; the paper sets the expected solving
   time to 600 s.  PoW solving is a memoryless race, so the latency is
   exponential.
2. its **intra-committee consensus latency** -- the time to complete the
   three PBFT voting stages (pre-prepare, prepare, commit); the paper sets
   the expectation to 54.5 s and measures that it is "randomly distributed
   within a particular range" (Fig. 2b).  We model each stage as a gamma
   round-trip, which gives a banded distribution around the mean.

This module is the *fast closed-form* sampler used by the scheduling
experiments (Figs. 8-14).  The protocol-level measurement of the same two
latencies -- actually running PoW races and PBFT message rounds on the DES
engine -- lives in :mod:`repro.chain` and produces Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

#: Paper defaults (Section VI-A).
PAPER_FORMATION_MEAN_S = 600.0
PAPER_CONSENSUS_MEAN_S = 54.5
PBFT_STAGES = ("pre-prepare", "prepare", "commit")


@dataclass(frozen=True)
class TwoPhaseSample:
    """One committee's sampled latency decomposition (seconds)."""

    formation: float
    consensus: float

    @property
    def total(self) -> float:
        """Two-phase latency: formation + consensus."""
        return self.formation + self.consensus

    def __post_init__(self) -> None:
        if self.formation < 0 or self.consensus < 0:
            raise ValueError("latencies must be non-negative")


class TwoPhaseLatencyModel:
    """Sampler for committee two-phase latencies.

    Parameters
    ----------
    formation_mean:
        Expected PoW committee-formation latency (default 600 s).
    consensus_mean:
        Expected total PBFT consensus latency across the three stages
        (default 54.5 s).
    consensus_shape:
        Gamma shape per PBFT stage.  Larger values narrow the band; the
        default of 4 keeps the stage latency comfortably inside a range
        rather than exponential-tailed, matching Fig. 2b's bounded CDFs.
    """

    def __init__(
        self,
        formation_mean: float = PAPER_FORMATION_MEAN_S,
        consensus_mean: float = PAPER_CONSENSUS_MEAN_S,
        consensus_shape: float = 4.0,
    ) -> None:
        if formation_mean <= 0 or consensus_mean <= 0:
            raise ValueError("latency means must be positive")
        if consensus_shape <= 0:
            raise ValueError("consensus_shape must be positive")
        self.formation_mean = float(formation_mean)
        self.consensus_mean = float(consensus_mean)
        self.consensus_shape = float(consensus_shape)

    def sample_formation(self, rng: np.random.Generator) -> float:
        """PoW solving time: exponential with the configured mean."""
        return float(rng.exponential(self.formation_mean))

    def sample_consensus(self, rng: np.random.Generator) -> float:
        """Total PBFT latency: sum of three gamma-distributed stage times."""
        per_stage_mean = self.consensus_mean / len(PBFT_STAGES)
        scale = per_stage_mean / self.consensus_shape
        stages = rng.gamma(shape=self.consensus_shape, scale=scale, size=len(PBFT_STAGES))
        return float(stages.sum())

    def sample(self, rng: np.random.Generator) -> TwoPhaseSample:
        """Sample one committee's two-phase latency."""
        return TwoPhaseSample(
            formation=self.sample_formation(rng),
            consensus=self.sample_consensus(rng),
        )

    def sample_many(self, rng: np.random.Generator, count: int) -> List[TwoPhaseSample]:
        """Sample ``count`` independent committees."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]
