"""Transaction-trace substrate.

The paper drives its simulations with a snapshot of the first 1,500,000
Bitcoin transactions of January 2016, sampled into 1378 blocks with fields
``blockID``, ``bhash``, ``btime``, ``txs``.  That proprietary-ish snapshot is
replaced here by :mod:`repro.data.bitcoin`, a seeded synthetic generator that
reproduces the same schema and aggregate statistics; the scheduling
algorithms only ever observe per-shard ``(tx count, two-phase latency)``
pairs, so the substitution preserves the exercised code path (see DESIGN.md).
"""

from repro.data.bitcoin import BitcoinBlock, BitcoinTraceConfig, generate_bitcoin_trace
from repro.data.latency import TwoPhaseLatencyModel, TwoPhaseSample
from repro.data.shards import build_shards, partition_blocks
from repro.data.workload import EpochWorkload, WorkloadConfig, generate_epoch_workload
from repro.data.loader import TraceFormatError, read_trace_csv, write_trace_csv

__all__ = [
    "BitcoinBlock",
    "BitcoinTraceConfig",
    "generate_bitcoin_trace",
    "TwoPhaseLatencyModel",
    "TwoPhaseSample",
    "build_shards",
    "partition_blocks",
    "EpochWorkload",
    "WorkloadConfig",
    "generate_epoch_workload",
    "TraceFormatError",
    "read_trace_csv",
    "write_trace_csv",
]
