"""Synthetic Bitcoin block trace.

The paper samples 1378 blocks covering the first ~1.5M transactions of
January 2016.  Each record carries four fields: ``blockID``, ``bhash``
(block hash), ``btime`` (block creation timestamp) and ``txs`` (number of
transactions in the block).

We regenerate a trace with the same schema and matching aggregate shape:

* **block count** defaults to 1378;
* **transactions per block** follow a clipped lognormal whose mean is tuned
  so the whole trace carries ~1.5M transactions (~1088 TXs/block, which is
  also the real Jan-2016 average);
* **inter-block time** is exponential with mean 600 s (Bitcoin's target);
* **bhash** is a deterministic double-SHA256 over the block's contents, so
  hashes are stable for a given seed and unique across blocks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.rng import spawn_rng

#: 2016-01-01 00:00:00 UTC, the start of the paper's snapshot window.
JANUARY_2016_UNIX = 1451606400

#: Aggregate targets from the paper: 1378 blocks holding ~1.5M transactions.
PAPER_BLOCK_COUNT = 1378
PAPER_TOTAL_TXS = 1_500_000


@dataclass(frozen=True)
class BitcoinBlock:
    """One record of the transaction trace (schema copied from the paper)."""

    block_id: int
    bhash: str
    btime: int
    txs: int

    def __post_init__(self) -> None:
        if self.txs < 0:
            raise ValueError(f"block {self.block_id} has negative tx count {self.txs}")


@dataclass(frozen=True)
class BitcoinTraceConfig:
    """Parameters of the synthetic trace generator.

    The defaults reproduce the aggregate statistics of the paper's snapshot.
    ``sigma`` controls the spread of TXs-per-block (real Jan-2016 blocks vary
    roughly 3x around the mean); ``max_txs_per_block`` caps outliers the way
    the 1MB block-size limit did.
    """

    num_blocks: int = PAPER_BLOCK_COUNT
    total_txs: int = PAPER_TOTAL_TXS
    sigma: float = 0.45
    mean_interblock_seconds: float = 600.0
    max_txs_per_block: int = 4096
    start_time: int = JANUARY_2016_UNIX
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.total_txs < self.num_blocks:
            raise ValueError("need at least one transaction per block")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.mean_interblock_seconds <= 0:
            raise ValueError("mean_interblock_seconds must be positive")


def _block_hash(block_id: int, btime: int, txs: int, seed: int) -> str:
    """Deterministic stand-in for a Bitcoin block hash (double SHA-256)."""
    preimage = f"{seed}/{block_id}/{btime}/{txs}".encode("utf-8")
    return hashlib.sha256(hashlib.sha256(preimage).digest()).hexdigest()


def generate_bitcoin_trace(config: BitcoinTraceConfig = BitcoinTraceConfig()) -> List[BitcoinBlock]:
    """Generate the synthetic block trace.

    The lognormal draws are renormalised so the trace total matches
    ``config.total_txs`` exactly (residual rounding error is folded into the
    largest block, mirroring how a real snapshot has an exact TX count).
    """
    rng = spawn_rng(config.seed, "bitcoin-trace")
    mean_txs = config.total_txs / config.num_blocks

    # Lognormal with unit mean, then scaled to the target per-block mean.
    mu = -0.5 * config.sigma**2
    raw = rng.lognormal(mean=mu, sigma=config.sigma, size=config.num_blocks)
    txs = np.clip(raw * mean_txs, 1, config.max_txs_per_block)
    txs = np.floor(txs * (config.total_txs / txs.sum())).astype(np.int64)
    txs = np.maximum(txs, 1)
    # Fold the rounding residual into blocks with cap headroom, largest
    # headroom first, so the exact total holds without breaching the cap.
    residual = config.total_txs - int(txs.sum())
    if residual < 0:
        raise RuntimeError("trace renormalisation overshot the TX total")
    for index in np.argsort(txs, kind="stable"):
        if residual == 0:
            break
        headroom = config.max_txs_per_block - int(txs[index])
        grant = min(headroom, residual)
        txs[index] += grant
        residual -= grant
    if residual > 0:
        raise ValueError(
            "total_txs cannot fit under max_txs_per_block across num_blocks"
        )
    if txs.min() < 1:
        raise RuntimeError("trace renormalisation produced an empty block")

    gaps = rng.exponential(config.mean_interblock_seconds, size=config.num_blocks)
    btimes = (config.start_time + np.cumsum(gaps)).astype(np.int64)

    blocks = []
    for block_id in range(config.num_blocks):
        count = int(txs[block_id])
        when = int(btimes[block_id])
        blocks.append(
            BitcoinBlock(
                block_id=block_id,
                bhash=_block_hash(block_id, when, count, config.seed),
                btime=when,
                txs=count,
            )
        )
    return blocks


def trace_statistics(blocks: Sequence[BitcoinBlock]) -> dict:
    """Summary statistics used by tests and EXPERIMENTS.md."""
    counts = np.array([block.txs for block in blocks], dtype=np.int64)
    times = np.array([block.btime for block in blocks], dtype=np.int64)
    gaps = np.diff(times) if len(times) > 1 else np.array([0.0])
    return {
        "num_blocks": len(blocks),
        "total_txs": int(counts.sum()),
        "mean_txs": float(counts.mean()) if len(blocks) else 0.0,
        "std_txs": float(counts.std()) if len(blocks) else 0.0,
        "min_txs": int(counts.min()) if len(blocks) else 0,
        "max_txs": int(counts.max()) if len(blocks) else 0,
        "mean_interblock_seconds": float(gaps.mean()) if len(gaps) else 0.0,
        "span_seconds": float(times[-1] - times[0]) if len(times) > 1 else 0.0,
    }
