"""Per-schedule outcome summaries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import EpochInstance
from repro.metrics.valuable_degree import valuable_degree


@dataclass(frozen=True)
class ScheduleSummary:
    """Everything the evaluation section reports about one schedule."""

    algorithm: str
    utility: float
    throughput_txs: int
    cumulative_age: float
    committees_selected: int
    capacity_used_fraction: float
    valuable_degree: float
    feasible: bool

    def as_row(self) -> dict:
        """Flat dict for CSV writers."""
        return {
            "algorithm": self.algorithm,
            "utility": round(self.utility, 3),
            "throughput_txs": self.throughput_txs,
            "cumulative_age_s": round(self.cumulative_age, 3),
            "committees_selected": self.committees_selected,
            "capacity_used": round(self.capacity_used_fraction, 4),
            "valuable_degree": round(self.valuable_degree, 3),
            "feasible": self.feasible,
        }


def summarize_schedule(
    instance: EpochInstance,
    mask: np.ndarray,
    algorithm: str = "unknown",
) -> ScheduleSummary:
    """Compute the full metric suite for one selection mask."""
    mask = np.asarray(mask, dtype=bool)
    weight = instance.weight(mask)
    return ScheduleSummary(
        algorithm=algorithm,
        utility=instance.utility(mask),
        throughput_txs=weight,
        cumulative_age=instance.cumulative_age(mask),
        committees_selected=int(mask.sum()),
        capacity_used_fraction=weight / instance.capacity,
        valuable_degree=valuable_degree(instance, mask),
        feasible=instance.is_feasible(mask),
    )
