"""Convergence-trace utilities for the figure benches."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def align_traces(traces: Dict[str, Sequence[float]], length: int = None) -> Dict[str, np.ndarray]:
    """Pad every trace (holding its last value) to a common length.

    One-shot algorithms (DP, Greedy) produce length-1 traces; iterative ones
    produce budget-length traces.  The figures plot them on shared axes.
    """
    arrays = {name: np.asarray(trace, dtype=np.float64) for name, trace in traces.items()}
    for name, array in arrays.items():
        if array.size == 0:
            raise ValueError(f"trace {name!r} is empty")
    if length is None:
        length = max(array.size for array in arrays.values())
    aligned = {}
    for name, array in arrays.items():
        if array.size >= length:
            aligned[name] = array[:length].copy()
        else:
            pad = np.full(length - array.size, array[-1])
            aligned[name] = np.concatenate([array, pad])
    return aligned


def converged_value(trace: Sequence[float], tail_fraction: float = 0.1) -> float:
    """The converged utility: mean of the trace's final ``tail_fraction``."""
    array = np.asarray(trace, dtype=np.float64)
    if array.size == 0:
        raise ValueError("empty trace")
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must lie in (0, 1]")
    tail = max(1, int(round(array.size * tail_fraction)))
    return float(array[-tail:].mean())


def iterations_to_reach(trace: Sequence[float], target: float) -> int:
    """First iteration at which the trace reaches ``target`` (-1 if never)."""
    array = np.asarray(trace, dtype=np.float64)
    hits = np.flatnonzero(array >= target)
    return int(hits[0]) if hits.size else -1


def trace_statistics(trace: Sequence[float]) -> dict:
    """Summary stats of a utility trace (used in EXPERIMENTS.md tables)."""
    array = np.asarray(trace, dtype=np.float64)
    if array.size == 0:
        raise ValueError("empty trace")
    return {
        "first": float(array[0]),
        "last": float(array[-1]),
        "max": float(array.max()),
        "converged": converged_value(array),
        "iterations": int(array.size),
        "iters_to_99pct": iterations_to_reach(array, 0.99 * float(array.max())),
    }
