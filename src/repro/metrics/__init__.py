"""Evaluation metrics.

* :mod:`repro.metrics.valuable_degree` -- the paper's Valuable Degree
  (Section VI-E).
* :mod:`repro.metrics.summary` -- throughput / age / utility summaries per
  schedule.
* :mod:`repro.metrics.traces` -- trace alignment and statistics helpers for
  the convergence figures.
* :mod:`repro.metrics.ks` -- scipy-free two-sample Kolmogorov-Smirnov
  statistic/p-value for the engine-parity tests and benches.
"""

from repro.metrics.valuable_degree import valuable_degree, per_shard_valuable_degree
from repro.metrics.summary import ScheduleSummary, summarize_schedule
from repro.metrics.traces import align_traces, trace_statistics, converged_value
from repro.metrics.fairness import fairness_report, jain_index, selection_counts
from repro.metrics.ks import ks_critical_value, ks_pvalue, ks_statistic, ks_two_sample

__all__ = [
    "ks_critical_value",
    "ks_pvalue",
    "ks_statistic",
    "ks_two_sample",
    "valuable_degree",
    "per_shard_valuable_degree",
    "ScheduleSummary",
    "summarize_schedule",
    "align_traces",
    "trace_statistics",
    "converged_value",
    "fairness_report",
    "jain_index",
    "selection_counts",
]
