"""Valuable Degree (Section VI-E).

    "we define a Valuable Degree, which is calculated as
    :math:`\\sum_{i \\in I_j, j \\in J} (x_i \\cdot s_i / \\Pi_i)`"

-- positively related to the number of processed TXs and inversely related
to their cumulative age, so a high Valuable Degree means the algorithm
selects many-TX, low-age shards.

Edge case the paper leaves implicit: the slowest selected shard can have
:math:`\\Pi_i = t_j - l_i = 0` (it *defines* the DDL), which would divide by
zero.  We floor the age at ``age_floor`` seconds (default 1 s, i.e. "this
shard waited essentially nothing"), and document the floor in
EXPERIMENTS.md.  Results are insensitive to the floor because at most one
shard per epoch sits on it.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EpochInstance

DEFAULT_AGE_FLOOR_S = 1.0


def per_shard_valuable_degree(
    instance: EpochInstance,
    mask: np.ndarray,
    age_floor: float = DEFAULT_AGE_FLOOR_S,
) -> np.ndarray:
    """Each selected shard's contribution ``s_i / max(Pi_i, age_floor)``.

    Returns an array aligned with the instance's shards; unselected shards
    contribute zero.
    """
    if age_floor <= 0:
        raise ValueError("age_floor must be positive")
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (instance.num_shards,):
        raise ValueError("mask length does not match instance")
    ages = np.maximum(instance.ages, age_floor)
    contributions = np.where(mask, instance.tx_counts / ages, 0.0)
    return contributions


def valuable_degree(
    instance: EpochInstance,
    mask: np.ndarray,
    age_floor: float = DEFAULT_AGE_FLOOR_S,
) -> float:
    """Total Valuable Degree of a selection."""
    return float(per_shard_valuable_degree(instance, mask, age_floor).sum())
