"""Fairness metrics over committee selection.

MVCom's utility can rationally starve small or stale committees (see the
pipeline ablation), which matters in a permissionless system: committees
that never land in a final block earn nothing and leave.  These metrics
quantify that effect across epochs:

* :func:`selection_counts` -- per-committee admission counts;
* :func:`jain_index` -- Jain's fairness index of those counts
  (1 = perfectly even, 1/n = one committee takes everything);
* :func:`starved_fraction` -- committees never admitted at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np


def selection_counts(epochs: Iterable[Tuple[Sequence[int], Sequence[bool]]]) -> Dict[int, int]:
    """Tally admissions from ``(shard_ids, mask)`` pairs, one per epoch.

    Every committee that *appeared* in any epoch is present in the result
    (with 0 if never admitted).
    """
    counts: Dict[int, int] = {}
    for shard_ids, mask in epochs:
        shard_ids = list(shard_ids)
        mask = list(mask)
        if len(shard_ids) != len(mask):
            raise ValueError("shard_ids and mask lengths differ")
        for shard_id, admitted in zip(shard_ids, mask):
            counts.setdefault(int(shard_id), 0)
            if admitted:
                counts[int(shard_id)] += 1
    return counts


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index :math:`(\\sum x)^2 / (n \\sum x^2)`."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("need at least one value")
    if (array < 0).any():
        raise ValueError("values must be non-negative")
    denominator = array.size * float((array**2).sum())
    if denominator == 0:
        return 1.0  # all-zero: trivially even
    return float(array.sum()) ** 2 / denominator


def starved_fraction(counts: Dict[int, int]) -> float:
    """Fraction of committees never admitted."""
    if not counts:
        raise ValueError("no committees observed")
    return sum(1 for value in counts.values() if value == 0) / len(counts)


def fairness_report(epochs: Iterable[Tuple[Sequence[int], Sequence[bool]]]) -> dict:
    """One-row summary for the reporting layer."""
    counts = selection_counts(epochs)
    values = list(counts.values())
    return {
        "committees_seen": len(counts),
        "jain_index": round(jain_index(values), 4),
        "starved_fraction": round(starved_fraction(counts), 4),
        "max_admissions": max(values),
        "min_admissions": min(values),
    }
