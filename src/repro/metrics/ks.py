"""Two-sample Kolmogorov-Smirnov helpers (no scipy in this environment).

Used by the chain fastpath parity tests and benches to compare latency
samples from the DES reference simulation against the closed-form kernel:
the kernel is distributionally exact only up to one documented
approximation (see :mod:`repro.chain.fastpath`), so equivalence is
asserted statistically rather than byte-wise.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


def ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample KS statistic: sup |F_a - F_b| over the pooled grid."""
    a = np.sort(np.asarray(sample_a, dtype=np.float64))
    b = np.sort(np.asarray(sample_b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.union1d(a, b)
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical_value(n: int, m: int, alpha: float = 0.01) -> float:
    """Large-sample two-sample KS rejection threshold at level ``alpha``.

    ``c(alpha) * sqrt((n + m) / (n * m))`` with
    ``c(alpha) = sqrt(-ln(alpha / 2) / 2)`` (1.628 at alpha=0.01, matching
    the constant used across the engine-parity tests).
    """
    c_alpha = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c_alpha * math.sqrt((n + m) / (n * m))


def ks_pvalue(d_stat: float, n: int, m: int, terms: int = 100) -> float:
    """Asymptotic p-value for a two-sample KS statistic.

    Kolmogorov's series ``Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1}
    exp(-2 k^2 lambda^2)`` evaluated at the effective-sample-size scaled
    statistic; accurate for the sample sizes the benches use (>= ~25 per
    side).
    """
    if n <= 0 or m <= 0:
        raise ValueError("sample sizes must be positive")
    effective = math.sqrt(n * m / (n + m))
    lam = (effective + 0.12 + 0.11 / effective) * d_stat
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_two_sample(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alpha: float = 0.01,
) -> Tuple[float, float, bool]:
    """(statistic, p-value, rejected-at-alpha) for two samples."""
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    d_stat = ks_statistic(a, b)
    p_value = ks_pvalue(d_stat, a.size, b.size)
    return d_stat, p_value, d_stat >= ks_critical_value(a.size, b.size, alpha)
