"""Message-passing network model on the DES engine.

Point-to-point delays are lognormal (median ``base_delay``, sigma
``jitter_sigma``).  Each node has a finite send throughput: a burst of
``k`` messages from one node serialises at ``1 / bandwidth`` spacing before
propagation delay, which is what couples latency to fan-out size in
broadcasts (and, at the protocol level, makes bigger committees slower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable

import numpy as np

from repro.chain.params import NetworkParams
from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class Message:
    """An in-flight protocol message."""

    sender: int
    recipient: int
    kind: str
    payload: object
    sent_at: float


class Network:
    """Delivers messages between node ids with stochastic delays."""

    def __init__(
        self,
        engine: SimulationEngine,
        params: NetworkParams,
        rng: np.random.Generator,
    ) -> None:
        self.engine = engine
        self.params = params
        self.rng = rng
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._messages_sent = 0
        self._messages_dropped = 0
        #: virtual time at which each sender's NIC is next free
        self._send_free_at: Dict[int, float] = {}

    @property
    def messages_sent(self) -> int:
        """Messages handed to the network (including dropped ones)."""
        return self._messages_sent

    @property
    def messages_dropped(self) -> int:
        """Messages lost to failure injection."""
        return self._messages_dropped

    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Attach a node's message handler."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler

    def propagation_delay(self) -> float:
        """One-way propagation delay sample."""
        mu = np.log(self.params.base_delay)
        return float(self.rng.lognormal(mean=mu, sigma=self.params.jitter_sigma))

    def send(self, sender: int, recipient: int, kind: str, payload: object = None) -> None:
        """Queue one message for delivery (may be dropped by failure injection)."""
        if recipient not in self._handlers:
            raise KeyError(f"no handler registered for node {recipient}")
        self._messages_sent += 1
        if self.params.loss_probability > 0.0 and self.rng.random() < self.params.loss_probability:
            self._messages_dropped += 1
            return
        now = self.engine.now
        # Serialise through the sender's NIC.
        nic_free = max(self._send_free_at.get(sender, now), now)
        transmit_done = nic_free + 1.0 / self.params.bandwidth_msgs_per_s
        self._send_free_at[sender] = transmit_done
        deliver_at = transmit_done + self.propagation_delay()
        message = Message(sender=sender, recipient=recipient, kind=kind, payload=payload, sent_at=now)
        self.engine.schedule_at(deliver_at, lambda: self._handlers[recipient](message))

    def broadcast(self, sender: int, recipients: Iterable[int], kind: str, payload: object = None) -> None:
        """Send one message to every recipient (serialised at the sender)."""
        for recipient in recipients:
            if recipient != sender:
                self.send(sender, recipient, kind, payload)
