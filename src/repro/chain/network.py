"""Message-passing network model on the DES engine.

Point-to-point delays are lognormal (median ``base_delay``, sigma
``jitter_sigma``).  Each node has a finite send throughput: a burst of
``k`` messages from one node serialises at ``1 / bandwidth`` spacing before
propagation delay, which is what couples latency to fan-out size in
broadcasts (and, at the protocol level, makes bigger committees slower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable

import numpy as np

from repro.chain.params import NetworkParams
from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class Message:
    """An in-flight protocol message."""

    sender: int
    recipient: int
    kind: str
    payload: object
    sent_at: float


class Network:
    """Delivers messages between node ids with stochastic delays.

    ``buffered=True`` (the default) lets :meth:`broadcast` block-draw the
    propagation delays of a whole burst up front instead of one
    ``rng.lognormal`` call per message.  numpy's ``Generator.lognormal``
    consumes the bit stream identically for ``size=k`` and ``k`` scalar
    draws, and a burst is synchronous (no other draw from the shared
    stream can interleave between prefill and the last send), so results
    stay byte-identical to the unbuffered path.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        params: NetworkParams,
        rng: np.random.Generator,
        buffered: bool = True,
    ) -> None:
        self.engine = engine
        self.params = params
        self.rng = rng
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._messages_sent = 0
        self._messages_dropped = 0
        #: virtual time at which each sender's NIC is next free
        self._send_free_at: Dict[int, float] = {}
        self._inv_bandwidth = 1.0 / params.bandwidth_msgs_per_s
        self._log_base_delay = float(np.log(params.base_delay))
        self._buffered = buffered
        self._delay_buffer: np.ndarray = np.empty(0)
        self._delay_pos = 0
        self._next_addr = 0

    @property
    def messages_sent(self) -> int:
        """Messages handed to the network (including dropped ones)."""
        return self._messages_sent

    @property
    def messages_dropped(self) -> int:
        """Messages lost to failure injection."""
        return self._messages_dropped

    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Attach a node's message handler."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler

    def claim_address(self) -> int:
        """Allocate the next free network address.

        Addresses are handed out sequentially per network instance, so
        they are deterministic, collision-free, and independent of
        PYTHONHASHSEED (unlike the builtin ``hash()``-derived scheme this
        replaced; see lint rule MV009).
        """
        addr = self._next_addr
        self._next_addr += 1
        return addr

    def propagation_delay(self) -> float:
        """One-way propagation delay sample (buffer-aware)."""
        if self._delay_pos < self._delay_buffer.size:
            value = self._delay_buffer[self._delay_pos]
            self._delay_pos += 1
            return float(value)
        return float(
            self.rng.lognormal(mean=self._log_base_delay, sigma=self.params.jitter_sigma)
        )

    def prefill_delays(self, count: int) -> None:
        """Block-draw the next ``count`` propagation delays into the buffer.

        Only safe when every buffered delay is consumed before any *other*
        draw from the shared ``rng`` — i.e. within one synchronous
        broadcast burst.  With ``loss_probability > 0`` each send also
        draws a uniform before its delay, which would interleave, so the
        prefill is disabled and sends fall back to scalar draws.
        """
        if not self._buffered or count <= 0 or self.params.loss_probability > 0.0:
            return
        remaining = self._delay_buffer.size - self._delay_pos
        if remaining >= count:
            return
        draw = self.rng.lognormal(
            mean=self._log_base_delay,
            sigma=self.params.jitter_sigma,
            size=count - remaining,
        )
        if remaining > 0:
            self._delay_buffer = np.concatenate(
                [self._delay_buffer[self._delay_pos :], draw]
            )
        else:
            self._delay_buffer = draw
        self._delay_pos = 0

    def send(self, sender: int, recipient: int, kind: str, payload: object = None) -> None:
        """Queue one message for delivery (may be dropped by failure injection)."""
        if recipient not in self._handlers:
            raise KeyError(f"no handler registered for node {recipient}")
        self._messages_sent += 1
        if self.params.loss_probability > 0.0 and self.rng.random() < self.params.loss_probability:
            self._messages_dropped += 1
            return
        now = self.engine.now
        # Serialise through the sender's NIC.
        nic_free = max(self._send_free_at.get(sender, now), now)
        transmit_done = nic_free + self._inv_bandwidth
        self._send_free_at[sender] = transmit_done
        deliver_at = transmit_done + self.propagation_delay()
        message = Message(sender=sender, recipient=recipient, kind=kind, payload=payload, sent_at=now)
        self.engine.schedule_at(deliver_at, lambda: self._handlers[recipient](message))

    def broadcast(self, sender: int, recipients: Iterable[int], kind: str, payload: object = None) -> None:
        """Send one message to every recipient (serialised at the sender)."""
        targets = [recipient for recipient in recipients if recipient != sender]
        self.prefill_delays(len(targets))
        for recipient in targets:
            self.send(sender, recipient, kind, payload)
