"""Stage 1: PoW-based committee election.

Elastico elects committee members by PoW: each node grinds on a puzzle
seeded with the epoch randomness; the solution's low-order bits assign the
solver to a committee.  PoW solving is memoryless, so node ``v``'s solve
time is exponential with mean ``difficulty / hash_power(v)``.

The per-committee *formation latency* is when the committee reaches its
full size ``c`` -- i.e. the ``c``-th order statistic of its members' solve
times -- **plus** the overlay-configuration time (stage 2, see
:mod:`repro.chain.overlay`).  The difficulty is calibrated so the expected
solve time of a unit-hash-power node matches the paper's 600 s.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.chain.node import Node


@dataclass(frozen=True)
class PowSolution:
    """One node's puzzle solution."""

    node_id: int
    solve_time: float
    committee_index: int
    nonce_hash: str


def solve_times(nodes: Sequence[Node], mean_solve_s: float, rng: np.random.Generator) -> np.ndarray:
    """Exponential solve times with per-node rates proportional to hash power."""
    if mean_solve_s <= 0:
        raise ValueError("mean_solve_s must be positive")
    scales = np.array([mean_solve_s / node.hash_power for node in nodes])
    return rng.exponential(scales)


def _committee_of(node_id: int, epoch_randomness: str, num_committees: int) -> int:
    """Elastico's identity-to-committee mapping: low bits of H(randomness, id)."""
    digest = hashlib.sha256(f"{epoch_randomness}:{node_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % num_committees


def run_pow_election(
    nodes: Sequence[Node],
    num_committees: int,
    mean_solve_s: float,
    epoch_randomness: str,
    rng: np.random.Generator,
) -> List[PowSolution]:
    """Run the PoW race and assign every solver to a committee.

    Returns solutions sorted by solve time (arrival order at the directory).
    """
    if num_committees <= 0:
        raise ValueError("num_committees must be positive")
    times = solve_times(nodes, mean_solve_s, rng)
    solutions = []
    for node, solve_time in zip(nodes, times):
        committee_index = _committee_of(node.node_id, epoch_randomness, num_committees)
        digest = hashlib.sha256(
            f"{epoch_randomness}:{node.node_id}:{solve_time:.6f}".encode("utf-8")
        ).hexdigest()
        solutions.append(
            PowSolution(
                node_id=node.node_id,
                solve_time=float(solve_time),
                committee_index=committee_index,
                nonce_hash=digest,
            )
        )
    solutions.sort(key=lambda solution: solution.solve_time)
    return solutions


def committee_fill_times(
    solutions: Sequence[PowSolution],
    num_committees: int,
    committee_size: int,
) -> Dict[int, float]:
    """When each committee reaches ``committee_size`` members.

    Committees that never fill (not enough solvers hashed into them) are
    absent from the result -- they simply do not form this epoch, exactly
    like slow groups missing the final committee's deadline.
    """
    counts = {index: 0 for index in range(num_committees)}
    fill_times: Dict[int, float] = {}
    for solution in solutions:
        index = solution.committee_index
        if index in fill_times:
            continue
        counts[index] += 1
        if counts[index] == committee_size:
            fill_times[index] = solution.solve_time
    return fill_times


def committee_members(
    solutions: Sequence[PowSolution],
    num_committees: int,
    committee_size: int,
) -> Dict[int, List[int]]:
    """The first ``committee_size`` solvers hashed into each committee."""
    members: Dict[int, List[int]] = {index: [] for index in range(num_committees)}
    for solution in solutions:
        bucket = members[solution.committee_index]
        if len(bucket) < committee_size:
            bucket.append(solution.node_id)
    return {index: bucket for index, bucket in members.items() if len(bucket) == committee_size}
