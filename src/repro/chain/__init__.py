"""Elastico-style sharded-blockchain substrate.

The paper motivates MVCom by *measuring* an Elastico [2] deployment's
two-phase latency (Fig. 2).  This subpackage implements that substrate on
the discrete-event engine: PoW-based committee formation, overlay
configuration, PBFT intra-committee consensus, final consensus with a
pluggable committee scheduler, and epoch-randomness refreshing -- the five
stages of Section I.

The layer boundaries match the paper's:

* :mod:`repro.chain.pow`        -- stage 1, committee formation;
* :mod:`repro.chain.overlay`    -- stage 2, overlay configuration;
* :mod:`repro.chain.pbft`       -- stage 3, intra-committee consensus;
* :mod:`repro.chain.final`      -- stage 4, final consensus (where MVCom plugs in);
* :mod:`repro.chain.randomness` -- stage 5, epoch randomness;
* :mod:`repro.chain.elastico`   -- the epoch orchestrator tying them together;
* :mod:`repro.chain.measurement`-- the Fig. 2 measurement campaign.
"""

from repro.chain.params import ChainParams, NetworkParams
from repro.chain.network import Network
from repro.chain.node import Node, spawn_nodes
from repro.chain.committee import Committee
from repro.chain.blocks import FinalBlock, RootChain, ShardBlock
from repro.chain.elastico import ElasticoSimulation, EpochOutcome
from repro.chain.measurement import TwoPhaseMeasurement, measure_two_phase_latency
from repro.chain.stats import ChainRunStats, EpochStats, epoch_stats
from repro.chain.mempool import Mempool, Transaction, assign_to_committees

__all__ = [
    "ChainParams",
    "NetworkParams",
    "Network",
    "Node",
    "spawn_nodes",
    "Committee",
    "ShardBlock",
    "FinalBlock",
    "RootChain",
    "ElasticoSimulation",
    "EpochOutcome",
    "TwoPhaseMeasurement",
    "measure_two_phase_latency",
    "ChainRunStats",
    "EpochStats",
    "epoch_stats",
    "Mempool",
    "Transaction",
    "assign_to_committees",
]
