"""Stage 4: final consensus, where the MVCom scheduler plugs in.

The final committee collects shard blocks as member committees finish
their two-phase pipeline, stops listening at the :math:`N_{max}` fraction
(Alg. 1 line 29), asks a *scheduler* which shards to permit, and then runs
its own PBFT round to seal the final block.  The scheduler is pluggable:
the paper's SE algorithm, any baseline, or the trivial "take everything"
policy (the Elastico default MVCom improves upon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analysis.contracts import sane_instance
from repro.chain.blocks import FinalBlock, RootChain, ShardBlock, _hash_payload
from repro.chain.committee import Committee, calibrated_verify_mean
from repro.chain.fastpath import run_pbft
from repro.chain.params import ChainParams
from repro.core.problem import EpochInstance, MVComConfig, build_instance
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry

#: A scheduler maps an epoch instance to a boolean selection mask.
SchedulerFn = Callable[[EpochInstance], np.ndarray]


def take_everything(instance: EpochInstance) -> np.ndarray:
    """The unscheduled Elastico behaviour: permit every arrived shard that fits.

    Shards are admitted in arrival (latency) order until the capacity is
    exhausted -- exactly what a scheduler-less final committee would do.
    """
    order = np.argsort(instance.latencies, kind="stable")
    mask = np.zeros(instance.num_shards, dtype=bool)
    weight = 0
    for position in order:
        tx = int(instance.tx_counts[position])
        if weight + tx <= instance.capacity:
            mask[position] = True
            weight += tx
    return mask


class CrosslinkAggregator:
    """Memory-bounded fold of submitted shards into the MVCom instance.

    The object path hands stage 4 a Python list of :class:`ShardBlock`
    objects -- ~1024 dataclasses plus their list at eth2 scale, rebuilt
    into arrays by ``build_instance`` anyway.  This aggregator keeps the
    three features the scheduler actually needs (committee id, ``s_i``,
    two-phase ``l_i``) in running numpy arrays with amortised-doubling
    growth, accepting per-shard :meth:`add` calls or whole-batch
    :meth:`extend` calls from
    :func:`repro.chain.committee.run_intra_consensus_streaming`, and
    feeds :meth:`FinalCommittee.run_streaming` directly.  The resulting
    epoch is byte-identical to the object path.
    """

    def __init__(self, capacity_hint: int = 256) -> None:
        hint = max(int(capacity_hint), 1)
        self._ids = np.empty(hint, dtype=np.int64)
        self._tx_counts = np.empty(hint, dtype=np.int64)
        self._latencies = np.empty(hint, dtype=np.float64)
        self._count = 0

    def _reserve(self, extra: int) -> None:
        needed = self._count + extra
        if needed <= self._ids.shape[0]:
            return
        new_size = max(needed, 2 * self._ids.shape[0])
        for name in ("_ids", "_tx_counts", "_latencies"):
            grown = np.empty(new_size, dtype=getattr(self, name).dtype)
            grown[: self._count] = getattr(self, name)[: self._count]
            setattr(self, name, grown)

    def add(self, committee_id: int, tx_count: int, latency: float) -> None:
        """Fold in one submitted shard (arrival order = submission order)."""
        self._reserve(1)
        self._ids[self._count] = committee_id
        self._tx_counts[self._count] = tx_count
        self._latencies[self._count] = latency
        self._count += 1

    def extend(
        self,
        ids: np.ndarray,
        tx_counts: np.ndarray,
        latencies: np.ndarray,
    ) -> None:
        """Fold in a batch of submitted shards (the streaming-sink protocol)."""
        extra = len(ids)
        if not (len(tx_counts) == extra and len(latencies) == extra):
            raise ValueError("ids, tx_counts and latencies must have equal length")
        self._reserve(extra)
        stop = self._count + extra
        self._ids[self._count : stop] = ids
        self._tx_counts[self._count : stop] = tx_counts
        self._latencies[self._count : stop] = latencies
        self._count = stop

    @property
    def count(self) -> int:
        """Number of shards folded in so far."""
        return self._count

    @property
    def ids(self) -> np.ndarray:
        """Committee ids in submission order (view, do not mutate)."""
        return self._ids[: self._count]

    @property
    def tx_counts(self) -> np.ndarray:
        """Per-shard ``s_i`` in submission order (view, do not mutate)."""
        return self._tx_counts[: self._count]

    @property
    def latencies(self) -> np.ndarray:
        """Per-shard two-phase ``l_i`` in submission order (view)."""
        return self._latencies[: self._count]

    def arrival_positions(self, n_max_fraction: float) -> np.ndarray:
        """Positions kept by the N_max cutoff, fastest-first (stable).

        Mirrors :meth:`FinalCommittee.arrival_window` exactly: a stable
        latency sort of the submission-ordered arrays equals Python's
        stable ``sorted`` over the block list.
        """
        count = max(1, int(np.floor(n_max_fraction * self._count)))
        return np.argsort(self.latencies, kind="stable")[:count]


@sane_instance
def _instance_from_arrays(
    tx_counts: np.ndarray,
    latencies: np.ndarray,
    shard_ids: np.ndarray,
    config: MVComConfig,
) -> EpochInstance:
    """Array-native :func:`repro.core.problem.build_instance` equivalent.

    Same ``REPRO_CONTRACTS`` validation, no per-shard object hop: the
    aggregator's arrays become the instance's arrays directly.
    """
    return EpochInstance(
        tx_counts=tx_counts,
        latencies=latencies,
        config=config,
        shard_ids=shard_ids,
    )


@dataclass
class FinalConsensusResult:
    """Everything stage 4 produced for one epoch."""

    block: FinalBlock
    instance: EpochInstance
    permitted_mask: np.ndarray
    ddl: float
    final_pbft_latency: float
    permitted_txs: int
    permitted_committees: int


class FinalCommittee:
    """The epoch's leader committee (C5 in Fig. 1)."""

    def __init__(
        self,
        committee: Committee,
        params: ChainParams,
        mvcom_config: MVComConfig,
        scheduler: SchedulerFn,
    ) -> None:
        self.committee = committee
        self.params = params
        self.mvcom_config = mvcom_config
        self.scheduler = scheduler

    def arrival_window(self, shard_blocks: Sequence[ShardBlock]) -> List[ShardBlock]:
        """Apply the N_max listening cutoff (Alg. 1 line 29)."""
        count = max(1, int(np.floor(self.mvcom_config.n_max_fraction * len(shard_blocks))))
        return sorted(shard_blocks, key=lambda block: block.two_phase_latency)[:count]

    def run(
        self,
        shard_blocks: Sequence[ShardBlock],
        chain: RootChain,
        randomness: str,
        rng: np.random.Generator,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> Optional[FinalConsensusResult]:
        """Execute stage 4: schedule shards, run final PBFT, append the block."""
        if not shard_blocks:
            return None
        arrived = self.arrival_window(shard_blocks)
        instance = build_instance(arrived, self.mvcom_config)

        def hashes_for_mask(mask: np.ndarray):
            permitted = [arrived[i] for i in np.flatnonzero(mask)]
            hashes = tuple(sorted(shard.block_hash for shard in permitted))
            return hashes, int(sum(shard.tx_count for shard in permitted))

        return self._finalize(
            instance, len(arrived), hashes_for_mask, chain, randomness, rng, telemetry
        )

    def run_streaming(
        self,
        aggregator: CrosslinkAggregator,
        chain: RootChain,
        randomness: str,
        rng: np.random.Generator,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> Optional[FinalConsensusResult]:
        """Stage 4 fed by a :class:`CrosslinkAggregator`, no block objects.

        Byte-identical to :meth:`run` over the same submissions: the
        stable latency argsort reproduces :meth:`arrival_window`, the
        instance is built from the aggregator's arrays directly, and the
        permitted shard hashes are recomputed from ``(id, epoch,
        tx_count)`` -- the same preimage a :class:`ShardBlock` hashes --
        for the permitted positions only.
        """
        if aggregator.count == 0:
            return None
        keep = aggregator.arrival_positions(self.mvcom_config.n_max_fraction)
        tx_counts = aggregator.tx_counts[keep]
        shard_ids = aggregator.ids[keep]
        instance = _instance_from_arrays(
            tx_counts, aggregator.latencies[keep], shard_ids, self.mvcom_config
        )
        epoch = self.committee.epoch

        def hashes_for_mask(mask: np.ndarray):
            picked = np.flatnonzero(mask)
            hashes = tuple(
                sorted(
                    _hash_payload("shard", int(shard_ids[i]), epoch, int(tx_counts[i]))
                    for i in picked
                )
            )
            return hashes, int(tx_counts[picked].sum())

        return self._finalize(
            instance, len(keep), hashes_for_mask, chain, randomness, rng, telemetry
        )

    def _finalize(
        self,
        instance: EpochInstance,
        arrived_count: int,
        hashes_for_mask,
        chain: RootChain,
        randomness: str,
        rng: np.random.Generator,
        telemetry: NullTelemetry,
    ) -> Optional[FinalConsensusResult]:
        """Schedule, run the final PBFT round, and append the final block."""
        mask = np.asarray(self.scheduler(instance), dtype=bool)
        if mask.shape != (instance.num_shards,):
            raise ValueError("scheduler returned a mask of the wrong length")
        if not instance.is_capacity_feasible(mask):
            raise ValueError("scheduler violated the final-block capacity")

        outcome = run_pbft(
            self.params.chain_engine,
            members=self.committee.members,
            rng=rng,
            network_params=self.params.network,
            verify_mean_s=calibrated_verify_mean(self.params),
            round_tag=f"epoch{self.committee.epoch}-final",
            telemetry=telemetry,
        )
        if not outcome.committed:
            if telemetry.enabled:
                telemetry.event(
                    "chain.final.stalled",
                    epoch=self.committee.epoch,
                    arrived=arrived_count,
                )
            return None

        hashes, total_txs = hashes_for_mask(mask)
        block = FinalBlock(
            epoch=chain.height,
            parent_hash=chain.head_hash,
            permitted_shards=hashes,
            total_txs=total_txs,
            ddl=instance.ddl,
            randomness=randomness,
        )
        chain.append(block)
        if telemetry.enabled:
            # The mempool-age view of the commit: every permitted shard's
            # TXs waited ddl - latency seconds (Fig. 3's cumulative age).
            telemetry.record_span("chain.final.arrival_window", 0.0, instance.ddl,
                                  epoch=self.committee.epoch, arrived=arrived_count)
            # Tagged per epoch so the metrics aggregator keys an age-percentile
            # series per final-consensus round (SLO: p99 age vs the paper's
            # cumulative-age objective) alongside the cross-epoch aggregate.
            for age in instance.ages[mask]:
                telemetry.observe(
                    "chain.mempool.age_s", float(age), epoch=self.committee.epoch
                )
            telemetry.event(
                "chain.final.commit",
                epoch=self.committee.epoch,
                permitted=int(mask.sum()),
                arrived=arrived_count,
                txs=block.total_txs,
                ddl=instance.ddl,
                pbft_latency=outcome.latency,
            )
        return FinalConsensusResult(
            block=block,
            instance=instance,
            permitted_mask=mask,
            ddl=instance.ddl,
            final_pbft_latency=outcome.latency,
            permitted_txs=block.total_txs,
            permitted_committees=int(mask.sum()),
        )
