"""Stage 4: final consensus, where the MVCom scheduler plugs in.

The final committee collects shard blocks as member committees finish
their two-phase pipeline, stops listening at the :math:`N_{max}` fraction
(Alg. 1 line 29), asks a *scheduler* which shards to permit, and then runs
its own PBFT round to seal the final block.  The scheduler is pluggable:
the paper's SE algorithm, any baseline, or the trivial "take everything"
policy (the Elastico default MVCom improves upon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.chain.blocks import FinalBlock, RootChain, ShardBlock
from repro.chain.committee import Committee, calibrated_verify_mean
from repro.chain.fastpath import run_pbft
from repro.chain.params import ChainParams
from repro.core.problem import EpochInstance, MVComConfig, build_instance
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry

#: A scheduler maps an epoch instance to a boolean selection mask.
SchedulerFn = Callable[[EpochInstance], np.ndarray]


def take_everything(instance: EpochInstance) -> np.ndarray:
    """The unscheduled Elastico behaviour: permit every arrived shard that fits.

    Shards are admitted in arrival (latency) order until the capacity is
    exhausted -- exactly what a scheduler-less final committee would do.
    """
    order = np.argsort(instance.latencies, kind="stable")
    mask = np.zeros(instance.num_shards, dtype=bool)
    weight = 0
    for position in order:
        tx = int(instance.tx_counts[position])
        if weight + tx <= instance.capacity:
            mask[position] = True
            weight += tx
    return mask


@dataclass
class FinalConsensusResult:
    """Everything stage 4 produced for one epoch."""

    block: FinalBlock
    instance: EpochInstance
    permitted_mask: np.ndarray
    ddl: float
    final_pbft_latency: float
    permitted_txs: int
    permitted_committees: int


class FinalCommittee:
    """The epoch's leader committee (C5 in Fig. 1)."""

    def __init__(
        self,
        committee: Committee,
        params: ChainParams,
        mvcom_config: MVComConfig,
        scheduler: SchedulerFn,
    ) -> None:
        self.committee = committee
        self.params = params
        self.mvcom_config = mvcom_config
        self.scheduler = scheduler

    def arrival_window(self, shard_blocks: Sequence[ShardBlock]) -> List[ShardBlock]:
        """Apply the N_max listening cutoff (Alg. 1 line 29)."""
        count = max(1, int(np.floor(self.mvcom_config.n_max_fraction * len(shard_blocks))))
        return sorted(shard_blocks, key=lambda block: block.two_phase_latency)[:count]

    def run(
        self,
        shard_blocks: Sequence[ShardBlock],
        chain: RootChain,
        randomness: str,
        rng: np.random.Generator,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> Optional[FinalConsensusResult]:
        """Execute stage 4: schedule shards, run final PBFT, append the block."""
        if not shard_blocks:
            return None
        arrived = self.arrival_window(shard_blocks)
        instance = build_instance(arrived, self.mvcom_config)
        mask = np.asarray(self.scheduler(instance), dtype=bool)
        if mask.shape != (instance.num_shards,):
            raise ValueError("scheduler returned a mask of the wrong length")
        if not instance.is_capacity_feasible(mask):
            raise ValueError("scheduler violated the final-block capacity")

        outcome = run_pbft(
            self.params.chain_engine,
            members=self.committee.members,
            rng=rng,
            network_params=self.params.network,
            verify_mean_s=calibrated_verify_mean(self.params),
            round_tag=f"epoch{self.committee.epoch}-final",
            telemetry=telemetry,
        )
        if not outcome.committed:
            if telemetry.enabled:
                telemetry.event(
                    "chain.final.stalled",
                    epoch=self.committee.epoch,
                    arrived=len(arrived),
                )
            return None

        permitted = [arrived[i] for i in np.flatnonzero(mask)]
        block = FinalBlock(
            epoch=chain.height,
            parent_hash=chain.head_hash,
            permitted_shards=tuple(sorted(shard.block_hash for shard in permitted)),
            total_txs=int(sum(shard.tx_count for shard in permitted)),
            ddl=instance.ddl,
            randomness=randomness,
        )
        chain.append(block)
        if telemetry.enabled:
            # The mempool-age view of the commit: every permitted shard's
            # TXs waited ddl - latency seconds (Fig. 3's cumulative age).
            telemetry.record_span("chain.final.arrival_window", 0.0, instance.ddl,
                                  epoch=self.committee.epoch, arrived=len(arrived))
            # Tagged per epoch so the metrics aggregator keys an age-percentile
            # series per final-consensus round (SLO: p99 age vs the paper's
            # cumulative-age objective) alongside the cross-epoch aggregate.
            for age in instance.ages[mask]:
                telemetry.observe(
                    "chain.mempool.age_s", float(age), epoch=self.committee.epoch
                )
            telemetry.event(
                "chain.final.commit",
                epoch=self.committee.epoch,
                permitted=int(mask.sum()),
                arrived=len(arrived),
                txs=block.total_txs,
                ddl=instance.ddl,
                pbft_latency=outcome.latency,
            )
        return FinalConsensusResult(
            block=block,
            instance=instance,
            permitted_mask=mask,
            ddl=instance.ddl,
            final_pbft_latency=outcome.latency,
            permitted_txs=block.total_txs,
            permitted_committees=int(mask.sum()),
        )
