"""Blockchain nodes (miners/processors).

Nodes carry heterogeneous hash power (lognormal around 1.0) -- the paper's
"heterogeneous processing capabilities" -- and an honesty flag used by the
PBFT simulation (Byzantine members stay silent, forcing quorums to wait for
honest votes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class Node:
    """One network processor."""

    node_id: int
    hash_power: float
    honest: bool = True
    #: verification throughput multiplier (affects PBFT processing delays)
    verify_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.hash_power <= 0:
            raise ValueError("hash_power must be positive")
        if self.verify_speed <= 0:
            raise ValueError("verify_speed must be positive")


def spawn_nodes(
    count: int,
    byzantine_fraction: float,
    rng: np.random.Generator,
    hash_power_sigma: float = 0.3,
    verify_speed_sigma: float = 0.4,
) -> List[Node]:
    """Create ``count`` nodes with heterogeneous capabilities.

    Exactly ``floor(byzantine_fraction * count)`` nodes are Byzantine, at
    random positions, so a sampled committee's Byzantine count is
    hypergeometric (occasionally above average -- those are the straggler
    committees of Fig. 1).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if not 0 <= byzantine_fraction < 1:
        raise ValueError("byzantine_fraction must lie in [0, 1)")
    num_byzantine = int(byzantine_fraction * count)
    byzantine_ids = set(rng.choice(count, size=num_byzantine, replace=False).tolist())
    hash_powers = rng.lognormal(mean=-0.5 * hash_power_sigma**2, sigma=hash_power_sigma, size=count)
    verify_speeds = rng.lognormal(mean=-0.5 * verify_speed_sigma**2, sigma=verify_speed_sigma, size=count)
    return [
        Node(
            node_id=node_id,
            hash_power=float(hash_powers[node_id]),
            honest=node_id not in byzantine_ids,
            verify_speed=float(verify_speeds[node_id]),
        )
        for node_id in range(count)
    ]
