"""Stage 2: overlay configuration (identity registration and discovery).

After a node solves its PoW, it registers its identity with the directory
committee and learns its committee's membership.  Registration is serial at
the directory (a fixed per-identity processing rate), which is what couples
the overlay-configuration time to the *network size*: doubling the nodes
roughly doubles the registration backlog.  This is the mechanism behind
Fig. 2a's near-linear growth of formation latency with network size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.chain.pow import PowSolution


@dataclass(frozen=True)
class OverlayResult:
    """Per-committee overlay-completion times and identity-service backlog."""

    identity_ready_time: Dict[int, float]   # node_id -> registration complete
    committee_overlay_time: Dict[int, float]  # committee -> all members discovered


def run_overlay_configuration(
    solutions: Sequence[PowSolution],
    members: Dict[int, List[int]],
    registration_rate: float,
    rng: np.random.Generator,
    gossip_delay_mean: float = 4.0,
) -> OverlayResult:
    """Serialise identity registration, then gossip membership lists.

    Each solver joins the directory queue at its solve time; the directory
    serves one identity per ``1 / registration_rate`` seconds.  Once every
    member of a committee is registered, the membership list gossips to the
    committee (one exponential gossip delay per committee).
    """
    if registration_rate <= 0:
        raise ValueError("registration_rate must be positive")
    service_time = 1.0 / registration_rate

    identity_ready: Dict[int, float] = {}
    server_free_at = 0.0
    for solution in solutions:  # already sorted by solve time
        start = max(server_free_at, solution.solve_time)
        server_free_at = start + service_time
        identity_ready[solution.node_id] = server_free_at

    committee_overlay: Dict[int, float] = {}
    for committee_index, node_ids in members.items():
        last_registered = max(identity_ready[node_id] for node_id in node_ids)
        gossip = float(rng.exponential(gossip_delay_mean))
        committee_overlay[committee_index] = last_registered + gossip
    return OverlayResult(identity_ready_time=identity_ready, committee_overlay_time=committee_overlay)
