"""Blocks and the root chain.

* :class:`ShardBlock` -- the agreed transaction set a member committee
  submits to the final committee (its "shard").
* :class:`FinalBlock` -- the global block the final committee appends to
  the root chain after the final consensus, merging the *permitted* shards.
* :class:`RootChain` -- an append-only hash-linked chain with integrity
  verification.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


def _hash_payload(*parts: object) -> str:
    preimage = "|".join(str(part) for part in parts).encode("utf-8")
    return hashlib.sha256(preimage).hexdigest()


@dataclass(frozen=True)
class ShardBlock:
    """A member committee's agreed shard."""

    committee_id: int
    epoch: int
    tx_count: int
    formation_latency: float
    consensus_latency: float
    block_hash: str = ""

    def __post_init__(self) -> None:
        if self.tx_count < 0:
            raise ValueError("tx_count must be non-negative")
        if self.formation_latency < 0 or self.consensus_latency < 0:
            raise ValueError("latencies must be non-negative")
        if not self.block_hash:
            object.__setattr__(
                self,
                "block_hash",
                _hash_payload("shard", self.committee_id, self.epoch, self.tx_count),
            )

    @property
    def two_phase_latency(self) -> float:
        """The paper's :math:`l_i`: formation + intra-committee consensus."""
        return self.formation_latency + self.consensus_latency

    # The duck-typed protocol consumed by repro.core.build_instance:
    @property
    def shard_id(self) -> int:
        """Duck-typed id consumed by ``repro.core.build_instance``."""
        return self.committee_id

    @property
    def latency(self) -> float:
        """Duck-typed alias for :attr:`two_phase_latency`."""
        return self.two_phase_latency


@dataclass(frozen=True)
class FinalBlock:
    """A root-chain block assembled by the final committee."""

    epoch: int
    parent_hash: str
    permitted_shards: Tuple[str, ...]   # shard block hashes, sorted
    total_txs: int
    ddl: float
    randomness: str
    block_hash: str = ""

    def __post_init__(self) -> None:
        if self.total_txs < 0:
            raise ValueError("total_txs must be non-negative")
        expected = compute_final_hash(
            self.epoch, self.parent_hash, self.permitted_shards, self.total_txs, self.randomness
        )
        if not self.block_hash:
            object.__setattr__(self, "block_hash", expected)
        elif self.block_hash != expected:
            raise ValueError("block_hash does not match block contents")


def compute_final_hash(
    epoch: int,
    parent_hash: str,
    permitted_shards: Sequence[str],
    total_txs: int,
    randomness: str,
) -> str:
    """Deterministic content hash binding a final block's fields."""
    return _hash_payload("final", epoch, parent_hash, ",".join(permitted_shards), total_txs, randomness)


GENESIS_HASH = _hash_payload("genesis")


@dataclass
class RootChain:
    """Append-only chain of final blocks."""

    blocks: List[FinalBlock] = field(default_factory=list)

    @property
    def height(self) -> int:
        """Number of final blocks on the chain."""
        return len(self.blocks)

    @property
    def head_hash(self) -> str:
        """Hash the next block must extend (genesis when empty)."""
        return self.blocks[-1].block_hash if self.blocks else GENESIS_HASH

    @property
    def total_txs(self) -> int:
        """Transactions confirmed across all final blocks."""
        return sum(block.total_txs for block in self.blocks)

    def append(self, block: FinalBlock) -> None:
        """Append a block after checking parent link and epoch number."""
        if block.parent_hash != self.head_hash:
            raise ValueError(
                f"block parent {block.parent_hash[:12]} does not extend head {self.head_hash[:12]}"
            )
        if block.epoch != self.height:
            raise ValueError(f"expected epoch {self.height}, got {block.epoch}")
        self.blocks.append(block)

    def verify(self) -> bool:
        """Recheck every hash link and content hash."""
        parent = GENESIS_HASH
        for epoch, block in enumerate(self.blocks):
            if block.parent_hash != parent or block.epoch != epoch:
                return False
            expected = compute_final_hash(
                block.epoch, block.parent_hash, block.permitted_shards, block.total_txs, block.randomness
            )
            if block.block_hash != expected:
                return False
            parent = block.block_hash
        return True
