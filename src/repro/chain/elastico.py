"""The 5-stage Elastico epoch orchestrator (Section I).

One :meth:`ElasticoSimulation.run_epoch` call executes:

1. **Committee formation** -- the PoW election race (:mod:`repro.chain.pow`);
2. **Overlay configuration** -- serial identity registration + membership
   gossip (:mod:`repro.chain.overlay`); formation latency =
   committee-fill time + overlay time, which is what Fig. 2 measures;
3. **Intra-committee consensus** -- a PBFT round per committee
   (:mod:`repro.chain.pbft`);
4. **Final consensus** -- the final committee schedules shards (MVCom or a
   baseline) and seals the final block (:mod:`repro.chain.final`);
5. **Epoch randomness refreshing** -- commit-reveal seed for the next epoch
   (:mod:`repro.chain.randomness`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chain.blocks import RootChain, ShardBlock
from repro.chain.committee import (
    Committee,
    assign_shard_workload,
    run_intra_consensus_batch,
    run_intra_consensus_streaming,
)
from repro.chain.fastpath import formation_kernel
from repro.chain.final import (
    CrosslinkAggregator,
    FinalCommittee,
    FinalConsensusResult,
    SchedulerFn,
    take_everything,
)
from repro.chain.node import Node, spawn_nodes
from repro.chain.overlay import run_overlay_configuration
from repro.chain.params import ChainParams
from repro.chain.pow import committee_fill_times, committee_members, run_pow_election
from repro.chain.randomness import GENESIS_RANDOMNESS, refresh_randomness
from repro.core.problem import MVComConfig
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry
from repro.sim.rng import RandomStreams


@dataclass
class EpochOutcome:
    """Everything one epoch produced."""

    epoch: int
    committees: List[Committee]
    shard_blocks: List[ShardBlock]
    final: Optional[FinalConsensusResult]
    randomness: str
    formation_latencies: Dict[int, float] = field(default_factory=dict)
    consensus_latencies: Dict[int, float] = field(default_factory=dict)

    @property
    def two_phase_latencies(self) -> List[float]:
        """Each submitted shard's formation + consensus latency."""
        return [block.two_phase_latency for block in self.shard_blocks]


@dataclass
class StreamingEpochOutcome:
    """What :meth:`ElasticoSimulation.run_epoch_streaming` produced.

    The streaming path never materialises :class:`ShardBlock` objects, so
    this carries counts and the final-consensus result instead of the
    per-shard object list; latency dicts stay available for parity tests
    and Fig. 2-style measurement.
    """

    epoch: int
    num_committees: int
    shards_submitted: int
    final: Optional[FinalConsensusResult]
    randomness: str
    formation_latencies: Dict[int, float] = field(default_factory=dict)
    consensus_latencies: Dict[int, float] = field(default_factory=dict)


class ElasticoSimulation:
    """A multi-epoch Elastico deployment with a pluggable final-committee scheduler."""

    def __init__(
        self,
        params: ChainParams,
        mvcom_config: Optional[MVComConfig] = None,
        scheduler: Optional[SchedulerFn] = None,
        telemetry: NullTelemetry = NULL_TELEMETRY,
        chain_engine: Optional[str] = None,
    ) -> None:
        if chain_engine is not None and chain_engine != params.chain_engine:
            params = replace(params, chain_engine=chain_engine)
        self.params = params
        #: Injected hub (rule MV007), threaded into every PBFT round and the
        #: final-consensus stage; each epoch also emits one ``chain.epoch``.
        self.telemetry = telemetry
        self.mvcom_config = mvcom_config or MVComConfig(capacity=1000 * max(params.num_committees, 1))
        self.scheduler = scheduler or take_everything
        self.streams = RandomStreams(params.seed)
        self.nodes: List[Node] = spawn_nodes(
            count=params.num_nodes,
            byzantine_fraction=params.byzantine_fraction,
            rng=self.streams.get("nodes"),
        )
        self.chain = RootChain()
        self.randomness = GENESIS_RANDOMNESS
        self.epoch = 0
        # Per-deployment lookups, fixed across epochs (nodes never churn
        # inside one ElasticoSimulation).
        self._nodes_by_id = {node.node_id: node for node in self.nodes}
        self._solve_scales = np.array(
            [params.pow_mean_solve_s / node.hash_power for node in self.nodes]
        )
        self._node_id_array = np.array([node.node_id for node in self.nodes])

    # ------------------------------------------------------------------ #
    def form_committees(self, rng: np.random.Generator) -> List[Committee]:
        """Stages 1-2: PoW election + overlay configuration.

        The ``fastpath`` engine runs the vectorized formation kernel,
        which consumes the RNG stream identically to the reference path
        and produces byte-identical committees.
        """
        params = self.params
        if params.chain_engine == "fastpath":
            fills, members, overlay_times = formation_kernel(
                nodes=self.nodes,
                num_committees=params.num_committees,
                committee_size=params.committee_size,
                mean_solve_s=params.pow_mean_solve_s,
                epoch_randomness=self.randomness,
                registration_rate=params.identity_registration_rate,
                rng=rng,
                solve_scales=self._solve_scales,
                node_ids=self._node_id_array,
                max_batch_bytes=params.max_batch_bytes,
            )
        else:
            solutions = run_pow_election(
                nodes=self.nodes,
                num_committees=params.num_committees,
                mean_solve_s=params.pow_mean_solve_s,
                epoch_randomness=self.randomness,
                rng=rng,
            )
            fills = committee_fill_times(solutions, params.num_committees, params.committee_size)
            members = committee_members(solutions, params.num_committees, params.committee_size)
            overlay_times = run_overlay_configuration(
                solutions=solutions,
                members=members,
                registration_rate=params.identity_registration_rate,
                rng=rng,
            ).committee_overlay_time
        nodes_by_id = self._nodes_by_id
        committees = []
        for committee_id, node_ids in sorted(members.items()):
            formation = max(fills[committee_id], overlay_times[committee_id])
            committees.append(
                Committee(
                    committee_id=committee_id,
                    epoch=self.epoch,
                    members=[nodes_by_id[node_id] for node_id in node_ids],
                    formation_latency=float(formation),
                )
            )
        return committees

    def run_epoch(
        self,
        shard_tx_counts: Optional[Sequence[int]] = None,
        mempool=None,
    ) -> EpochOutcome:
        """Execute all five stages once and advance the chain.

        When a :class:`repro.chain.mempool.Mempool` is supplied, shard
        workloads come from Elastico's hash-prefix TX partition and the
        transactions packed into the final block are removed from the pool;
        otherwise ``shard_tx_counts`` (or a synthetic default) is used.
        """
        rng = self.streams.fork(f"epoch-{self.epoch}").get("epoch")
        committees = self.form_committees(rng)
        if not committees:
            raise RuntimeError("no committee filled this epoch; raise num_nodes or lower committee_size")

        shard_assignment = None
        if mempool is not None:
            from repro.chain.mempool import assign_to_committees

            shard_assignment = assign_to_committees(mempool, self.params.num_committees)
            shard_tx_counts = [len(shard_assignment[c.committee_id]) for c in committees]
        elif shard_tx_counts is None:
            # Default synthetic workload: ~1.3 blocks of ~1088 TXs per committee.
            shard_tx_counts = rng.poisson(1400, size=len(committees))
        assign_shard_workload(committees, shard_tx_counts)

        # Stage 3: every member committee (all but the final one) runs PBFT.
        # The fastpath engine batches all eligible committees into one
        # vectorized kernel call (see run_intra_consensus_batch).
        member_committees = committees[:-1] if len(committees) > 1 else committees
        final_seat = committees[-1]
        if self.params.chain_engine == "fastpath":
            shard_blocks = run_intra_consensus_batch(
                member_committees, self.params, rng, telemetry=self.telemetry
            )
        else:
            shard_blocks = []
            for committee in member_committees:
                block = committee.run_intra_consensus(self.params, rng, telemetry=self.telemetry)
                if block is not None:
                    shard_blocks.append(block)

        # Stage 4: final consensus with the configured scheduler.
        final_committee = FinalCommittee(
            committee=final_seat,
            params=self.params,
            mvcom_config=self.mvcom_config,
            scheduler=self.scheduler,
        )
        final_result = (
            final_committee.run(
                shard_blocks, self.chain, self.randomness, rng, telemetry=self.telemetry
            )
            if shard_blocks
            else None
        )

        # Commit: permitted shards' transactions leave the mempool (the
        # final committee first re-checks cross-shard disjointness).
        if mempool is not None and final_result is not None and shard_assignment is not None:
            from repro.chain.mempool import verify_disjoint

            permitted_ids = [
                final_result.instance.shard_ids[i]
                for i in np.flatnonzero(final_result.permitted_mask)
            ]
            permitted_shards = [shard_assignment[cid] for cid in permitted_ids]
            offender = verify_disjoint(permitted_shards)
            if offender is not None:
                raise RuntimeError(f"double-committed transaction {offender}")
            for shard in permitted_shards:
                mempool.remove_committed(shard)

        # Stage 5: refresh the epoch randomness.
        self.randomness = refresh_randomness(
            epoch=self.epoch,
            member_ids=[node.node_id for node in final_seat.members],
            rng=rng,
        )

        outcome = EpochOutcome(
            epoch=self.epoch,
            committees=committees,
            shard_blocks=shard_blocks,
            final=final_result,
            randomness=self.randomness,
            formation_latencies={c.committee_id: c.formation_latency for c in committees},
            consensus_latencies={
                c.committee_id: c.consensus_latency
                for c in committees
                if c.consensus_latency is not None
            },
        )
        if self.telemetry.enabled:
            self.telemetry.event(
                "chain.epoch",
                epoch=outcome.epoch,
                committees=len(committees),
                shards_submitted=len(shard_blocks),
                shards_permitted=(
                    int(final_result.permitted_mask.sum()) if final_result is not None else 0
                ),
                committed=final_result is not None,
            )
        self.epoch += 1
        return outcome

    def run_epoch_streaming(
        self,
        shard_tx_counts: Optional[Sequence[int]] = None,
    ) -> StreamingEpochOutcome:
        """The five stages with memory-bounded stage 3 -> 4 hand-off.

        Byte-identical to :meth:`run_epoch` on the ``fastpath`` engine
        (same RNG consumption, same final block hash), but shard
        submissions stream through a :class:`CrosslinkAggregator`
        instead of a :class:`ShardBlock` list -- the eth2-scale path
        where ~1024 per-shard Python objects per epoch are pure
        allocator churn.  Mempool-driven workloads stay on
        :meth:`run_epoch` (removing committed TXs needs the per-shard
        assignment anyway).
        """
        if self.params.chain_engine != "fastpath":
            raise ValueError(
                "run_epoch_streaming requires chain_engine='fastpath' "
                "(the DES path materialises per-round objects regardless)"
            )
        # Intentionally the same stream key as run_epoch: the streaming
        # path must replay the exact byte sequence of the object path.
        rng = self.streams.fork(f"epoch-{self.epoch}").get("epoch")  # repro: ignore[MV101]
        committees = self.form_committees(rng)
        if not committees:
            raise RuntimeError(
                "no committee filled this epoch; raise num_nodes or lower committee_size"
            )
        if shard_tx_counts is None:
            # Same synthetic default (and draw) as run_epoch.
            shard_tx_counts = rng.poisson(1400, size=len(committees))
        assign_shard_workload(committees, shard_tx_counts)

        member_committees = committees[:-1] if len(committees) > 1 else committees
        final_seat = committees[-1]
        aggregator = CrosslinkAggregator(capacity_hint=len(member_committees))
        submitted = run_intra_consensus_streaming(
            member_committees, self.params, rng, aggregator, telemetry=self.telemetry
        )

        final_committee = FinalCommittee(
            committee=final_seat,
            params=self.params,
            mvcom_config=self.mvcom_config,
            scheduler=self.scheduler,
        )
        final_result = (
            final_committee.run_streaming(
                aggregator, self.chain, self.randomness, rng, telemetry=self.telemetry
            )
            if submitted
            else None
        )

        self.randomness = refresh_randomness(
            epoch=self.epoch,
            member_ids=[node.node_id for node in final_seat.members],
            rng=rng,
        )

        outcome = StreamingEpochOutcome(
            epoch=self.epoch,
            num_committees=len(committees),
            shards_submitted=submitted,
            final=final_result,
            randomness=self.randomness,
            formation_latencies={c.committee_id: c.formation_latency for c in committees},
            consensus_latencies={
                c.committee_id: c.consensus_latency
                for c in committees
                if c.consensus_latency is not None
            },
        )
        if self.telemetry.enabled:
            self.telemetry.event(
                "chain.epoch",
                epoch=outcome.epoch,
                committees=len(committees),
                shards_submitted=submitted,
                shards_permitted=(
                    int(final_result.permitted_mask.sum()) if final_result is not None else 0
                ),
                committed=final_result is not None,
            )
        self.epoch += 1
        return outcome
