"""Protocol and network parameters for the Elastico substrate.

Calibration targets come straight from Section VI-A: the expected PoW
committee-formation latency is 600 s and the expected PBFT consensus
latency is 54.5 s.  The remaining knobs (message delays, identity
registration throughput) are set so the *measured* behaviour reproduces
Fig. 2's shape: formation latency dominates, grows roughly linearly with
the network size, and both latencies are randomly spread within a band.
"""

from __future__ import annotations

from dataclasses import dataclass

#: chain substrate execution engines (mirrors ``repro.core.engine.ENGINE_NAMES``)
CHAIN_ENGINE_NAMES = ("des", "fastpath")


@dataclass(frozen=True)
class NetworkParams:
    """Point-to-point message latency model.

    Delays are lognormal: ``base_delay`` is the median one-way delay and
    ``jitter_sigma`` the lognormal sigma.  The defaults give a heavy-ish
    tail consistent with wide-area gossip.
    """

    base_delay: float = 2.0
    jitter_sigma: float = 0.6
    bandwidth_msgs_per_s: float = 500.0  # per-node send throughput cap
    #: independent per-message drop probability (failure injection)
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if self.bandwidth_msgs_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must lie in [0, 1)")


@dataclass(frozen=True)
class ChainParams:
    """Elastico deployment parameters.

    Parameters
    ----------
    num_nodes:
        Network size (the x-axis of Fig. 2a).
    committee_size:
        Nodes per committee (Elastico uses c = 100; smaller values keep the
        DES fast while preserving the latency structure).
    pow_mean_solve_s:
        Expected single-committee PoW election latency (paper: 600 s).
    pbft_mean_total_s:
        Expected total PBFT latency across the three stages (paper: 54.5 s).
    identity_registration_rate:
        Identities the directory committee can register per second during
        overlay configuration.  Serial registration is what makes formation
        latency grow linearly with network size in Fig. 2a.
    byzantine_fraction:
        Fraction of Byzantine nodes (must stay < 1/3 for PBFT liveness).
    chain_engine:
        Execution engine for the chain substrate: ``"des"`` runs the
        reference discrete-event simulation; ``"fastpath"`` computes round
        latencies in closed form via :mod:`repro.chain.fastpath` (numpy
        order statistics), falling back to the DES per committee whenever
        the closed form is invalid (Byzantine primary, lossy network,
        view-change possible).
    max_batch_bytes:
        Scratch-byte budget for the chunked fastpath kernels (PBFT batch
        and formation).  Each batched kernel call splits its committee or
        node stack into chunks whose live scratch stays under this budget;
        the chunked result is byte-identical to the unchunked one at any
        budget (see :mod:`repro.chain.fastpath`).  The 256 MiB default
        keeps a full eth2-scale epoch (1024 shards x 128 members) in
        bounded memory.
    """

    num_nodes: int = 400
    committee_size: int = 16
    pow_mean_solve_s: float = 600.0
    pbft_mean_total_s: float = 54.5
    identity_registration_rate: float = 0.5
    byzantine_fraction: float = 0.1
    network: NetworkParams = NetworkParams()
    seed: int = 0
    chain_engine: str = "des"
    max_batch_bytes: int = 268_435_456  # 256 MiB

    def __post_init__(self) -> None:
        if self.chain_engine not in CHAIN_ENGINE_NAMES:
            raise ValueError(
                f"unknown chain_engine {self.chain_engine!r}; "
                f"expected one of {CHAIN_ENGINE_NAMES}"
            )
        if self.num_nodes < self.committee_size:
            raise ValueError("need at least one committee's worth of nodes")
        if self.committee_size < 4:
            raise ValueError("PBFT needs committee_size >= 4 (3f+1 with f >= 1)")
        if not 0 <= self.byzantine_fraction < 1 / 3:
            raise ValueError("byzantine_fraction must lie in [0, 1/3) for PBFT safety")
        if self.pow_mean_solve_s <= 0 or self.pbft_mean_total_s <= 0:
            raise ValueError("latency expectations must be positive")
        if self.identity_registration_rate <= 0:
            raise ValueError("identity_registration_rate must be positive")
        if self.max_batch_bytes <= 0:
            raise ValueError("max_batch_bytes must be positive")

    @property
    def num_committees(self) -> int:
        """Member committees formed per epoch (one group is the final committee)."""
        return self.num_nodes // self.committee_size

    @property
    def max_byzantine_per_committee(self) -> int:
        """The f tolerated by a 3f+1 committee."""
        return (self.committee_size - 1) // 3
