"""Fig. 2's measurement campaign on the Elastico substrate.

Fig. 2a: mean committee-formation latency and intra-committee consensus
latency while the network size scales; formation dominates and grows
roughly linearly (driven by the serial identity registration of stage 2).

Fig. 2b: the CDF of both latency terms at a fixed network size; each is
randomly distributed within a band.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chain.elastico import ElasticoSimulation
from repro.chain.params import ChainParams


@dataclass(frozen=True)
class TwoPhaseMeasurement:
    """Latency samples measured at one network size."""

    num_nodes: int
    formation_latencies: tuple
    consensus_latencies: tuple

    @property
    def mean_formation(self) -> float:
        """Mean committee-formation latency at this network size."""
        return float(np.mean(self.formation_latencies)) if self.formation_latencies else 0.0

    @property
    def mean_consensus(self) -> float:
        """Mean intra-committee consensus latency at this size."""
        return float(np.mean(self.consensus_latencies)) if self.consensus_latencies else 0.0

    @property
    def mean_two_phase(self) -> float:
        """Mean total two-phase latency (formation + consensus)."""
        return self.mean_formation + self.mean_consensus

    def cdf(self, which: str) -> tuple:
        """(sorted values, cumulative fractions) for 'formation' or 'consensus'."""
        if which == "formation":
            values = np.sort(np.asarray(self.formation_latencies))
        elif which == "consensus":
            values = np.sort(np.asarray(self.consensus_latencies))
        else:
            raise ValueError("which must be 'formation' or 'consensus'")
        if values.size == 0:
            return (), ()
        fractions = np.arange(1, values.size + 1) / values.size
        return tuple(values.tolist()), tuple(fractions.tolist())


def measure_two_phase_latency(
    base_params: ChainParams,
    network_sizes: Sequence[int],
    epochs_per_size: int = 1,
    chain_engine: Optional[str] = None,
) -> List[TwoPhaseMeasurement]:
    """Run the Elastico substrate at each network size and collect latencies.

    ``chain_engine`` overrides ``base_params.chain_engine`` when given
    (``"des"`` reference simulation or the ``"fastpath"`` closed-form
    kernel; see :mod:`repro.chain.fastpath`).
    """
    measurements = []
    for num_nodes in network_sizes:
        params = replace(base_params, num_nodes=int(num_nodes))
        if chain_engine is not None:
            params = replace(params, chain_engine=chain_engine)
        simulation = ElasticoSimulation(params)
        formation: List[float] = []
        consensus: List[float] = []
        for _ in range(epochs_per_size):
            outcome = simulation.run_epoch()
            formation.extend(outcome.formation_latencies.values())
            consensus.extend(outcome.consensus_latencies.values())
        measurements.append(
            TwoPhaseMeasurement(
                num_nodes=int(num_nodes),
                formation_latencies=tuple(formation),
                consensus_latencies=tuple(consensus),
            )
        )
    return measurements


def linear_growth_check(measurements: Sequence[TwoPhaseMeasurement]) -> Dict[str, float]:
    """Fit formation latency ~ a * num_nodes + b; used by tests and EXPERIMENTS.md.

    Returns the fit plus R^2 -- Fig. 2a's claim is a near-linear trend
    (positive slope, high R^2), not a specific constant.
    """
    if len(measurements) < 2:
        raise ValueError("need at least two network sizes to fit a trend")
    sizes = np.array([m.num_nodes for m in measurements], dtype=np.float64)
    formations = np.array([m.mean_formation for m in measurements])
    slope, intercept = np.polyfit(sizes, formations, deg=1)
    predicted = slope * sizes + intercept
    residual = formations - predicted
    total = formations - formations.mean()
    r_squared = 1.0 - float((residual**2).sum()) / max(float((total**2).sum()), 1e-12)
    return {"slope": float(slope), "intercept": float(intercept), "r_squared": r_squared}
