"""Gossip overlay topology and epidemic broadcast latency.

Elastico's overlay configuration and committee discovery run over a gossip
network, not all-to-all links.  This module models that layer explicitly:

* :func:`random_regular_topology` -- a connected k-regular-ish random
  overlay (each node picks ``degree`` peers; the union graph is symmetric);
* :class:`GossipNetwork` -- epidemic push broadcast on the DES engine: each
  informed node forwards to its neighbors with per-hop delays, giving the
  classic O(log n) round growth;
* :func:`broadcast_completion_times` -- convenience wrapper measuring when
  every node (or a fraction) has the message.

The chain's overlay gossip delay (``repro.chain.overlay``) is calibrated as
a single exponential; this module provides the mechanistic version for
topology-sensitivity studies and validates that calibration in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.chain.params import NetworkParams
from repro.sim.engine import SimulationEngine


def random_regular_topology(
    num_nodes: int,
    degree: int,
    rng: np.random.Generator,
    max_attempts: int = 50,
) -> Dict[int, Set[int]]:
    """A connected undirected overlay where each node knows ~``degree`` peers.

    Construction: a Hamiltonian ring (guarantees connectivity) plus random
    chords until the average degree reaches ``degree``.
    """
    if num_nodes < 3:
        raise ValueError("topology needs at least 3 nodes")
    if not 2 <= degree < num_nodes:
        raise ValueError("degree must lie in [2, num_nodes)")
    adjacency: Dict[int, Set[int]] = {node: set() for node in range(num_nodes)}
    order = rng.permutation(num_nodes)
    for position in range(num_nodes):  # ring for connectivity
        a, b = int(order[position]), int(order[(position + 1) % num_nodes])
        adjacency[a].add(b)
        adjacency[b].add(a)
    target_edges = num_nodes * degree // 2
    edges = num_nodes
    attempts = 0
    while edges < target_edges and attempts < max_attempts * target_edges:
        attempts += 1
        a, b = int(rng.integers(num_nodes)), int(rng.integers(num_nodes))
        if a == b or b in adjacency[a]:
            continue
        adjacency[a].add(b)
        adjacency[b].add(a)
        edges += 1
    return adjacency


def is_connected(adjacency: Dict[int, Set[int]]) -> bool:
    """BFS connectivity check."""
    if not adjacency:
        return False
    start = next(iter(adjacency))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(adjacency)


@dataclass
class GossipResult:
    """When each node first received the broadcast."""

    first_received: Dict[int, float]
    origin: int

    def completion_time(self, fraction: float = 1.0) -> float:
        """Time until ``fraction`` of the nodes are informed."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        times = sorted(self.first_received.values())
        index = max(int(np.ceil(fraction * len(times))) - 1, 0)
        return times[index]

    @property
    def reached(self) -> int:
        """How many nodes received the broadcast."""
        return len(self.first_received)


class GossipNetwork:
    """Epidemic push broadcast over a fixed overlay."""

    def __init__(
        self,
        adjacency: Dict[int, Set[int]],
        params: NetworkParams,
        rng: np.random.Generator,
    ) -> None:
        if not is_connected(adjacency):
            raise ValueError("gossip overlay must be connected")
        self.adjacency = adjacency
        self.params = params
        self.rng = rng

    def _hop_delay(self) -> float:
        mu = np.log(self.params.base_delay)
        return float(self.rng.lognormal(mean=mu, sigma=self.params.jitter_sigma))

    def broadcast(self, origin: int, engine: Optional[SimulationEngine] = None) -> GossipResult:
        """Push-gossip a message from ``origin``; returns first-receipt times.

        Each newly informed node forwards to every neighbor after an
        independent per-link delay (push flooding -- Elastico's overlay
        broadcast).  Duplicate deliveries are ignored.
        """
        if origin not in self.adjacency:
            raise KeyError(f"origin {origin} not in overlay")
        engine = engine or SimulationEngine()
        result = GossipResult(first_received={origin: engine.now}, origin=origin)

        def deliver(node: int) -> None:
            """Forward the message to every neighbor after per-link delays."""
            for neighbor in self.adjacency[node]:
                delay = self._hop_delay()
                engine.schedule(delay, lambda n=neighbor: receive(n))

        def receive(node: int) -> None:
            """First receipt at a node: record the time and keep pushing."""
            if node in result.first_received:
                return
            result.first_received[node] = engine.now
            deliver(node)

        deliver(origin)
        engine.run()
        return result


def broadcast_completion_times(
    num_nodes: int,
    degree: int,
    params: NetworkParams,
    rng: np.random.Generator,
    trials: int = 5,
) -> List[float]:
    """Full-coverage broadcast times over fresh random overlays."""
    times = []
    for _ in range(trials):
        topology = random_regular_topology(num_nodes, degree, rng)
        network = GossipNetwork(topology, params, rng)
        origin = int(rng.integers(num_nodes))
        times.append(network.broadcast(origin).completion_time())
    return times
