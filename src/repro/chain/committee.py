"""Committees: the unit of sharded consensus.

A :class:`Committee` groups the nodes elected into one PoW bucket, tracks
its two-phase latency components, and runs its intra-committee PBFT round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.chain.blocks import ShardBlock
from repro.chain.node import Node
from repro.chain.params import ChainParams
from repro.chain.pbft import run_pbft_round
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry


@dataclass
class Committee:
    """One member committee of an epoch."""

    committee_id: int
    epoch: int
    members: List[Node]
    formation_latency: float = 0.0
    consensus_latency: Optional[float] = None
    shard_tx_count: int = 0
    shard_block: Optional[ShardBlock] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a committee needs members")
        if self.formation_latency < 0:
            raise ValueError("formation_latency must be non-negative")

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.members)

    @property
    def leader(self) -> Node:
        """The committee's PBFT primary seat (view 0)."""
        return self.members[0]

    @property
    def honest_count(self) -> int:
        """Members that follow the protocol."""
        return sum(1 for node in self.members if node.honest)

    @property
    def byzantine_count(self) -> int:
        """Members that stay silent (crash-equivalent)."""
        return self.size - self.honest_count

    @property
    def can_reach_quorum(self) -> bool:
        """PBFT liveness: at most f = (size-1)//3 silent members."""
        return self.byzantine_count <= (self.size - 1) // 3

    def run_intra_consensus(
        self,
        params: ChainParams,
        rng: np.random.Generator,
        verify_mean_s: Optional[float] = None,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> Optional[ShardBlock]:
        """Run stage 3 (PBFT) and produce this committee's shard block.

        ``verify_mean_s`` defaults to a value calibrated so the expected
        total consensus latency matches ``params.pbft_mean_total_s``: the
        round spends roughly two verify delays (prepare + commit votes) and
        four propagation hops on the critical path.
        """
        if not self.can_reach_quorum:
            return None  # this committee stalls and never submits
        if verify_mean_s is None:
            verify_mean_s = calibrated_verify_mean(params)
        outcome = run_pbft_round(
            members=self.members,
            rng=rng,
            network_params=params.network,
            verify_mean_s=verify_mean_s,
            round_tag=f"epoch{self.epoch}-committee{self.committee_id}",
            telemetry=telemetry,
        )
        if not outcome.committed:
            return None
        self.consensus_latency = outcome.latency
        self.shard_block = ShardBlock(
            committee_id=self.committee_id,
            epoch=self.epoch,
            tx_count=self.shard_tx_count,
            formation_latency=self.formation_latency,
            consensus_latency=self.consensus_latency,
        )
        return self.shard_block


def calibrated_verify_mean(params: ChainParams) -> float:
    """Per-replica verification mean that hits ``pbft_mean_total_s``.

    The primary's critical path is approximately: pre-prepare hop, replica
    verify, prepare quorum hop, replica verify, commit quorum hop -- i.e.
    two verify delays plus three message quorum waits.  Each quorum wait is
    roughly the ~67th-percentile network delay; we budget the network part
    as ``3 * 1.6 * base_delay`` and split the remainder across the two
    verify delays.
    """
    network_budget = 3 * 1.6 * params.network.base_delay
    verify_budget = max(params.pbft_mean_total_s - network_budget, 1e-3)
    return verify_budget / 2.0


def assign_shard_workload(
    committees: Sequence[Committee],
    tx_counts: Sequence[int],
) -> None:
    """Attach per-committee shard TX counts (from :mod:`repro.data`)."""
    if len(tx_counts) < len(committees):
        raise ValueError("need one tx count per committee")
    for committee, tx_count in zip(committees, tx_counts):
        committee.shard_tx_count = int(tx_count)
