"""Committees: the unit of sharded consensus.

A :class:`Committee` groups the nodes elected into one PoW bucket, tracks
its two-phase latency components, and runs its intra-committee PBFT round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.blocks import ShardBlock
from repro.chain.node import Node
from repro.chain.fastpath import (
    _pbft_kernel_batch,
    kernel_chunk_rows,
    run_pbft,
    view_change_timeout,
)
from repro.chain.params import ChainParams
from repro.chain.network import Network
from repro.chain.pbft import PbftRound
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry
from repro.sim.engine import SimulationEngine


@dataclass
class Committee:
    """One member committee of an epoch."""

    committee_id: int
    epoch: int
    members: List[Node]
    formation_latency: float = 0.0
    consensus_latency: Optional[float] = None
    shard_tx_count: int = 0
    shard_block: Optional[ShardBlock] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a committee needs members")
        if self.formation_latency < 0:
            raise ValueError("formation_latency must be non-negative")

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.members)

    @property
    def leader(self) -> Node:
        """The committee's PBFT primary seat (view 0)."""
        return self.members[0]

    @property
    def honest_count(self) -> int:
        """Members that follow the protocol."""
        return sum(1 for node in self.members if node.honest)

    @property
    def byzantine_count(self) -> int:
        """Members that stay silent (crash-equivalent)."""
        return self.size - self.honest_count

    @property
    def can_reach_quorum(self) -> bool:
        """PBFT liveness: at most f = (size-1)//3 silent members."""
        return self.byzantine_count <= (self.size - 1) // 3

    def run_intra_consensus(
        self,
        params: ChainParams,
        rng: np.random.Generator,
        verify_mean_s: Optional[float] = None,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> Optional[ShardBlock]:
        """Run stage 3 (PBFT) and produce this committee's shard block.

        ``verify_mean_s`` defaults to a value calibrated so the expected
        total consensus latency matches ``params.pbft_mean_total_s``: the
        round spends roughly two verify delays (prepare + commit votes) and
        four propagation hops on the critical path.
        """
        if not self.can_reach_quorum:
            return None  # this committee stalls and never submits
        if verify_mean_s is None:
            verify_mean_s = calibrated_verify_mean(params)
        outcome = run_pbft(
            params.chain_engine,
            members=self.members,
            rng=rng,
            network_params=params.network,
            verify_mean_s=verify_mean_s,
            round_tag=f"epoch{self.epoch}-committee{self.committee_id}",
            telemetry=telemetry,
        )
        if not outcome.committed:
            return None
        self.consensus_latency = outcome.latency
        self.shard_block = ShardBlock(
            committee_id=self.committee_id,
            epoch=self.epoch,
            tx_count=self.shard_tx_count,
            formation_latency=self.formation_latency,
            consensus_latency=self.consensus_latency,
        )
        return self.shard_block


def _stage3_commit_times(
    committees: Sequence[Committee],
    params: ChainParams,
    rng: np.random.Generator,
    verify_mean_s: Optional[float] = None,
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> List[Committee]:
    """The shared stage-3 core: chunked batch kernel + DES fallbacks.

    Every closed-form-eligible committee (quorum reachable, honest view-0
    primary, loss-free network) goes through one chunked order-statistics
    kernel call (committee chunks sized by ``params.max_batch_bytes``;
    byte-identical at any chunk size) instead of ``K`` per-committee
    calls; the rest replay under the reference DES afterwards, as do
    eligible committees whose closed-form commit time reaches the
    view-change timeout.  Committee-vs-committee draw order differs from
    the serial per-round loop (batch key first, fallbacks second), which
    is fine because all rounds draw independently; with a lossy network
    nothing is batch-drawn -- not even the Philox key -- every replay
    drains its full event queue, and the epoch stays byte-identical to
    the pure DES.

    Stamps ``consensus_latency`` on each committing committee and returns
    the committing committees in committee order; block materialisation
    is left to the caller (:func:`run_intra_consensus_batch` builds
    :class:`ShardBlock` objects, :func:`run_intra_consensus_streaming`
    folds straight into a crosslink sink).
    """
    if verify_mean_s is None:
        verify_mean_s = calibrated_verify_mean(params)
    timeout_s = view_change_timeout(params.network, verify_mean_s)
    lossy = params.network.loss_probability > 0.0

    eligible: List[Committee] = []
    fallbacks: List[Tuple[Committee, str]] = []
    for committee in committees:
        if not committee.can_reach_quorum:
            continue  # stalls without consuming randomness, like the serial path
        if committee.size < 4:
            raise ValueError("PBFT needs at least 4 members (3f+1, f >= 1)")
        if lossy:
            fallbacks.append((committee, "lossy-network"))
        elif not committee.leader.honest:
            fallbacks.append((committee, "byzantine-primary"))
        elif committee.honest_count < 2 * ((committee.size - 1) // 3) + 1:
            fallbacks.append((committee, "no-quorum"))
        else:
            eligible.append(committee)

    if eligible:
        honest = np.array(
            [[node.honest for node in committee.members] for committee in eligible],
            dtype=bool,
        )
        speeds = np.array(
            [[node.verify_speed for node in committee.members] for committee in eligible]
        )
        if telemetry.enabled:
            size = eligible[0].size
            rows = min(len(eligible), kernel_chunk_rows(size, params.max_batch_bytes))
            telemetry.event(
                "chain.fastpath.chunks",
                committees=len(eligible),
                committee_size=size,
                chunk_rows=rows,
                chunks=-(-len(eligible) // rows),
                max_batch_bytes=params.max_batch_bytes,
            )
        commit_times, prepared_primary = _pbft_kernel_batch(
            honest,
            speeds,
            rng,
            params.network,
            verify_mean_s,
            max_batch_bytes=params.max_batch_bytes,
        )
        for k, committee in enumerate(eligible):
            commit_time = float(commit_times[k])
            if not np.isfinite(commit_time) or commit_time >= timeout_s:
                fallbacks.append((committee, "view-change-timeout"))
                continue
            committee.consensus_latency = commit_time
            if telemetry.enabled:
                telemetry.record_span(
                    "chain.pbft.round",
                    0.0,
                    commit_time,
                    tag=f"epoch{committee.epoch}-committee{committee.committee_id}",
                    view=0,
                    members=committee.size,
                    stages={
                        "pre-prepare-sent": 0.0,
                        "prepare-quorum": float(prepared_primary[k]),
                        "commit-quorum": commit_time,
                    },
                )

    for committee, reason in fallbacks:
        round_tag = f"epoch{committee.epoch}-committee{committee.committee_id}"
        if telemetry.enabled:
            telemetry.event("chain.fastpath.fallback", tag=round_tag, reason=reason)
        engine = SimulationEngine(telemetry=telemetry)
        pbft = PbftRound(
            engine=engine,
            network=Network(engine, params.network, rng),
            members=committee.members,
            rng=rng,
            verify_mean_s=verify_mean_s,
            round_tag=round_tag,
            telemetry=telemetry,
        )
        outcome = pbft.outcome
        if lossy:
            # Byte-identity with the pure DES epoch requires draining the
            # whole event queue (the residual tail consumes randomness).
            engine.run()
        else:
            # Byzantine-primary / timeout replays are distributional-only,
            # so stop at the primary's commit instead of processing the
            # residual event tail (late commit deliveries, stale timers).
            while not outcome.committed and engine.step():
                pass
        if not outcome.committed:
            continue
        committee.consensus_latency = outcome.latency

    return [c for c in committees if c.consensus_latency is not None]


def run_intra_consensus_batch(
    committees: Sequence[Committee],
    params: ChainParams,
    rng: np.random.Generator,
    verify_mean_s: Optional[float] = None,
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> List[ShardBlock]:
    """Stage 3 for the ``fastpath`` engine: one batched kernel call.

    See :func:`_stage3_commit_times` for the kernel/fallback semantics.
    Returns the submitted shard blocks in committee order and stamps
    ``consensus_latency`` / ``shard_block`` on each committee, exactly
    like per-committee :meth:`Committee.run_intra_consensus` calls.
    """
    blocks: List[ShardBlock] = []
    for committee in _stage3_commit_times(
        committees, params, rng, verify_mean_s=verify_mean_s, telemetry=telemetry
    ):
        committee.shard_block = ShardBlock(
            committee_id=committee.committee_id,
            epoch=committee.epoch,
            tx_count=committee.shard_tx_count,
            formation_latency=committee.formation_latency,
            consensus_latency=committee.consensus_latency,
        )
        blocks.append(committee.shard_block)
    return blocks


def run_intra_consensus_streaming(
    committees: Sequence[Committee],
    params: ChainParams,
    rng: np.random.Generator,
    sink,
    verify_mean_s: Optional[float] = None,
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> int:
    """Stage 3 that folds submissions straight into a crosslink sink.

    Identical consensus semantics (and RNG consumption) to
    :func:`run_intra_consensus_batch`, but instead of materialising one
    :class:`ShardBlock` per committee it extends ``sink`` -- any object
    with an ``extend(ids, tx_counts, latencies)`` method, canonically
    :class:`repro.chain.final.CrosslinkAggregator` -- with three flat
    arrays in committee order.  At eth2 scale this keeps stage 3 -> 4
    hand-off allocation at three arrays instead of ~1024 Python objects
    plus a list.  Returns the number of submitted shards.
    """
    committed = _stage3_commit_times(
        committees, params, rng, verify_mean_s=verify_mean_s, telemetry=telemetry
    )
    if committed:
        count = len(committed)
        ids = np.fromiter((c.committee_id for c in committed), dtype=np.int64, count=count)
        tx_counts = np.fromiter(
            (c.shard_tx_count for c in committed), dtype=np.int64, count=count
        )
        latencies = np.fromiter(
            (c.formation_latency + c.consensus_latency for c in committed),
            dtype=np.float64,
            count=count,
        )
        sink.extend(ids, tx_counts, latencies)
    return len(committed)


def calibrated_verify_mean(params: ChainParams) -> float:
    """Per-replica verification mean that hits ``pbft_mean_total_s``.

    The primary's critical path is approximately: pre-prepare hop, replica
    verify, prepare quorum hop, replica verify, commit quorum hop -- i.e.
    two verify delays plus three message quorum waits.  Each quorum wait is
    roughly the ~67th-percentile network delay; we budget the network part
    as ``3 * 1.6 * base_delay`` and split the remainder across the two
    verify delays.
    """
    network_budget = 3 * 1.6 * params.network.base_delay
    verify_budget = max(params.pbft_mean_total_s - network_budget, 1e-3)
    return verify_budget / 2.0


def assign_shard_workload(
    committees: Sequence[Committee],
    tx_counts: Sequence[int],
) -> None:
    """Attach per-committee shard TX counts (from :mod:`repro.data`)."""
    if len(tx_counts) < len(committees):
        raise ValueError("need one tx count per committee")
    for committee, tx_count in zip(committees, tx_counts):
        committee.shard_tx_count = int(tx_count)
