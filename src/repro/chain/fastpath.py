"""Closed-form fast path for the chain substrate.

The DES in :mod:`repro.chain.pbft` / :mod:`repro.chain.network` /
:mod:`repro.sim.engine` is the *reference executable spec*: every
protocol message is a scheduled callback, which is faithful but costs
O(c^2) Python lambdas per PBFT stage.  This module computes the same
round latency in closed form with numpy order statistics, in the same
reference-vs-optimized discipline as :mod:`repro.core.engine` (the DES
stays ground truth; the fast path is validated distributionally with
per-size KS tests in ``tests/test_chain_fastpath.py``).

**PBFT kernel.**  With an honest view-0 primary, a loss-free network and
no view change, the DES round is a deterministic function of its random
inputs, so the whole event cascade collapses into matrix algebra:

* NIC serialisation is a *rank* matrix ``D[i, r] = pos(i, r) / bandwidth``
  where ``pos`` is recipient ``r``'s position in sender ``i``'s broadcast
  (member order, sender skipped);
* pre-prepare arrival at replica ``r`` is ``D[0, r] + Lognormal``;
* prepare votes land at ``B[i] + D[i, r] + Lognormal`` (``B`` = send time
  deferred by the sender's busy NIC), own votes at their send events, and
  a replica is *prepared* at the first vote event at or after
  ``max(pre-prepare arrival, 2f-th smallest vote)``;
* commit votes repeat the pattern and the round commits at the primary's
  ``(2f+1)``-th smallest commit-vote time -- order statistics instead of
  event scheduling.

The closed form is *invalid* (returns ``None`` -> caller falls back to
the DES) when the view-0 primary is Byzantine, the honest count cannot
reach quorum, ``loss_probability > 0``, or the computed commit time
reaches the view-change timeout (the DES would fire the timer first and
change views).  The first three checks happen before any RNG draw, so a
fallback round consumes the stream from exactly the same position as a
pure DES run and stays byte-identical; the timeout fallback necessarily
happens after the kernel's draws and is only distributionally faithful.

**Batched rounds.**  All committees of an epoch share one sequential RNG
stream, so :func:`repro.chain.committee.run_intra_consensus_batch` stacks
every closed-form-eligible committee into a single kernel call
(:func:`_pbft_kernel_batch`) instead of ``K`` small-matrix calls -- the
per-call numpy dispatch overhead dominates at ``c = 8``.  The batch draws
one 128-bit Philox key from the shared stream (a fixed two-``uint64``
consumption, whatever the batch shape) and replays the ineligible
committees under the DES afterwards; committee-vs-committee draw *order*
therefore differs from the one-round-at-a-time path, which is immaterial
because the draws are independent (the per-size KS tests cover both entry
points).  With a lossy network nothing is drawn by the kernel at all --
not even the key -- so a fully-fallback epoch stays byte-identical to the
pure DES epoch.

**Chunked streaming.**  At eth2 scale (``K = 1024`` committees of
``c = 128``) a monolithic batch would materialise several ``(K, c, c)``
tensors of ~135 MB each.  Instead the kernel is *counter-addressed*:
committee ``k`` owns the absolute Philox counter block
``[k * S / 4, (k + 1) * S / 4)`` where ``S`` is the per-committee uniform
budget (:func:`_kernel_draw_budget`, padded to whole 4-word counter
blocks), and the batch is processed in committee-index chunks sized by a
``max_batch_bytes`` scratch budget (:class:`repro.chain.params.ChainParams`,
default 256 MiB).  Because every committee's bytes live at a fixed
counter offset, the chunked result is *byte-identical* at any chunk size
-- including 1 and "everything at once" -- and the calling stream's
position never depends on the chunking.  Exponential and lognormal
variates come from the uniform lattice through exact inverse-CDF /
Box-Muller transforms, so the KS parity claims vs the DES are unchanged.
Per-chunk scratch (the uniform lattice, the normal block, and two
``(rows, c, c)`` vote matrices) is allocated once and reused across
chunks via ``out=`` ufuncs.

**Crosslink-scale note.**  The commit quorum only ever gates on votes
*to the primary* (the round commits at the primary's ``(2f+1)``-th
commit vote), so the kernel draws the commit-lag matrix's primary column
only -- ``c`` lognormals per committee instead of ``c^2`` --
distributionally identical to the historical full-matrix draw and one of
the two ``(K, c, c)`` tensors gone outright.

**Formation kernel.**  Stages 1-2 (PoW election + overlay configuration)
contain no event interleaving at all, so their vectorization is
*byte-identical* to the DES path: the same ``rng.exponential`` block
draw for solve times, grouped order statistics for fill times and
membership, a prefix-maximum recurrence for the serial registration
queue, and one gossip block draw in committee-index order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.node import Node
from repro.chain.params import NetworkParams
from repro.chain.pbft import PbftOutcome, run_pbft_round
from repro.chain.pow import _committee_of
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry
from repro.sim.rng import counter_rng, philox_key

#: NIC rank geometry per (committee size, 1/bandwidth) -- identical for
#: every round at a given configuration, so computing it per call would
#: be pure numpy dispatch overhead.  LRU-bounded: a long-running
#: multi-configuration sweep (network-size x committee-size x bandwidth)
#: must not grow the cache without limit.
_NIC_GEOMETRY: "OrderedDict[Tuple[int, float], Tuple[np.ndarray, np.ndarray, float]]" = (
    OrderedDict()
)
_NIC_GEOMETRY_MAX_ENTRIES = 16


def _nic_geometry(c: int, inv_bw: float) -> Tuple[np.ndarray, np.ndarray, float]:
    """``(nic, nic_free0, burst_s)`` for a ``c``-member committee.

    ``nic[i, r]`` is recipient ``r``'s NIC-serialisation delay in sender
    ``i``'s broadcast burst (member order, sender skipped); ``nic_free0``
    is each sender's NIC-busy horizon after the pre-prepare (only the
    primary's is non-zero); ``burst_s`` is one full broadcast burst.
    """
    key = (c, inv_bw)
    cached = _NIC_GEOMETRY.get(key)
    if cached is None:
        idx = np.arange(c)
        rank = np.where(idx[None, :] > idx[:, None], idx[None, :], idx[None, :] + 1)
        np.fill_diagonal(rank, 0)
        burst_s = (c - 1) * inv_bw
        nic_free0 = np.zeros(c)
        nic_free0[0] = burst_s
        cached = (rank * inv_bw, nic_free0, burst_s)
        _NIC_GEOMETRY[key] = cached
        if len(_NIC_GEOMETRY) > _NIC_GEOMETRY_MAX_ENTRIES:
            _NIC_GEOMETRY.popitem(last=False)
    else:
        _NIC_GEOMETRY.move_to_end(key)
    return cached


def _kernel_draw_budget(c: int) -> Tuple[int, int, int]:
    """``(uniforms, exponentials, normals)`` one committee consumes.

    Per ``c``-member committee the kernel needs ``2c`` exponentials
    (prepare + commit verify delays), and ``c + c^2 + c`` standard normals
    (pre-prepare lag, the full prepare-lag matrix, and the commit-lag
    primary column).  Normals come from Box-Muller pairs, so their uniform
    count is rounded up to even; the total is padded to a multiple of four
    so every committee starts on a whole Philox counter block.
    """
    n_exp = 2 * c
    n_norm = c * c + 2 * c
    n_norm_u = n_norm + (n_norm & 1)
    total = n_exp + n_norm_u
    total += (-total) % 4
    return total, n_exp, n_norm


def kernel_bytes_per_committee(c: int) -> int:
    """Approximate live scratch bytes one committee adds to a chunk.

    Counts the uniform lattice, the normal block plus its Box-Muller
    temporaries, the two ``(c, c)`` vote/partition matrices, the boolean
    threshold mask, and a dozen ``(c,)`` working vectors.  Used by
    :func:`kernel_chunk_rows` to size chunks under ``max_batch_bytes``.
    """
    total_u, _, n_norm = _kernel_draw_budget(c)
    n_norm_u = n_norm + (n_norm & 1)
    return 8 * (total_u + 2 * n_norm_u + 2 * c * c + 12 * c) + c * c


def kernel_chunk_rows(c: int, max_batch_bytes: Optional[int]) -> int:
    """Committees per chunk under a ``max_batch_bytes`` scratch budget.

    Always at least 1: a single committee is the smallest unit the kernel
    can process, even when it alone exceeds the budget.
    """
    if max_batch_bytes is None:
        return 2**31
    return max(1, int(max_batch_bytes) // kernel_bytes_per_committee(c))


def _pbft_kernel_batch(
    honest: np.ndarray,
    speeds: np.ndarray,
    rng: np.random.Generator,
    network_params: NetworkParams,
    verify_mean_s: float,
    max_batch_bytes: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The order-statistics kernel over a ``(K, c)`` committee stack.

    Returns ``(commit_time, prepared_primary)`` -- each shape ``(K,)`` --
    for ``K`` independent loss-free honest-primary rounds.  The caller is
    responsible for the pre-draw validity checks and for the post-draw
    view-change-timeout fallback.

    The only consumption from ``rng`` is one Philox key (two ``uint64``
    words); committee ``k``'s variates live at absolute counter offset
    ``k * S / 4`` of the keyed stream, so splitting the stack into chunks
    of any size -- bounded by ``max_batch_bytes`` of live scratch --
    reproduces identical bytes (see the module docstring).
    """
    num_rounds, c = honest.shape
    f = (c - 1) // 3
    nic, nic_free0, burst_s = _nic_geometry(c, 1.0 / network_params.bandwidth_msgs_per_s)
    mu = float(np.log(network_params.base_delay))
    sigma = network_params.jitter_sigma
    idx = np.arange(c)
    nic_col0 = nic[:, 0]

    key = philox_key(rng)
    total_u, n_exp, n_norm = _kernel_draw_budget(c)
    n_norm_u = n_norm + (n_norm & 1)
    rows = min(num_rounds, kernel_chunk_rows(c, max_batch_bytes))

    # Chunk-reused scratch: the uniform lattice, the normal block, and the
    # two (rows, c, c) matrices -- the only O(c^2)-per-committee arrays.
    uniforms = np.empty((rows, total_u))
    normals = np.empty((rows, n_norm_u))
    votes = np.empty((rows, c, c))
    scratch = np.empty((rows, c, c))

    commit_out = np.empty(num_rounds)
    prepared_out = np.empty(num_rounds)
    for start in range(0, num_rounds, rows):
        b = min(rows, num_rounds - start)
        counter_rng(key, start * (total_u // 4)).random(out=uniforms[:b].reshape(-1))
        u = uniforms[:b]
        z = normals[:b]

        # Box-Muller over the normal lattice (exact standard normals, so
        # the lognormal lags keep their DES distribution).
        u1 = u[:, n_exp : n_exp + n_norm_u : 2]
        u2 = u[:, n_exp + 1 : n_exp + n_norm_u : 2]
        radius = np.log1p(np.negative(u1))
        radius *= -2.0
        np.sqrt(radius, out=radius)
        theta = u2 * (2.0 * np.pi)
        z0 = z[:, 0::2]
        z1 = z[:, 1::2]
        np.cos(theta, out=z0)
        z0 *= radius
        np.sin(theta, out=z1)
        z1 *= radius

        # Verify delays: one inverse-CDF pass over both exponential lanes.
        expo = np.log1p(np.negative(u[:, :n_exp]))
        neg_scale = (-verify_mean_s) / speeds[start : start + b]
        verify1 = expo[:, :c]
        verify1 *= neg_scale
        verify2 = expo[:, c : 2 * c]
        verify2 *= neg_scale

        # Lognormal lags: one exp(mu + sigma * z) pass over the whole
        # normal block; lag_pre / lag1 / lag2-primary-column are views.
        z *= sigma
        z += mu
        np.exp(z, out=z)
        lag_pre = z[:, :c]
        lag2_col = z[:, c + c * c : c + c * c + c]

        honest_b = honest[start : start + b]

        # Pre-prepare arrivals (the primary pre-prepares itself at t=0).
        arrival = lag_pre
        arrival += nic[0][None, :]
        arrival[:, 0] = 0.0

        # Prepare votes: sent after one verify delay; the primary's NIC is
        # still draining the pre-prepare burst.
        prep_send = arrival + verify1
        depart1 = np.maximum(prep_send, nic_free0[None, :])
        votes_b = votes[:b]
        np.add(z[:, c : c + c * c].reshape(b, c, c), nic[None, :, :], out=votes_b)
        votes_b += depart1[:, :, None]
        votes_b[:, idx, idx] = prep_send
        votes_b[~honest_b] = np.inf
        # Prepared at the first vote event >= max(pre-prepare arrival,
        # 2f-th smallest vote) -- votes can land before the pre-prepare
        # and only count once the replica is pre-prepared.
        scratch_b = scratch[:b]
        np.copyto(scratch_b, votes_b)
        scratch_b.partition(2 * f - 1, axis=1)
        threshold = np.maximum(arrival, scratch_b[:, 2 * f - 1, :])
        np.copyto(scratch_b, votes_b)
        scratch_b[votes_b < threshold[:, None, :]] = np.inf
        prepared = scratch_b.min(axis=1)

        # Commit votes: one more verify delay.  A replica can become
        # prepared from *others'* votes while its own prepare verify is
        # still running, so its commit burst may hit the NIC before its
        # prepare burst -- burst order on the NIC is the event order of
        # the send calls.  (The late prepare burst then departs up to
        # (c-1)/bandwidth later, which we do not feed back into the
        # prepare quorums above: the window is measure-(c-1)/bandwidth
        # and sub-millisecond at default bandwidth, far below KS
        # resolution; the DES stays the reference for it.)  Only the
        # votes *to the primary* matter: the round commits at the
        # primary's (2f+1)-th commit vote, with no pre-prepare gate.
        commit_send = prepared + verify2
        commit_first = commit_send < prep_send
        depart2 = np.where(
            commit_first,
            np.maximum(commit_send, nic_free0[None, :]),
            np.maximum(commit_send, depart1 + burst_s),
        )
        votes2_primary = depart2 + nic_col0[None, :]
        votes2_primary += lag2_col
        votes2_primary[:, 0] = commit_send[:, 0]
        votes2_primary[~honest_b] = np.inf
        votes2_primary.partition(2 * f, axis=1)
        commit_out[start : start + b] = votes2_primary[:, 2 * f]
        prepared_out[start : start + b] = prepared[:, 0]
    return commit_out, prepared_out


def view_change_timeout(network_params: NetworkParams, verify_mean_s: float) -> float:
    """PbftRound's adaptive view-change timeout (must match it exactly)."""
    return 8.0 * verify_mean_s + 20.0 * network_params.base_delay


def _closed_form_pbft(
    members: Sequence[Node],
    rng: np.random.Generator,
    network_params: NetworkParams,
    verify_mean_s: float,
    round_tag: str,
    view_change_timeout_s: Optional[float],
    telemetry: NullTelemetry,
) -> Tuple[Optional[PbftOutcome], str]:
    """The order-statistics kernel; returns ``(outcome, fallback_reason)``.

    ``outcome`` is ``None`` when the closed form does not apply and the
    caller must run the reference DES; ``fallback_reason`` says why.
    """
    c = len(members)
    if c < 4:
        raise ValueError("PBFT needs at least 4 members (3f+1, f >= 1)")
    f = (c - 1) // 3
    if view_change_timeout_s is None:
        view_change_timeout_s = view_change_timeout(network_params, verify_mean_s)
    # Validity checks that consume no randomness -- a fallback from here
    # replays the DES from the identical stream position.
    if network_params.loss_probability > 0.0:
        return None, "lossy-network"
    honest = np.array([node.honest for node in members], dtype=bool)
    if not honest[0]:
        return None, "byzantine-primary"
    if int(honest.sum()) < 2 * f + 1:
        return None, "no-quorum"

    speeds = np.array([node.verify_speed for node in members])
    commit_times, prepared_primary = _pbft_kernel_batch(
        honest[None, :], speeds[None, :], rng, network_params, verify_mean_s
    )
    commit_time = float(commit_times[0])

    if not np.isfinite(commit_time) or commit_time >= view_change_timeout_s:
        # The DES would fire the view-change timer before this commit;
        # the cascade after that is not closed-form.  (The kernel's key
        # draw is already consumed, so this fallback is distributional
        # only.)
        return None, "view-change-timeout"

    outcome = PbftOutcome(
        committed=True,
        start_time=0.0,
        commit_time=commit_time,
        stage_times={
            "pre-prepare-sent": 0.0,
            "prepare-quorum": float(prepared_primary[0]),
            "commit-quorum": commit_time,
        },
    )
    if telemetry.enabled:
        telemetry.record_span(
            "chain.pbft.round",
            0.0,
            commit_time,
            tag=round_tag,
            view=0,
            members=c,
            stages=dict(outcome.stage_times),
        )
    return outcome, ""


def pbft_round_closed_form(
    members: Sequence[Node],
    rng: np.random.Generator,
    network_params: NetworkParams,
    verify_mean_s: float,
    round_tag: str = "round-0",
    view_change_timeout_s: Optional[float] = None,
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> Optional[PbftOutcome]:
    """Closed-form round latency, or ``None`` when the DES must run."""
    outcome, _ = _closed_form_pbft(
        members, rng, network_params, verify_mean_s, round_tag,
        view_change_timeout_s, telemetry,
    )
    return outcome


def run_pbft_round_fast(
    members: Sequence[Node],
    rng: np.random.Generator,
    network_params: NetworkParams,
    verify_mean_s: float,
    round_tag: str = "round-0",
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> PbftOutcome:
    """One PBFT round on the fast path, DES fallback when invalid."""
    outcome, reason = _closed_form_pbft(
        members, rng, network_params, verify_mean_s, round_tag, None, telemetry
    )
    if outcome is not None:
        return outcome
    if telemetry.enabled:
        telemetry.event("chain.fastpath.fallback", tag=round_tag, reason=reason)
    return run_pbft_round(
        members=members,
        rng=rng,
        network_params=network_params,
        verify_mean_s=verify_mean_s,
        round_tag=round_tag,
        telemetry=telemetry,
    )


def run_pbft(
    chain_engine: str,
    members: Sequence[Node],
    rng: np.random.Generator,
    network_params: NetworkParams,
    verify_mean_s: float,
    round_tag: str = "round-0",
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> PbftOutcome:
    """Engine dispatch for one PBFT round (``"des"`` | ``"fastpath"``)."""
    runner = run_pbft_round_fast if chain_engine == "fastpath" else run_pbft_round
    return runner(
        members=members,
        rng=rng,
        network_params=network_params,
        verify_mean_s=verify_mean_s,
        round_tag=round_tag,
        telemetry=telemetry,
    )


#: Per-node live-scratch estimate for :func:`formation_kernel` chunking:
#: the solve-time, id, assignment, sort-order and registration arrays plus
#: per-chunk draw temporaries, ~12 float64-sized slots per node.
FORMATION_BYTES_PER_NODE = 96


def formation_chunk_rows(max_batch_bytes: Optional[int]) -> int:
    """Nodes per formation-kernel chunk under ``max_batch_bytes``."""
    if max_batch_bytes is None:
        return 2**31
    return max(1, int(max_batch_bytes) // FORMATION_BYTES_PER_NODE)


def formation_kernel(
    nodes: Sequence[Node],
    num_committees: int,
    committee_size: int,
    mean_solve_s: float,
    epoch_randomness: str,
    registration_rate: float,
    rng: np.random.Generator,
    gossip_delay_mean: float = 4.0,
    solve_scales: Optional[np.ndarray] = None,
    node_ids: Optional[np.ndarray] = None,
    max_batch_bytes: Optional[int] = None,
) -> Tuple[Dict[int, float], Dict[int, List[int]], Dict[int, float]]:
    """Vectorized stages 1-2, byte-identical to the reference path.

    Returns ``(fill_times, members, overlay_times)`` matching
    :func:`repro.chain.pow.committee_fill_times`,
    :func:`repro.chain.pow.committee_members` and
    :func:`repro.chain.overlay.run_overlay_configuration` exactly: the
    solve-time block draw and the gossip block draw consume the RNG
    stream in the same order as the scalar reference loops.  Both block
    draws stream through node-index chunks sized by ``max_batch_bytes``
    (numpy's elementwise exponential consumes the stream sequentially,
    so chunked draws into a preallocated output are byte-identical to
    one monolithic draw at any chunk size).

    ``solve_scales`` / ``node_ids`` are optional precomputed per-node
    arrays (``mean_solve_s / hash_power`` and ids, in ``nodes`` order) --
    they are fixed for the lifetime of a deployment, so multi-epoch
    callers cache them instead of re-reading node attributes per epoch.
    """
    if num_committees <= 0:
        raise ValueError("num_committees must be positive")
    if mean_solve_s <= 0:
        raise ValueError("mean_solve_s must be positive")
    if registration_rate <= 0:
        raise ValueError("registration_rate must be positive")

    scales = (
        np.array([mean_solve_s / node.hash_power for node in nodes])
        if solve_scales is None
        else solve_scales
    )
    if node_ids is None:
        node_ids = np.array([node.node_id for node in nodes])
    n = scales.shape[0]
    step = max(1, min(n, formation_chunk_rows(max_batch_bytes)))
    times = np.empty(n)
    assigned = np.empty(n, dtype=np.int64)
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        times[lo:hi] = rng.exponential(scales[lo:hi])
        assigned[lo:hi] = [
            _committee_of(int(nid), epoch_randomness, num_committees)
            for nid in node_ids[lo:hi]
        ]

    # Directory arrival order (stable, like the reference's list sort).
    order = np.argsort(times, kind="stable")
    t_sorted = times[order]
    ids_sorted = node_ids[order]
    comm_sorted = assigned[order]

    # Serial registration queue: free_k = max(free_{k-1}, t_k) + s, which
    # unrolls to a prefix maximum.
    service = 1.0 / registration_rate
    k = np.arange(t_sorted.size)
    ready_sorted = np.maximum.accumulate(t_sorted - k * service) + (k + 1) * service

    # Group arrivals by committee, keeping arrival order inside groups.
    group_order = np.argsort(comm_sorted, kind="stable")
    grouped = comm_sorted[group_order]
    starts = np.flatnonzero(np.r_[True, grouped[1:] != grouped[:-1]])
    ends = np.r_[starts[1:], grouped.size]

    fills: Dict[int, float] = {}
    members: Dict[int, List[int]] = {}
    last_ready: List[float] = []
    for start, end in zip(starts, ends):
        if end - start < committee_size:
            continue  # this committee never fills this epoch
        rows = group_order[start : start + committee_size]
        committee_index = int(grouped[start])
        fills[committee_index] = float(t_sorted[rows[-1]])
        members[committee_index] = [int(nid) for nid in ids_sorted[rows]]
        last_ready.append(float(ready_sorted[rows].max()))

    # One gossip delay per filled committee, in committee-index order --
    # grouped indices are already ascending, matching the reference dict.
    gossip = np.empty(len(members))
    for lo in range(0, len(members), step):
        hi = min(lo + step, len(members))
        gossip[lo:hi] = rng.exponential(gossip_delay_mean, size=hi - lo)
    overlay = {
        committee_index: last + float(g)
        for (committee_index, last), g in zip(zip(members.keys(), last_ready), gossip)
    }
    return fills, members, overlay
