"""Stage 5: epoch randomness refreshing.

The final committee ends each epoch by generating a set of random strings
used to seed the next epoch's PoW election (Elastico's epoch randomness).
We implement the standard commit-then-reveal construction: every final-
committee member contributes a share; the epoch seed is the hash of the
sorted shares, so no single member controls the outcome.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

GENESIS_RANDOMNESS = hashlib.sha256(b"mvcom-genesis-randomness").hexdigest()


def member_share(epoch: int, node_id: int, rng: np.random.Generator) -> str:
    """One member's random contribution for the next epoch."""
    nonce = int(rng.integers(0, 2**62))
    return hashlib.sha256(f"{epoch}:{node_id}:{nonce}".encode("utf-8")).hexdigest()


def combine_shares(shares: Sequence[str]) -> str:
    """Combine members' shares into the next epoch's seed.

    Sorting makes the combination order-independent (shares arrive in
    network order, which must not matter), and hashing the concatenation
    means any single honest share randomises the output.
    """
    if not shares:
        raise ValueError("need at least one share")
    preimage = "|".join(sorted(shares)).encode("utf-8")
    return hashlib.sha256(preimage).hexdigest()


def refresh_randomness(
    epoch: int,
    member_ids: Sequence[int],
    rng: np.random.Generator,
) -> str:
    """Run the full stage-5 exchange for one epoch."""
    shares: List[str] = [member_share(epoch, node_id, rng) for node_id in member_ids]
    return combine_shares(shares)
