"""Stage 3: intra-committee PBFT consensus on the DES engine.

A faithful latency-level simulation of the three PBFT voting stages [3]:

1. **pre-prepare** -- the primary broadcasts the proposal to all replicas;
2. **prepare** -- every honest replica broadcasts a PREPARE; a replica is
   *prepared* once it holds 2f matching PREPAREs (plus the pre-prepare);
3. **commit** -- prepared replicas broadcast COMMIT; the request commits at
   a replica once it holds 2f+1 COMMITs.

Byzantine members stay silent (the classic crash-equivalent behaviour for
latency analysis), so quorums must be assembled from honest votes only --
committees that drew more Byzantine members, slower verifiers, or worse
network luck take visibly longer, producing the "unbalanced consensus
latency" the paper measures in Fig. 2b.

The simulation delivers every protocol message through
:class:`repro.chain.network.Network` (lognormal delays + sender-NIC
serialisation) and adds a per-replica verification delay proportional to
``1 / verify_speed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.chain.network import Message, Network
from repro.chain.node import Node
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry
from repro.sim.engine import SimulationEngine


@dataclass
class PbftOutcome:
    """Result of one committee's PBFT round."""

    committed: bool
    start_time: float
    commit_time: Optional[float]
    #: per-stage completion (at the primary's view): pre-prepare delivered,
    #: prepare quorum, commit quorum
    stage_times: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Commit latency of the round (raises if it never committed)."""
        if self.commit_time is None:
            raise ValueError("round did not commit")
        return self.commit_time - self.start_time


class _ReplicaState:
    """Per-replica vote bookkeeping."""

    __slots__ = ("node", "preprepared", "prepares", "commits", "prepared", "committed_at")

    def __init__(self, node: Node) -> None:
        self.node = node
        self.preprepared = False
        self.prepares: set = set()
        self.commits: set = set()
        self.prepared = False
        self.committed_at: Optional[float] = None


class PbftRound:
    """One PBFT consensus round inside one committee.

    Drive it by constructing it (messages start flowing at ``start_time``)
    and then running the engine; ``outcome`` is filled in when the primary
    commits (2f+1 COMMITs at the primary), which is the moment the
    committee can ship its shard block to the final committee.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        members: Sequence[Node],
        rng: np.random.Generator,
        verify_mean_s: float,
        start_time: float = 0.0,
        round_tag: str = "round-0",
        view_change_timeout_s: Optional[float] = None,
        telemetry: NullTelemetry = NULL_TELEMETRY,
    ) -> None:
        if len(members) < 4:
            raise ValueError("PBFT needs at least 4 members (3f+1, f >= 1)")
        if view_change_timeout_s is None:
            # Adaptive default: comfortably above a normal round's critical
            # path (two verify delays + a few propagation hops), so honest
            # slow rounds do not trigger spurious view changes.
            view_change_timeout_s = 8.0 * verify_mean_s + 20.0 * network.params.base_delay
        if view_change_timeout_s <= 0:
            raise ValueError("view_change_timeout_s must be positive")
        self.engine = engine
        self.network = network
        self.members = list(members)
        self.rng = rng
        self.verify_mean_s = verify_mean_s
        self.start_time = start_time
        self.round_tag = round_tag
        self.view_change_timeout_s = view_change_timeout_s
        #: Injected hub (rule MV007): the committed round lands as one
        #: ``chain.pbft.round`` span on simulation time; view changes as events.
        self.telemetry = telemetry
        self.fault_budget = (len(self.members) - 1) // 3
        self.view = 0
        self.outcome = PbftOutcome(committed=False, start_time=start_time, commit_time=None)
        self._states = {node.node_id: _ReplicaState(node) for node in self.members}
        self._member_ids = [node.node_id for node in self.members]
        self._view_change_votes: set = set()
        self._max_views = len(self.members)  # every member gets one shot at leading
        #: deterministic per-network address registry (PYTHONHASHSEED-free,
        #: collision-free; see lint rule MV009)
        self._addrs: Dict[int, int] = {
            node.node_id: network.claim_address() for node in self.members
        }

        for node in self.members:
            self.network.register(self._addr(node.node_id), self._make_handler(node.node_id))
        engine.schedule_at(max(start_time, engine.now), self._send_preprepare)
        self._arm_view_timeout()

    @property
    def primary(self) -> Node:
        """The view's primary: PBFT's round-robin ``view mod |R|`` rule."""
        return self.members[self.view % len(self.members)]

    # ------------------------------------------------------------------ #
    def _addr(self, node_id: int) -> int:
        """Network address of a member (registry-allocated, never collides)."""
        return self._addrs[node_id]

    def _verify_delay(self, node: Node) -> float:
        """Transaction/signature verification time at one replica."""
        return float(self.rng.exponential(self.verify_mean_s / node.verify_speed))

    @property
    def prepare_quorum(self) -> int:
        """Votes needed to become prepared: 2f."""
        return 2 * self.fault_budget

    @property
    def commit_quorum(self) -> int:
        """Votes needed to commit: 2f + 1."""
        return 2 * self.fault_budget + 1

    # ------------------------------------------------------------------ #
    # view changes: a Byzantine primary never sends its pre-prepare; honest
    # replicas time out, broadcast VIEW-CHANGE, and once 2f+1 such votes
    # collect at the next primary a NEW-VIEW restarts the three phases.
    # ------------------------------------------------------------------ #
    def _arm_view_timeout(self) -> None:
        view_at_arming = self.view
        # Classic PBFT exponential backoff: each view change doubles the
        # next timeout, guaranteeing progress even when rounds run long.
        timeout = self.view_change_timeout_s * (2.0 ** self.view)
        self.engine.schedule(timeout, lambda: self._on_view_timeout(view_at_arming))

    def _on_view_timeout(self, armed_view: int) -> None:
        if self.outcome.committed or self.view != armed_view:
            return  # progress happened; stale timer
        if self.view + 1 >= self._max_views:
            return  # give up: the committee stalls this epoch
        for node in self.members:
            if node.honest:
                self._broadcast(node.node_id, "view-change", payload=(self.view + 1, node.node_id))

    def _on_view_change_vote(self, view: int, voter: int) -> None:
        if view != self.view + 1:
            return
        self._view_change_votes.add(voter)
        if len(self._view_change_votes) >= self.commit_quorum:
            self._view_change_votes = set()
            self.view += 1
            self.outcome.stage_times[f"new-view-{self.view}"] = self.engine.now
            if self.telemetry.enabled:
                self.telemetry.event(
                    "chain.pbft.view_change",
                    tag=self.round_tag,
                    view=self.view,
                    at=self.engine.now,
                )
            # Reset per-replica vote state for the new view.
            for state in self._states.values():
                state.preprepared = False
                state.prepares = set()
                state.commits = set()
                state.prepared = False
            self._send_preprepare()
            self._arm_view_timeout()

    def _broadcast(self, sender: int, kind: str, payload: object) -> None:
        self.network.broadcast(
            self._addr(sender),
            [self._addr(other) for other in self._member_ids if other != sender],
            kind,
            payload,
        )

    def _send_preprepare(self) -> None:
        if not self.primary.honest:
            return  # Byzantine primary stays silent; the view timeout fires
        self.outcome.stage_times.setdefault("pre-prepare-sent", self.engine.now)
        self.network.broadcast(
            self._addr(self.primary.node_id),
            [
                self._addr(node.node_id)
                for node in self.members
                if node.node_id != self.primary.node_id
            ],
            "pre-prepare",
        )
        # The primary pre-prepares itself immediately.
        self._on_preprepare(self.primary.node_id)

    def _make_handler(self, node_id: int):
        def handle(message: Message) -> None:
            """Dispatch one delivered protocol message at this replica."""
            state = self._states[node_id]
            if not state.node.honest:
                return  # Byzantine replicas stay silent
            if message.kind == "pre-prepare":
                self._on_preprepare(node_id)
            elif message.kind == "prepare":
                state.prepares.add(message.payload)
                self._check_prepared(node_id)
            elif message.kind == "commit":
                state.commits.add(message.payload)
                self._check_committed(node_id)
            elif message.kind == "view-change":
                # Votes are tallied at the protocol level (the incoming
                # primary's bookkeeping in real PBFT).
                view, voter = message.payload
                self._on_view_change_vote(view, voter)
        return handle

    def _on_preprepare(self, node_id: int) -> None:
        state = self._states[node_id]
        if state.preprepared:
            return
        state.preprepared = True
        delay = self._verify_delay(state.node)
        self.engine.schedule(delay, lambda: self._broadcast_vote(node_id, "prepare"))

    def _broadcast_vote(self, node_id: int, kind: str) -> None:
        self._broadcast(node_id, kind, payload=node_id)
        # Count the sender's own vote locally.
        state = self._states[node_id]
        if kind == "prepare":
            state.prepares.add(node_id)
            self._check_prepared(node_id)
        else:
            state.commits.add(node_id)
            self._check_committed(node_id)

    def _check_prepared(self, node_id: int) -> None:
        state = self._states[node_id]
        if state.prepared or not state.preprepared:
            return
        if len(state.prepares) >= self.prepare_quorum:
            state.prepared = True
            if node_id == self.primary.node_id:
                self.outcome.stage_times["prepare-quorum"] = self.engine.now
            delay = self._verify_delay(state.node)
            self.engine.schedule(delay, lambda: self._broadcast_vote(node_id, "commit"))

    def _check_committed(self, node_id: int) -> None:
        state = self._states[node_id]
        if state.committed_at is not None:
            return
        if len(state.commits) >= self.commit_quorum:
            state.committed_at = self.engine.now
            if node_id == self.primary.node_id:
                self.outcome.committed = True
                self.outcome.commit_time = self.engine.now
                self.outcome.stage_times["commit-quorum"] = self.engine.now
                if self.telemetry.enabled:
                    self.telemetry.record_span(
                        "chain.pbft.round",
                        self.start_time,
                        self.engine.now,
                        tag=self.round_tag,
                        view=self.view,
                        members=len(self.members),
                        stages=dict(self.outcome.stage_times),
                    )


def run_pbft_round(
    members: Sequence[Node],
    rng: np.random.Generator,
    network_params,
    verify_mean_s: float,
    round_tag: str = "round-0",
    telemetry: NullTelemetry = NULL_TELEMETRY,
) -> PbftOutcome:
    """Convenience wrapper: run a single round on a fresh engine to completion."""
    engine = SimulationEngine(telemetry=telemetry)
    network = Network(engine, network_params, rng)
    pbft = PbftRound(
        engine=engine,
        network=network,
        members=members,
        rng=rng,
        verify_mean_s=verify_mean_s,
        round_tag=round_tag,
        telemetry=telemetry,
    )
    engine.run()
    return pbft.outcome
