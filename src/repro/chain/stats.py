"""Chain-level performance statistics.

The paper's motivation is end-to-end: "the blockchain throughput can be
significantly degraded because of the large transaction's cumulative age".
This module measures that chain-level view over multi-epoch runs of the
Elastico substrate -- effective TX throughput per unit of protocol time,
age distributions of confirmed TXs, and per-epoch breakdowns -- so
scheduler policies can be compared on what the root chain actually
delivers, not just the per-epoch utility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chain.elastico import EpochOutcome


@dataclass(frozen=True)
class EpochStats:
    """One epoch's chain-level accounting."""

    epoch: int
    confirmed_txs: int
    epoch_duration_s: float       # DDL + final-consensus latency
    cumulative_age_s: float       # total waiting of confirmed TXs' shards
    committees_formed: int
    shards_submitted: int
    shards_permitted: int

    @property
    def throughput_tps(self) -> float:
        """Confirmed transactions per second of protocol time."""
        return self.confirmed_txs / self.epoch_duration_s if self.epoch_duration_s > 0 else 0.0

    @property
    def mean_age_s(self) -> float:
        """Average cumulative age per permitted shard."""
        return self.cumulative_age_s / self.shards_permitted if self.shards_permitted else 0.0


def epoch_stats(outcome: EpochOutcome) -> Optional[EpochStats]:
    """Extract chain-level stats from one epoch outcome (None if no block)."""
    if outcome.final is None:
        return None
    final = outcome.final
    duration = final.ddl + final.final_pbft_latency
    return EpochStats(
        epoch=outcome.epoch,
        confirmed_txs=final.permitted_txs,
        epoch_duration_s=duration,
        cumulative_age_s=final.instance.cumulative_age(final.permitted_mask),
        committees_formed=len(outcome.committees),
        shards_submitted=len(outcome.shard_blocks),
        shards_permitted=final.permitted_committees,
    )


@dataclass
class ChainRunStats:
    """Aggregated statistics across a multi-epoch run."""

    epochs: List[EpochStats] = field(default_factory=list)

    def add(self, outcome: EpochOutcome) -> Optional[EpochStats]:
        """Fold one epoch outcome into the running statistics."""
        stats = epoch_stats(outcome)
        if stats is not None:
            self.epochs.append(stats)
        return stats

    @property
    def total_txs(self) -> int:
        """Transactions confirmed across the recorded epochs."""
        return sum(stats.confirmed_txs for stats in self.epochs)

    @property
    def total_duration_s(self) -> float:
        """Summed per-epoch protocol durations."""
        return sum(stats.epoch_duration_s for stats in self.epochs)

    @property
    def throughput_tps(self) -> float:
        """Confirmed TXs per second of protocol time, run-wide."""
        return self.total_txs / self.total_duration_s if self.total_duration_s > 0 else 0.0

    @property
    def mean_age_s(self) -> float:
        """Average cumulative age per permitted shard."""
        permitted = sum(stats.shards_permitted for stats in self.epochs)
        if permitted == 0:
            return 0.0
        return sum(stats.cumulative_age_s for stats in self.epochs) / permitted

    def summary(self) -> dict:
        """One-row dict for the reporting layer."""
        return {
            "epochs": len(self.epochs),
            "total_txs": self.total_txs,
            "throughput_tps": round(self.throughput_tps, 3),
            "mean_shard_age_s": round(self.mean_age_s, 2),
            "mean_epoch_duration_s": round(
                self.total_duration_s / len(self.epochs), 2
            ) if self.epochs else 0.0,
        }


def compare_runs(runs: Sequence[ChainRunStats], labels: Sequence[str]) -> List[dict]:
    """Side-by-side rows for the reporting layer."""
    if len(runs) != len(labels):
        raise ValueError("one label per run")
    return [dict(policy=label, **run.summary()) for label, run in zip(labels, runs)]
