"""Transactions, the mempool, and Elastico's TX-to-shard partitioning.

Elastico committees "collaboratively process a disjoint set of
transactions, which is called a shard".  The disjointness comes from the
protocol itself: a transaction belongs to the committee whose identifier
matches the low-order bits of the transaction hash, so no coordination is
needed and no TX can be double-committed across shards.

This module provides that layer:

* :class:`Transaction` -- a fee-bearing transaction with a stable id;
* :class:`Mempool` -- pending transactions with arrival bookkeeping;
* :func:`assign_to_committees` -- the hash-prefix partition;
* :func:`verify_disjoint` -- the final committee's cross-shard double-
  spend check before merging shards into the final block.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class Transaction:
    """One pending transaction."""

    tx_id: str
    fee: float = 1.0
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.tx_id:
            raise ValueError("tx_id must be non-empty")
        if self.fee < 0:
            raise ValueError("fee must be non-negative")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")

    def committee_of(self, num_committees: int) -> int:
        """The hash-prefix shard assignment (Elastico's partition rule)."""
        if num_committees <= 0:
            raise ValueError("num_committees must be positive")
        digest = hashlib.sha256(self.tx_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little") % num_committees


def synthetic_transactions(
    count: int,
    rng: np.random.Generator,
    mean_fee: float = 1.0,
    arrival_span_s: float = 600.0,
    tag: str = "tx",
) -> List[Transaction]:
    """Generate ``count`` synthetic transactions with exponential fees."""
    if count < 0:
        raise ValueError("count must be non-negative")
    fees = rng.exponential(mean_fee, size=count)
    arrivals = np.sort(rng.uniform(0.0, arrival_span_s, size=count))
    return [
        Transaction(tx_id=f"{tag}-{index:08d}", fee=float(fees[index]),
                    arrival_time=float(arrivals[index]))
        for index in range(count)
    ]


@dataclass
class Mempool:
    """Pending transactions awaiting shard inclusion."""

    transactions: Dict[str, Transaction] = field(default_factory=dict)

    def add(self, transaction: Transaction) -> None:
        """Admit one transaction (duplicates rejected)."""
        if transaction.tx_id in self.transactions:
            raise ValueError(f"duplicate transaction {transaction.tx_id}")
        self.transactions[transaction.tx_id] = transaction

    def add_many(self, transactions: Iterable[Transaction]) -> None:
        """Admit a batch of transactions."""
        for transaction in transactions:
            self.add(transaction)

    def __len__(self) -> int:
        return len(self.transactions)

    def remove_committed(self, tx_ids: Iterable[str]) -> int:
        """Drop committed transactions; returns how many were present."""
        removed = 0
        for tx_id in tx_ids:
            if self.transactions.pop(tx_id, None) is not None:
                removed += 1
        return removed

    @property
    def total_fees(self) -> float:
        """Sum of pending transaction fees."""
        return sum(tx.fee for tx in self.transactions.values())


def assign_to_committees(
    mempool: Mempool,
    num_committees: int,
) -> Dict[int, Tuple[str, ...]]:
    """Partition the mempool into per-committee shards (hash-prefix rule).

    Every committee index in ``range(num_committees)`` appears in the
    result (possibly with an empty shard); transaction order within a
    shard is by arrival time, then id (deterministic).
    """
    shards: Dict[int, List[Transaction]] = {index: [] for index in range(num_committees)}
    for transaction in mempool.transactions.values():
        shards[transaction.committee_of(num_committees)].append(transaction)
    return {
        index: tuple(
            tx.tx_id for tx in sorted(bucket, key=lambda t: (t.arrival_time, t.tx_id))
        )
        for index, bucket in shards.items()
    }


def verify_disjoint(shards: Sequence[Sequence[str]]) -> Optional[str]:
    """Cross-shard double-commit check: returns an offending tx id or None.

    The final committee runs this before merging permitted shards into the
    final block; with honest hash-prefix assignment it always passes, but a
    Byzantine committee could claim foreign transactions.
    """
    seen: Set[str] = set()
    for shard in shards:
        for tx_id in shard:
            if tx_id in seen:
                return tx_id
            seen.add(tx_id)
    return None
