"""Common interface for all committee schedulers.

Every algorithm (SE and the baselines) consumes an
:class:`repro.core.problem.EpochInstance` and produces a
:class:`ScheduleResult` carrying the selected mask plus a best-so-far
utility trace, so the convergence figures (Figs. 11, 12, 14) can plot every
algorithm on the same axes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.problem import EpochInstance
from repro.core.repair import repair_cardinality
from repro.core.solution import Solution
from repro.sim.rng import spawn_rng

__all__ = [
    "ScheduleResult",
    "Scheduler",
    "greedy_feasible_start",
    "random_feasible_start",
    # Re-export: repair_cardinality moved to repro.core.repair (PR 3) so the
    # SE core can use it without importing baselines; import it from there.
    "repair_cardinality",
]


@dataclass
class ScheduleResult:
    """Outcome of one scheduler run on one epoch instance."""

    algorithm: str
    mask: np.ndarray
    utility: float
    weight: int
    count: int
    iterations: int
    utility_trace: np.ndarray

    @classmethod
    def from_solution(
        cls,
        algorithm: str,
        solution: Solution,
        iterations: int,
        utility_trace: Optional[List[float]] = None,
    ) -> "ScheduleResult":
        """Wrap a Solution (plus its best-so-far trace) into a result."""
        trace = np.asarray(utility_trace if utility_trace is not None else [solution.utility])
        return cls(
            algorithm=algorithm,
            mask=solution.mask.copy(),
            utility=solution.utility,
            weight=solution.weight,
            count=solution.count,
            iterations=iterations,
            utility_trace=trace,
        )


class Scheduler(abc.ABC):
    """Abstract committee scheduler."""

    #: Short name used in figures and CSV headers ("SE", "SA", "DP", "WOA", ...).
    name: str = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    @abc.abstractmethod
    def solve(self, instance: EpochInstance, budget_iterations: int) -> ScheduleResult:
        """Schedule one epoch within an iteration budget."""

    def _rng(self, instance: EpochInstance) -> np.random.Generator:
        """A per-(scheduler, instance-size) RNG stream; deterministic per seed."""
        return spawn_rng(self.seed, f"{self.name}:{instance.num_shards}")


def greedy_feasible_start(
    instance: EpochInstance, rng: Optional[np.random.Generator] = None
) -> Solution:
    """A capacity-feasible starting point shared by the iterative baselines.

    Packs shards by decreasing value density until the capacity or the value
    sign runs out, then (if needed) pads with the lightest remaining shards
    to reach the cardinality floor.
    """
    density = np.where(
        instance.tx_counts > 0,
        instance.values / np.maximum(instance.tx_counts, 1),
        np.where(instance.values > 0, np.inf, -np.inf),
    )
    solution = Solution(instance)
    for position in np.argsort(-density, kind="stable"):
        position = int(position)
        if instance.values[position] <= 0 and solution.count >= instance.n_min:
            break
        if solution.weight + int(instance.tx_counts[position]) <= instance.capacity:
            solution.flip(position)
    repair_cardinality(instance, solution)
    return solution


def random_feasible_start(
    instance: EpochInstance, rng: np.random.Generator, max_tries: int = 200
) -> Solution:
    """A random capacity-feasible subset at a random feasible cardinality."""
    n_hi = max(instance.max_feasible_cardinality, 1)
    n_lo = max(1, min(instance.n_min, n_hi))
    for _ in range(max_tries):
        cardinality = int(rng.integers(n_lo, n_hi + 1))
        picked = rng.choice(instance.num_shards, size=cardinality, replace=False)
        candidate = Solution.from_indices(instance, picked)
        if candidate.capacity_feasible:
            return candidate
    return greedy_feasible_start(instance)
