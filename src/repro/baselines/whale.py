"""Binary Whale Optimization Algorithm baseline (the paper's "WOA" [25, 26]).

WOA imitates humpback hunting: each *whale* (candidate solution) either
encircles the current best (exploitation), spirals towards it
(bubble-net attack), or follows a random whale (exploration), with the
balance controlled by a coefficient ``a`` that decays from 2 to 0 over the
run.  For the binary MVCom domain we keep whales as continuous position
vectors and decode them through a sigmoid transfer function, the standard
binary-WOA construction; decoded selections are repaired to capacity
feasibility before evaluation.

The paper finds WOA consistently worst -- the swarm's dense continuous
updates map poorly onto a high-dimensional binary knapsack -- and this
implementation reproduces that ordering without any artificial handicap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.contracts import feasible_result
from repro.baselines.base import ScheduleResult, Scheduler, repair_cardinality
from repro.core.problem import EpochInstance
from repro.core.solution import Solution


@dataclass(frozen=True)
class WhaleParams:
    """Swarm-size and spiral-shape parameters of WOA."""
    population: int = 30
    spiral_constant: float = 1.0  # the paper's b in e^{bl} cos(2*pi*l)

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("WOA needs at least two whales")


class WhaleOptimizationScheduler(Scheduler):
    """Binary WOA with sigmoid transfer and capacity repair."""

    name = "WOA"

    def __init__(self, seed: int = 0, params: WhaleParams = WhaleParams()) -> None:
        super().__init__(seed=seed)
        self.params = params

    @feasible_result
    def solve(self, instance: EpochInstance, budget_iterations: int) -> ScheduleResult:
        """Run the whale swarm for ``budget_iterations`` generations."""
        rng = self._rng(instance)
        dim = instance.num_shards
        pop = self.params.population

        positions = rng.normal(0.0, 1.0, size=(pop, dim))
        fitness, masks = self._evaluate(instance, positions, rng)
        best_index = int(np.argmax(fitness))
        best_fitness = float(fitness[best_index])
        best_mask = masks[best_index].copy()
        best_position = positions[best_index].copy()
        trace = []

        for iteration in range(budget_iterations):
            a = 2.0 * (1.0 - iteration / max(budget_iterations, 1))
            for w in range(pop):
                r1, r2 = rng.random(dim), rng.random(dim)
                coefficient_a = 2.0 * a * r1 - a
                coefficient_c = 2.0 * r2
                if rng.random() < 0.5:
                    if np.abs(coefficient_a).mean() < 1.0:
                        # Encircling the best whale.
                        distance = np.abs(coefficient_c * best_position - positions[w])
                        positions[w] = best_position - coefficient_a * distance
                    else:
                        # Exploring around a random whale.
                        partner = positions[int(rng.integers(pop))]
                        distance = np.abs(coefficient_c * partner - positions[w])
                        positions[w] = partner - coefficient_a * distance
                else:
                    # Spiral bubble-net attack.
                    spiral = rng.uniform(-1.0, 1.0)
                    distance = np.abs(best_position - positions[w])
                    positions[w] = (
                        distance
                        * math.exp(self.params.spiral_constant * spiral)
                        * math.cos(2.0 * math.pi * spiral)
                        + best_position
                    )
            np.clip(positions, -6.0, 6.0, out=positions)

            fitness, masks = self._evaluate(instance, positions, rng)
            round_best = int(np.argmax(fitness))
            if float(fitness[round_best]) > best_fitness:
                best_fitness = float(fitness[round_best])
                best_mask = masks[round_best].copy()
                best_position = positions[round_best].copy()
            trace.append(best_fitness)

        solution = Solution(instance, best_mask)
        return ScheduleResult.from_solution(self.name, solution, budget_iterations, trace)

    # ------------------------------------------------------------------ #
    def _evaluate(self, instance: EpochInstance, positions: np.ndarray, rng: np.random.Generator):
        """Sigmoid-decode each whale, repair to capacity, score utilities."""
        probabilities = 1.0 / (1.0 + np.exp(-positions))
        raw_masks = rng.random(positions.shape) < probabilities
        fitness = np.empty(len(positions))
        masks = []
        for w, raw in enumerate(raw_masks):
            mask = self._repair(instance, raw.copy(), rng)
            masks.append(mask)
            fitness[w] = float(instance.values[mask].sum())
        return fitness, masks

    @staticmethod
    def _repair(instance: EpochInstance, mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Drop random selected shards until the capacity Ĉ holds, then
        enforce the cardinality floor N_min (const. 3) via the shared
        swap-based repair, so every scored whale is fully feasible."""
        weight = int(instance.tx_counts[mask].sum())
        while weight > instance.capacity:
            selected = np.flatnonzero(mask)
            victim = int(selected[rng.integers(len(selected))])
            mask[victim] = False
            weight -= int(instance.tx_counts[victim])
        if int(mask.sum()) < instance.n_min:
            solution = Solution(instance, mask)
            repair_cardinality(instance, solution)
            return solution.mask
        return mask
