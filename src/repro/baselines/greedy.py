"""Greedy density baseline (reference point, not in the paper's trio).

Packs shards by decreasing value density under the capacity, then pads to
the cardinality floor.  One-shot and deterministic: a useful sanity anchor
for tests (SE must never lose to it by much) and for the ablation benches.
"""

from __future__ import annotations

from repro.analysis.contracts import feasible_result
from repro.baselines.base import ScheduleResult, Scheduler, greedy_feasible_start
from repro.core.problem import EpochInstance


class GreedyDensityScheduler(Scheduler):
    """Value-density greedy packing."""

    name = "Greedy"

    @feasible_result
    def solve(self, instance: EpochInstance, budget_iterations: int = 1) -> ScheduleResult:
        """One-shot density-greedy packing (budget sets the trace length)."""
        solution = greedy_feasible_start(instance)
        trace = [solution.utility] * max(budget_iterations, 1)
        return ScheduleResult.from_solution(self.name, solution, 1, trace)
