"""Uniform random search baseline (reference point, not in the paper's trio).

Repeatedly samples random feasible selections and keeps the best.  This is
the floor any guided search must clear; the benches use it to show how much
of SE's advantage comes from guidance rather than sheer sampling volume.
"""

from __future__ import annotations

from repro.analysis.contracts import feasible_result
from repro.baselines.base import ScheduleResult, Scheduler, random_feasible_start
from repro.core.problem import EpochInstance


class RandomSearchScheduler(Scheduler):
    """Best-of-N uniform feasible sampling."""

    name = "Random"

    @feasible_result
    def solve(self, instance: EpochInstance, budget_iterations: int) -> ScheduleResult:
        """Best of ``budget_iterations`` uniform feasible samples."""
        rng = self._rng(instance)
        best = random_feasible_start(instance, rng)
        trace = [best.utility]
        for _ in range(max(budget_iterations - 1, 0)):
            candidate = random_feasible_start(instance, rng)
            if candidate.utility > best.utility:
                best = candidate
            trace.append(best.utility)
        return ScheduleResult.from_solution(self.name, best, budget_iterations, trace)
