"""Baseline committee schedulers (Section VI-B).

The paper compares SE against three baselines, all implemented here from
scratch behind one interface (:class:`repro.baselines.base.Scheduler`):

* **SA** -- Simulated Annealing [22],
* **DP** -- Dynamic Programming over a (scaled) knapsack table [23, 24],
* **WOA** -- the binary Whale Optimization Algorithm [25, 26].

Two extra reference points, greedy density packing and uniform random
search, are included for the ablation benches.
"""

from repro.baselines.base import ScheduleResult, Scheduler
from repro.baselines.annealing import SimulatedAnnealingScheduler
from repro.baselines.knapsack_dp import DynamicProgrammingScheduler
from repro.baselines.whale import WhaleOptimizationScheduler
from repro.baselines.greedy import GreedyDensityScheduler
from repro.baselines.random_search import RandomSearchScheduler

__all__ = [
    "ScheduleResult",
    "Scheduler",
    "SimulatedAnnealingScheduler",
    "DynamicProgrammingScheduler",
    "WhaleOptimizationScheduler",
    "GreedyDensityScheduler",
    "RandomSearchScheduler",
]
