"""Dynamic Programming baseline (the paper's "DP" [23, 24]).

The epoch subproblem has knapsack structure, so the natural DP baseline is
the classic capacity-indexed table.  Two design choices mirror the paper:

* **Objective.** The paper describes DP as "a classical decision-making
  technique" applied to the scheduling problem and observes that it attains
  competitive *utility* at large ``|I_j|`` (Fig. 11) while producing a
  "pretty low" *Valuable Degree* (Fig. 10).  That combination is exactly
  what a **throughput-oriented** knapsack produces: maximise the packed TXs
  :math:`\\sum_i x_i s_i` under :math:`\\hat C`, blind to the age term.  It
  fills the block almost perfectly (and :math:`\\alpha s_i` dominates the
  utility), but it happily packs stale shards, which the Valuable Degree
  punishes.  This is the default ``objective="throughput"``; the
  utility-aware variant (``objective="utility"``) is kept for the ablation
  bench.

* **Scaling.**  The paper's capacities reach :math:`\\hat C = 10^6`; an
  exact ``n x Ĉ`` table is infeasible, so weights are bucketed onto a
  ``table_size``-slot axis, conservatively rounded *up* so the decoded
  selection never violates Ĉ.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import feasible_result
from repro.baselines.base import ScheduleResult, Scheduler, repair_cardinality
from repro.core.problem import EpochInstance
from repro.core.solution import Solution


class DynamicProgrammingScheduler(Scheduler):
    """Scaled-weight knapsack DP with cardinality-floor repair."""

    name = "DP"

    def __init__(self, seed: int = 0, table_size: int = 20_000, objective: str = "throughput") -> None:
        super().__init__(seed=seed)
        if table_size < 10:
            raise ValueError("table_size too small to be meaningful")
        if objective not in ("throughput", "utility"):
            raise ValueError("objective must be 'throughput' or 'utility'")
        self.table_size = table_size
        self.objective = objective

    @feasible_result
    def solve(self, instance: EpochInstance, budget_iterations: int = 1) -> ScheduleResult:
        """One-shot DP knapsack (budget sets the flat trace length)."""
        if self.objective == "throughput":
            item_values = instance.tx_counts.astype(np.float64)
        else:
            item_values = instance.values.astype(np.float64)
        solution = self._knapsack(instance, item_values)
        repair_cardinality(instance, solution)
        # DP is one-shot: its "convergence trace" is the flat line the paper
        # plots against the iterative algorithms.
        trace = [solution.utility] * max(budget_iterations, 1)
        return ScheduleResult.from_solution(self.name, solution, 1, trace)

    # ------------------------------------------------------------------ #
    def _knapsack(self, instance: EpochInstance, item_values: np.ndarray) -> Solution:
        granularity = max(1, int(np.ceil(instance.capacity / self.table_size)))
        slots = instance.capacity // granularity
        # Round scaled weights UP so the unscaled selection is always <= Ĉ.
        weights = np.ceil(instance.tx_counts / granularity).astype(np.int64)
        weights = np.maximum(weights, 0)

        candidates = [
            int(i) for i in range(instance.num_shards)
            if item_values[i] > 0 and weights[i] <= slots
        ]
        table = np.full(slots + 1, -np.inf)
        table[0] = 0.0
        taken = np.zeros((len(candidates), slots + 1), dtype=bool)

        for row, item in enumerate(candidates):
            weight = int(weights[item])
            value = float(item_values[item])
            if weight == 0:
                # Free item with positive value: always take it.
                table += value
                taken[row, :] = True
                continue
            shifted = np.full(slots + 1, -np.inf)
            shifted[weight:] = table[:-weight] + value
            improved = shifted > table
            table = np.where(improved, shifted, table)
            taken[row] = improved

        best_slot = int(np.argmax(table))
        solution = Solution(instance)
        slot = best_slot
        for row in range(len(candidates) - 1, -1, -1):
            if taken[row, slot]:
                item = candidates[row]
                solution.flip(item)
                slot -= int(weights[item])
        return solution

