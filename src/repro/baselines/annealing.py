"""Simulated Annealing baseline (the paper's "SA" [22]).

Classic Metropolis annealing over the same move set SE uses (swap one
selected shard for one unselected shard, plus occasional flips so the
cardinality can drift), with a geometric cooling schedule.  Worsening moves
are accepted with probability :math:`\\exp(\\Delta U / T)`.

The paper reports SA converging close to (but below) SE on utility and
Valuable Degree; the gap comes from SA's single trajectory and fixed cooling
versus SE's Γ parallel, reversible chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.contracts import feasible_result
from repro.baselines.base import ScheduleResult, Scheduler, random_feasible_start
from repro.core.problem import EpochInstance
from repro.core.solution import Solution


@dataclass(frozen=True)
class AnnealingParams:
    """Cooling schedule parameters.

    The initial temperature is set adaptively to ``initial_accept_span``
    times the instance's value spread, so the schedule behaves consistently
    across the paper's very different utility scales (|I_j|=50 vs 1000).
    """

    cooling_rate: float = 0.995
    initial_accept_span: float = 0.5
    min_temperature: float = 1e-6
    flip_probability: float = 0.2

    def __post_init__(self) -> None:
        if not 0 < self.cooling_rate < 1:
            raise ValueError("cooling_rate must lie in (0, 1)")
        if not 0 <= self.flip_probability <= 1:
            raise ValueError("flip_probability must lie in [0, 1]")


class SimulatedAnnealingScheduler(Scheduler):
    """Metropolis simulated annealing over feasible selections."""

    name = "SA"

    def __init__(self, seed: int = 0, params: AnnealingParams = AnnealingParams()) -> None:
        super().__init__(seed=seed)
        self.params = params

    @feasible_result
    def solve(self, instance: EpochInstance, budget_iterations: int) -> ScheduleResult:
        """Anneal over feasible selections within the iteration budget."""
        rng = self._rng(instance)
        current = random_feasible_start(instance, rng)
        best = current.copy()
        spread = float(instance.values.max() - instance.values.min()) or 1.0
        temperature = max(self.params.initial_accept_span * spread, self.params.min_temperature)
        trace = []

        for _ in range(budget_iterations):
            move = self._propose(instance, current, rng)
            if move is not None:
                delta, apply_move = move
                if delta >= 0 or rng.random() < math.exp(delta / max(temperature, 1e-300)):
                    apply_move()
                    if current.utility > best.utility:
                        best = current.copy()
            temperature = max(temperature * self.params.cooling_rate, self.params.min_temperature)
            trace.append(best.utility)

        return ScheduleResult.from_solution(self.name, best, budget_iterations, trace)

    def _propose(self, instance: EpochInstance, current: Solution, rng: np.random.Generator):
        """Pick a random feasible move; returns (delta_utility, apply) or None."""
        selected = current.selected_positions()
        unselected = current.unselected_positions()
        use_flip = rng.random() < self.params.flip_probability

        if use_flip:
            position = int(rng.integers(instance.num_shards))
            if current.mask[position]:
                if current.count - 1 < instance.n_min:
                    return None
                delta = -float(instance.values[position])
            else:
                if current.weight + int(instance.tx_counts[position]) > instance.capacity:
                    return None
                delta = float(instance.values[position])
            return delta, lambda: current.flip(position)

        if len(selected) == 0 or len(unselected) == 0:
            return None
        index_out = int(selected[rng.integers(len(selected))])
        index_in = int(unselected[rng.integers(len(unselected))])
        if current.swap_weight(index_out, index_in) > instance.capacity:
            return None
        delta = current.swap_delta(index_out, index_in)
        return delta, lambda: current.swap(index_out, index_in)
