"""MVCom reproduction: scheduling Most Valuable Committees for the
large-scale sharded blockchain (Huang et al., ICDCS 2021).

Public API quick tour
---------------------
>>> from repro import WorkloadConfig, generate_epoch_workload
>>> from repro import SEConfig, StochasticExploration
>>> workload = generate_epoch_workload(WorkloadConfig(num_committees=50, capacity=50_000))
>>> result = StochasticExploration(SEConfig(num_threads=5, max_iterations=500)).solve(
...     workload.instance)
>>> result.best_weight <= workload.instance.capacity
True

Subpackages
-----------
``repro.core``       the MVCom problem and the SE algorithm (the paper's contribution)
``repro.chain``      the Elastico-style sharded-blockchain substrate
``repro.data``       synthetic Bitcoin trace + workload generation
``repro.baselines``  SA / DP / WOA / greedy / random schedulers
``repro.metrics``    utility, Valuable Degree, trace statistics
``repro.harness``    per-figure experiment runners and reporting
``repro.sim``        discrete-event simulation engine and RNG streams
"""

from repro.core import (
    CommitteeEvent,
    DynamicSchedule,
    EpochInstance,
    EventKind,
    MVComConfig,
    SEConfig,
    SEResult,
    Solution,
    StochasticExploration,
    brute_force_optimum,
    build_instance,
)
from repro.data import EpochWorkload, WorkloadConfig, generate_epoch_workload
from repro.metrics import summarize_schedule, valuable_degree

__version__ = "1.0.0"

__all__ = [
    "CommitteeEvent",
    "DynamicSchedule",
    "EpochInstance",
    "EventKind",
    "MVComConfig",
    "SEConfig",
    "SEResult",
    "Solution",
    "StochasticExploration",
    "brute_force_optimum",
    "build_instance",
    "EpochWorkload",
    "WorkloadConfig",
    "generate_epoch_workload",
    "summarize_schedule",
    "valuable_degree",
    "__version__",
]
