"""Structured runtime telemetry: counters, gauges, histograms, and spans.

The paper's headline claims are all *trajectories* -- SE convergence versus
the parallel thread count Γ (Fig. 8), recovery after dynamic join/leave
(Figs. 9/14), two-phase latency spread (Fig. 2) -- so the reproduction needs
a first-class event stream from its hot paths, not print statements.  This
module provides the hub those paths emit into.

Design constraints, in order:

1. **Determinism is sacred.**  Instrumented code in
   ``repro/{core,sim,chain,baselines}`` must stay byte-replayable under a
   fixed seed, so the hub never owns a clock: the *deterministic* timestamp
   comes from an injectable ``clock`` callable (simulation virtual time, an
   iteration counter, or -- the default -- the hub's own emission sequence
   number), and the optional *wall* timestamp comes from an injectable
   ``wall_clock`` that only the harness supplies.  Lint rule MV002 (no
   wall-clock in replayable packages) keeps holding, and rule MV007
   enforces that those packages receive the hub as a parameter rather than
   constructing one.
2. **Un-instrumented runs pay near zero.**  The default hub is the
   :data:`NULL_TELEMETRY` singleton whose methods are no-ops and whose
   ``enabled`` flag lets hot loops skip even argument construction::

       if telemetry.enabled:
           telemetry.event("se.transition", iteration=k, utility=u)

3. **One record shape everywhere.**  Every emission is a flat dict with the
   reserved keys ``seq`` (emission index), ``t`` (deterministic time),
   ``wall`` (only when a wall clock is injected), ``type`` (``event`` /
   ``counter`` / ``gauge`` / ``hist`` / ``span``) and ``name``; all other
   keys are caller-supplied fields.  Sinks (:mod:`repro.obs.sinks`) decide
   whether records land in a JSONL stream, a ring buffer, or both.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

#: A timestamp source: any zero-argument callable returning a float.
Clock = Callable[[], float]

#: Record keys owned by the hub; caller fields must not collide with them.
RESERVED_KEYS = ("seq", "t", "wall", "type", "name")


class NullSpan:
    """Context-manager stand-in for a span when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = NullSpan()


class NullTelemetry:
    """The do-nothing hub every instrumented call site defaults to.

    All emitters are no-ops and :attr:`enabled` is ``False``, so the only
    cost an un-instrumented run pays is a truthiness check (and even that is
    usually hoisted out of hot loops).  :class:`Telemetry` subclasses this,
    which doubles as the type annotation for injected telemetry parameters.
    """

    enabled: bool = False
    __slots__ = ()

    # ------------------------------------------------------------------ #
    # emitters (all no-ops here)
    # ------------------------------------------------------------------ #
    def event(self, name: str, **fields) -> None:
        """Emit a point-in-time structured event."""

    def count(self, name: str, value: float = 1, **fields) -> None:
        """Increment the counter ``name`` by ``value``."""

    def gauge(self, name: str, value: float, **fields) -> None:
        """Set the gauge ``name`` to ``value``."""

    def observe(self, name: str, value: float, **fields) -> None:
        """Record one observation into the histogram ``name``."""

    def span(self, name: str, **fields):
        """Open a (nestable) span; use as a context manager."""
        return _NULL_SPAN

    def record_span(self, name: str, start: float, end: float, **fields) -> None:
        """Record an externally-timed span (e.g. PBFT commit on sim time)."""

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Aggregated view: counters, gauges, histogram and span stats."""
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}, "emitted": 0}

    def close(self) -> None:
        """Flush and close owned sinks (no-op here)."""


#: Shared no-op hub; the default value of every ``telemetry`` parameter.
NULL_TELEMETRY = NullTelemetry()


class _SpanHandle:
    """One open span; emits its record (and aggregates) on exit."""

    __slots__ = ("_hub", "name", "fields", "_t0", "_w0")

    def __init__(self, hub: "Telemetry", name: str, fields: dict) -> None:
        self._hub = hub
        self.name = name
        self.fields = fields
        self._t0 = 0.0
        self._w0: Optional[float] = None

    def __enter__(self) -> "_SpanHandle":
        self._t0 = self._hub._now()
        if self._hub._wall_clock is not None:
            self._w0 = self._hub._wall_clock()
        self._hub._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._hub._stack.pop()
        t1 = self._hub._now()
        wall_dt = None
        if self._w0 is not None and self._hub._wall_clock is not None:
            wall_dt = self._hub._wall_clock() - self._w0
        fields = dict(self.fields)
        if exc_type is not None:
            fields["status"] = "error"
        self._hub._emit_span(self.name, self._t0, t1, wall_dt, fields)
        return False


class _HistogramAggregate:
    """Running count/sum/min/max of one histogram stream."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def stats(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class Telemetry(NullTelemetry):
    """The recording hub: aggregates in memory and fans records to sinks.

    Parameters
    ----------
    clock:
        Deterministic timestamp source for the ``t`` field.  ``None`` (the
        default) stamps records with their own emission sequence number,
        which is reproducible under a fixed seed by construction.  Pass the
        simulation clock (``lambda: engine.now``) to put records on virtual
        time.
    wall_clock:
        Optional real-time source (e.g. ``time.perf_counter``) adding a
        ``wall`` field to every record and wall durations to spans.  Only
        the harness should supply this; replayable packages must not.
    sinks:
        Objects with an ``emit(record: dict)`` method (see
        :mod:`repro.obs.sinks`).  Records are delivered in emission order.
    """

    enabled = True
    __slots__ = (
        "_clock",
        "_wall_clock",
        "_sinks",
        "_seq",
        "_stack",
        "_counters",
        "_gauges",
        "_histograms",
        "_spans",
    )

    def __init__(
        self,
        clock: Optional[Clock] = None,
        wall_clock: Optional[Clock] = None,
        sinks: Optional[Sequence] = None,
    ) -> None:
        self._clock = clock
        self._wall_clock = wall_clock
        self._sinks: List = list(sinks) if sinks is not None else []
        self._seq = 0
        self._stack: List[_SpanHandle] = []
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _HistogramAggregate] = {}
        self._spans: Dict[str, dict] = {}

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def add_sink(self, sink) -> None:
        """Attach one more sink; it sees records emitted from now on."""
        self._sinks.append(sink)

    @property
    def sinks(self) -> tuple:
        """The attached sinks, in fan-out order (read-only view)."""
        return tuple(self._sinks)

    def _now(self) -> float:
        return self._clock() if self._clock is not None else float(self._seq)

    def _emit(self, record: dict) -> None:
        self._seq += 1
        record["seq"] = self._seq
        if self._wall_clock is not None:
            record["wall"] = self._wall_clock()
        for sink in self._sinks:
            sink.emit(record)

    def _emit_span(
        self,
        name: str,
        start: float,
        end: float,
        wall_dt: Optional[float],
        fields: dict,
    ) -> None:
        aggregate = self._spans.setdefault(
            name, {"count": 0, "total_dt": 0.0, "total_wall_s": 0.0}
        )
        aggregate["count"] += 1
        aggregate["total_dt"] += end - start
        if wall_dt is not None:
            aggregate["total_wall_s"] += wall_dt
        record = {
            "t": end,
            "type": "span",
            "name": name,
            "t0": float(start),
            "t1": float(end),
            "dt": float(end - start),
            "depth": len(self._stack),
        }
        if wall_dt is not None:
            record["wall_dt"] = wall_dt
        record.update(fields)
        self._emit(record)

    # ------------------------------------------------------------------ #
    # emitters
    # ------------------------------------------------------------------ #
    def event(self, name: str, **fields) -> None:
        """Emit a point-in-time structured event carrying ``fields``."""
        record = {"t": self._now(), "type": "event", "name": name}
        record.update(fields)
        self._emit(record)

    def count(self, name: str, value: float = 1, **fields) -> None:
        """Increment counter ``name``; the record carries the running total."""
        total = self._counters.get(name, 0) + value
        self._counters[name] = total
        record = {"t": self._now(), "type": "counter", "name": name, "inc": value, "total": total}
        record.update(fields)
        self._emit(record)

    def gauge(self, name: str, value: float, **fields) -> None:
        """Set gauge ``name`` to ``value`` (last write wins in the snapshot)."""
        self._gauges[name] = float(value)
        record = {"t": self._now(), "type": "gauge", "name": name, "value": float(value)}
        record.update(fields)
        self._emit(record)

    def observe(self, name: str, value: float, **fields) -> None:
        """Add one observation to histogram ``name``."""
        self._histograms.setdefault(name, _HistogramAggregate()).add(float(value))
        record = {"t": self._now(), "type": "hist", "name": name, "value": float(value)}
        record.update(fields)
        self._emit(record)

    def span(self, name: str, **fields):
        """Open a nested span; emits one ``span`` record when it exits."""
        return _SpanHandle(self, name, fields)

    def record_span(self, name: str, start: float, end: float, **fields) -> None:
        """Record a span timed by the caller (both stamps on the caller's clock).

        This is how simulation-time phases (a PBFT round from ``start_time``
        to commit) land in the stream without the hub owning their clock.
        """
        self._emit_span(name, float(start), float(end), None, fields)

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Aggregated counters/gauges/histograms/spans plus the emission count."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: agg.stats() for name, agg in self._histograms.items()},
            "spans": {name: dict(agg) for name, agg in self._spans.items()},
            "emitted": self._seq,
        }

    def close(self) -> None:
        """Flush/close every sink that supports it."""
        for sink in self._sinks:
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()
