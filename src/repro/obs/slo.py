"""Declarative SLO specs evaluated online against the metrics aggregator.

The ROADMAP's service loop (item 3) and the stability framing of *Stable
Blockchain Sharding under Adversarial Transaction Generation* (arXiv
2404.04438) both want queue growth, age percentiles, and per-committee
latency treated as *tracked objectives with explicit thresholds*, not
after-the-fact CSV columns.  An SLO here is one of three checks against a
:class:`~repro.obs.metrics.MetricsAggregator` series:

``max_p99``
    Sketch p99 of a span/hist/field series must stay at or below the
    threshold (e.g. ``chain.mempool.age_s`` p99 vs the paper's
    cumulative-age objective, or per-committee ``chain.pbft.round`` p99).
``max_rate``
    Counter/event arrivals per unit deterministic time must stay at or
    below the threshold (e.g. ``se.reset_broadcasts`` churn).
``monotone_budget``
    A numeric record field may decrease at most ``budget`` times over the
    run (e.g. ``se.round``'s ``best_utility`` is monotone except across
    dynamic join/leave boundaries, so a small budget tolerates exactly
    those resets).

Specs load from ``[tool.repro.obs.slo.<name>]`` tables in pyproject-style
TOML (via the same 3.9-safe parser the lint config uses) or construct
directly.  :class:`SloTracker` implements the sink protocol: attach it to
the hub *after* its aggregator and it evaluates periodically, emitting
``slo.violation`` events back into the same stream — so violations land in
the very trace being recorded, and ``mvcom trace metrics --slo`` can
re-evaluate any stored trace offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.config import find_pyproject, parse_toml
from repro.obs.metrics import MetricsAggregator
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry

#: pyproject table holding the SLO specs.
SLO_SECTION = ("tool", "repro", "obs", "slo")

# Events that mark the start of a fresh SE solve on a shared hub; monotone
# SLO baselines reset here so per-solve invariants don't alias across the
# serve loop's epochs.
SOLVE_BOUNDARY_EVENTS = frozenset({"se.bootstrap", "se.warm_start"})

#: The three supported check kinds.
SLO_KINDS = ("max_p99", "max_rate", "monotone_budget")


class SloSpecError(ValueError):
    """Raised for a malformed SLO table (unknown kind, missing metric...)."""


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective: a check kind plus its threshold."""

    name: str
    metric: str
    kind: str
    threshold: float
    tag: str = ""
    field: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise SloSpecError(
                f"SLO {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(SLO_KINDS)})"
            )
        if not self.metric:
            raise SloSpecError(f"SLO {self.name!r}: 'metric' is required")
        if self.kind == "monotone_budget" and not self.field:
            raise SloSpecError(
                f"SLO {self.name!r}: monotone_budget needs a 'field' to watch"
            )


def specs_from_section(section: dict) -> List[SloSpec]:
    """Build specs from a decoded ``[tool.repro.obs.slo]`` table."""
    specs: List[SloSpec] = []
    for name in sorted(section):
        table = section[name]
        if not isinstance(table, dict):
            raise SloSpecError(f"SLO {name!r}: expected a table, got {table!r}")
        kinds = [kind for kind in SLO_KINDS if kind in table]
        if len(kinds) != 1:
            raise SloSpecError(
                f"SLO {name!r}: exactly one of {', '.join(SLO_KINDS)} required"
            )
        specs.append(
            SloSpec(
                name=str(name),
                metric=str(table.get("metric", "")),
                kind=kinds[0],
                threshold=float(table[kinds[0]]),
                tag=str(table.get("tag", "")),
                field=str(table.get("field", "")),
            )
        )
    return specs


def load_slo_specs(
    pyproject_path: Optional[str] = None, start: Optional[str] = None
) -> List[SloSpec]:
    """Read SLO specs from the nearest pyproject.toml (empty when absent)."""
    path = pyproject_path or find_pyproject(start)
    if path is None:
        return []
    with open(path, "rb") as handle:
        table = parse_toml(handle.read().decode("utf-8"))
    section: object = table
    for key in SLO_SECTION:
        if not isinstance(section, dict):
            return []
        section = section.get(key, {})
    if not isinstance(section, dict):
        return []
    return specs_from_section(section)


class SloTracker:
    """Evaluate SLO specs online against an aggregator-fed record stream.

    Sink protocol: attach to the hub *after* the aggregator so each record
    is aggregated before the tracker sees it.  Quantile/rate specs are
    re-checked every ``check_interval`` records (they only move with the
    aggregate); monotone specs update on every matching record.  Each
    spec's *first* breach emits one ``slo.violation`` event into
    ``telemetry`` — the same stream being recorded — and is remembered in
    :attr:`violations`; :meth:`check` forces a final evaluation (call it at
    close, or after an offline :meth:`consume`).
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        aggregator: MetricsAggregator,
        telemetry: NullTelemetry = NULL_TELEMETRY,
        check_interval: int = 256,
    ) -> None:
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.specs = list(specs)
        self.aggregator = aggregator
        self.telemetry = telemetry
        self.check_interval = check_interval
        self.violations: List[dict] = []
        self._breached: Dict[str, dict] = {}
        self._monotone_last: Dict[str, float] = {}
        self._monotone_drops: Dict[str, int] = {}
        self._records = 0
        self._emitting = False

    # ------------------------------------------------------------------ #
    def emit(self, record: dict) -> None:
        """Sink protocol: track one record, evaluating periodically."""
        if self._emitting:
            return  # our own slo.violation echoing back through the hub
        self._records += 1
        name = record.get("name")
        if name in SOLVE_BOUNDARY_EVENTS:
            # A new solve began (the serve loop runs many per process):
            # monotone invariants hold *within* one solve, so the
            # baselines restart rather than comparing across epochs.
            self._monotone_last.clear()
        for spec in self.specs:
            if spec.kind == "monotone_budget" and spec.metric == name:
                self._track_monotone(spec, record)
        if self._records % self.check_interval == 0:
            self._evaluate()

    def consume(self, records: Iterable[dict]) -> List[dict]:
        """Offline form: track a stored stream, then run a final check."""
        for record in records:
            self.emit(record)
        return self.check()

    def check(self) -> List[dict]:
        """Force a full evaluation; returns all violations seen so far."""
        self._evaluate()
        return list(self.violations)

    # ------------------------------------------------------------------ #
    def _track_monotone(self, spec: SloSpec, record: dict) -> None:
        value = record.get(spec.field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        value = float(value)
        last = self._monotone_last.get(spec.name)
        self._monotone_last[spec.name] = value
        if last is not None and value < last:
            drops = self._monotone_drops.get(spec.name, 0) + 1
            self._monotone_drops[spec.name] = drops
            if drops > spec.threshold:
                self._breach(spec, observed=float(drops),
                             detail=f"{spec.metric}.{spec.field} decreased")

    def _evaluate(self) -> None:
        for spec in self.specs:
            if spec.name in self._breached:
                continue
            if spec.kind == "max_p99":
                self._check_quantile(spec)
            elif spec.kind == "max_rate":
                self._check_rate(spec)
            # monotone_budget breaches fire inline in _track_monotone

    @staticmethod
    def _tag_matches(series_tag: str, spec_tag: str) -> bool:
        # An untagged spec gates the cross-tag aggregate series; a tagged
        # one accepts the promoted "field=value" form or the bare value.
        if spec_tag == "":
            return series_tag == ""
        return series_tag == spec_tag or series_tag.partition("=")[2] == spec_tag

    def _check_quantile(self, spec: SloSpec) -> None:
        for series in self.aggregator.find_series(spec.metric):
            if series.sketch is None or not series.sketch.count:
                continue
            if not self._tag_matches(series.tag, spec.tag):
                continue
            p99 = series.sketch.quantile(0.99)
            if p99 > spec.threshold:
                self._breach(spec, observed=p99, series_tag=series.tag)
                return

    def _check_rate(self, spec: SloSpec) -> None:
        for series in self.aggregator.find_series(spec.metric):
            if series.kind not in ("counter", "event"):
                continue
            if not self._tag_matches(series.tag, spec.tag):
                continue
            rate = series.rate
            if rate is not None and rate > spec.threshold:
                self._breach(spec, observed=rate, series_tag=series.tag)
                return

    def _breach(self, spec: SloSpec, observed: float,
                series_tag: str = "", detail: str = "") -> None:
        if spec.name in self._breached:
            return
        violation = {
            "slo": spec.name,
            "metric": spec.metric,
            "kind": spec.kind,
            "threshold": spec.threshold,
            "observed": observed,
        }
        if series_tag:
            violation["tag"] = series_tag
        if detail:
            violation["detail"] = detail
        self._breached[spec.name] = violation
        self.violations.append(violation)
        if self.telemetry.enabled:
            self._emitting = True
            try:
                self.telemetry.event("slo.violation", **violation)
            finally:
                self._emitting = False
